"""The runtime sanitizer: re-execute, re-hash, and clamp under ``REPRO_SANITIZE=1``.

The static linter (:mod:`repro.lint`) proves properties of the *source*;
this module checks the same invariants on *live runs*, the way a race
detector or an address sanitizer gates a build.  Armed via the
``REPRO_SANITIZE`` environment variable (see ``repro pipeline --sanitize``),
it hooks four places:

* **backend parity** — every :func:`repro.engine.registry.dispatch` that
  selects a frozen or parallel kernel also runs the next tier down
  (parallel -> frozen, frozen -> portable) on the same inputs and compares
  the results.  Parallel kernels must be *bit-identical* to their frozen
  counterparts (the PR-7 contract: integer merges, per-chunk RNG streams);
  frozen kernels must match the portable body exactly for integer results
  and to tight tolerance for float aggregates (summation order differs).
  A mismatch raises :class:`BackendParityError` naming the operation, both
  backends, and the input shape.
* **shared-memory hygiene** — :func:`repro.engine.parallel.attach_views`
  hands workers read-only views, so an in-worker write through an input
  view raises instead of corrupting sibling chunks (output buffers opt out
  via ``attach_output_views``).
* **NaN/Inf screening** — kernel outputs are screened for non-finite
  floats; operations that legitimately produce them (log-likelihoods of
  impossible events, ratios over empty sets) are allowlisted explicitly in
  :data:`NONFINITE_ALLOWED`.
* **artifact integrity** — the artifact store records a payload hash at
  write time and, under the sanitizer, re-hashes every cache hit before
  serving it (:func:`verify_artifact_payload`); tampered or bit-rotted
  cache entries raise :class:`ArtifactIntegrityError` instead of feeding a
  silent wrong answer downstream.

Every check is tallied in a process-local report (:func:`report`,
:func:`write_report`) that the pipeline dumps next to its manifest.
Overhead is roughly the cost of running each dispatched operation twice;
use it in CI and when debugging, not in production timing runs.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import math
import random as _random
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .engine import deps, registry

#: Environment variable that arms the sanitizer (re-exported from deps).
ENV_VAR = deps.SANITIZE_ENV_VAR

#: Relative/absolute tolerance for frozen-vs-portable float comparisons.
#: The tiers are algorithmically identical but sum in different orders;
#: anything past 1e-9 relative is a real divergence, not roundoff.
FLOAT_RTOL = 1e-9
FLOAT_ATOL = 1e-12

#: Operations allowed to return non-finite floats.  Empty as of this writing:
#: the full tier-1 suite runs NaN/Inf-clean under ``REPRO_SANITIZE=1``.
#: Additions must name the legitimate source (e.g. a log-likelihood of an
#: impossible event is -inf).
NONFINITE_ALLOWED: set = set()

#: Parameter names that mark an operation as stochastic.  Frozen and
#: portable bodies draw in different orders, so frozen->portable parity is
#: skipped for them; parallel->frozen parity still runs (both tiers derive
#: identical per-chunk streams from the same base seed).
_STOCHASTIC_PARAMS = {"rng", "seed", "base_seed", "random_state"}

#: op -> normalizer applied to *both* results before comparison, for
#: operations whose contract is weaker than "identical sequence".  Mirrors
#: how the repo's own parity tests compare them; additions must name the
#: reason the raw outputs legitimately differ.
PARITY_NORMALIZERS: Dict[str, Any] = {
    # Contract is a multiset (downstream use is percentiles); the mutable
    # backend yields members in insertion order, the frozen CSR in index
    # order.  tests/test_frozen_parity.py compares sorted() for the same
    # reason.
    "out_degrees_for_attribute_value": sorted,
    # Top-k ranking with float scores: ties land in backend-dependent order
    # because Adamic-Adar sums accumulate in different orders.  Compare as a
    # pair->score mapping (key set + per-key float closeness), exactly like
    # tests/test_engine_kernels.py does.
    "link_prediction.rank_candidate_pairs": lambda pairs: {
        (s, t): float(score) for s, t, score in pairs
    },
}


class SanitizerError(RuntimeError):
    """Base class of every runtime-sanitizer failure."""


class BackendParityError(SanitizerError):
    """Two backends of one operation disagreed on identical inputs."""


class NonFiniteOutputError(SanitizerError):
    """A kernel produced NaN/Inf and the operation is not allowlisted."""


class ArtifactIntegrityError(SanitizerError):
    """A cached artifact's payload no longer matches its recorded hash."""


def enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` arms the sanitizer (read per call)."""
    return deps.sanitize_enabled()


# ----------------------------------------------------------------------
# The report
# ----------------------------------------------------------------------

def _fresh_report() -> Dict[str, Any]:
    return {
        "parity": {"checked": 0, "skipped": {}, "divergences": []},
        "nonfinite": {"checked": 0, "allowlisted": []},
        "artifacts": {"verified": 0, "mismatches": []},
        "ops": {},
    }


_report: Dict[str, Any] = _fresh_report()


def reset_report() -> None:
    """Zero every tally (test helper / pipeline start)."""
    global _report
    _report = _fresh_report()


def report() -> Dict[str, Any]:
    """The live tallies (mutating the returned dict mutates the report)."""
    return _report


def write_report(path: Path) -> Path:
    """Dump the tallies as JSON (the ``--sanitize`` pipeline artifact)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(_report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def _tally_op(op: str, backend: str, outcome: str) -> None:
    entry = _report["ops"].setdefault(op, {})
    key = f"{backend}:{outcome}"
    entry[key] = entry.get(key, 0) + 1


def _skip(op: str, backend: str, reason: str) -> None:
    skipped = _report["parity"]["skipped"]
    skipped[reason] = skipped.get(reason, 0) + 1
    _tally_op(op, backend, f"skipped[{reason}]")


# ----------------------------------------------------------------------
# Result comparison
# ----------------------------------------------------------------------

def _is_float_like(value: Any) -> bool:
    if isinstance(value, float):
        return True
    if isinstance(value, np.ndarray):
        return value.dtype.kind in "fc"
    return isinstance(value, (np.floating, np.complexfloating))


def compare_results(primary: Any, reference: Any, exact: bool, path: str = "$") -> Optional[str]:
    """First divergence between two kernel results, or ``None`` when equal.

    ``exact=True`` (parallel vs frozen) requires bit-identity even for
    floats; ``exact=False`` (frozen vs portable) allows
    :data:`FLOAT_RTOL`/:data:`FLOAT_ATOL` on float values.  Containers are
    walked recursively; NaNs in matching positions compare equal (parity is
    about *agreement*, the NaN screen is a separate check).  Returns a
    human-readable description anchored at ``path``.
    """
    if isinstance(primary, np.ndarray) or isinstance(reference, np.ndarray):
        primary_arr = np.asarray(primary)
        reference_arr = np.asarray(reference)
        if primary_arr.shape != reference_arr.shape:
            return (
                f"{path}: shape mismatch {primary_arr.shape} != "
                f"{reference_arr.shape}"
            )
        if primary_arr.dtype.kind in "fc" and not exact:
            if np.allclose(
                primary_arr, reference_arr,
                rtol=FLOAT_RTOL, atol=FLOAT_ATOL, equal_nan=True,
            ):
                return None
            diff = np.nanmax(
                np.abs(primary_arr.astype(np.float64) - reference_arr.astype(np.float64))
            ) if primary_arr.size else 0.0
            return f"{path}: float arrays differ (max abs diff {diff:.3e})"
        if primary_arr.dtype.kind in "fc":
            equal = np.array_equal(primary_arr, reference_arr, equal_nan=True)
        else:
            equal = np.array_equal(primary_arr, reference_arr)
        if equal:
            return None
        mismatches = int(np.sum(primary_arr != reference_arr)) if primary_arr.size else 0
        return f"{path}: arrays differ in {mismatches} position(s)"
    if isinstance(primary, dict) and isinstance(reference, dict):
        if set(primary) != set(reference):
            extra = sorted(set(primary) ^ set(reference))
            return f"{path}: dict keys differ ({extra[:4]})"
        for key in sorted(primary, key=repr):
            found = compare_results(
                primary[key], reference[key], exact, f"{path}[{key!r}]"
            )
            if found:
                return found
        return None
    if isinstance(primary, (list, tuple)) and isinstance(reference, (list, tuple)):
        if len(primary) != len(reference):
            return f"{path}: length {len(primary)} != {len(reference)}"
        for index, (left, right) in enumerate(zip(primary, reference)):
            found = compare_results(left, right, exact, f"{path}[{index}]")
            if found:
                return found
        return None
    if _is_float_like(primary) and _is_float_like(reference):
        left, right = float(primary), float(reference)
        if math.isnan(left) and math.isnan(right):
            return None
        if exact:
            if left == right:
                return None
        elif math.isclose(left, right, rel_tol=FLOAT_RTOL, abs_tol=FLOAT_ATOL):
            return None
        return f"{path}: {left!r} != {right!r}"
    if isinstance(primary, (int, bool, str, bytes, type(None), np.integer, np.bool_)) or isinstance(
        reference, (int, bool, str, bytes, type(None), np.integer, np.bool_)
    ):
        if primary == reference:
            return None
        return f"{path}: {primary!r} != {reference!r}"
    try:
        if primary == reference:
            return None
        return f"{path}: values differ ({type(primary).__name__})"
    except Exception:
        return None  # incomparable custom objects: out of parity scope


def find_nonfinite(value: Any, path: str = "$") -> Optional[str]:
    """Location of the first non-finite float inside ``value``, or ``None``."""
    if isinstance(value, np.ndarray):
        if value.dtype.kind in "fc" and value.size and not np.isfinite(value).all():
            bad = int(np.sum(~np.isfinite(value)))
            return f"{path}: {bad} non-finite element(s)"
        return None
    if isinstance(value, (float, np.floating)):
        return None if math.isfinite(float(value)) else f"{path}: {value!r}"
    if isinstance(value, dict):
        for key in value:
            found = find_nonfinite(value[key], f"{path}[{key!r}]")
            if found:
                return found
        return None
    if isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            found = find_nonfinite(item, f"{path}[{index}]")
            if found:
                return found
        return None
    return None


# ----------------------------------------------------------------------
# Dispatch-time parity checking
# ----------------------------------------------------------------------

def _graph_shape(graph: Any) -> str:
    """Compact input-shape description for error messages and the report."""
    parts = [type(graph).__name__]
    for probe in ("number_of_nodes", "number_of_edges"):
        fn = getattr(graph, probe, None)
        if callable(fn):
            try:
                parts.append(f"{probe.rsplit('_', 1)[-1]}={fn()}")
            except Exception:
                pass
    return " ".join(parts)


def _stochastic(fn: Any) -> bool:
    try:
        signature = inspect.signature(fn)
    except (TypeError, ValueError):
        return False
    return any(name in _STOCHASTIC_PARAMS for name in signature.parameters)


def _has_live_rng(args: Tuple[Any, ...], kwargs: Dict[str, Any]) -> bool:
    values = list(args) + list(kwargs.values())
    return any(
        isinstance(value, (np.random.Generator, np.random.RandomState, _random.Random))
        for value in values
    )


def _reference_kernel(entry: Any) -> Tuple[Optional[Any], bool]:
    """(reference kernel one tier down, exact-comparison?) for ``entry``."""
    if entry.backend == registry.PARALLEL:
        reference = registry._select(entry.op, registry.FROZEN)
        if reference is None:
            reference = registry._select(entry.op, registry.MUTABLE)
        return reference, True
    if entry.backend == registry.FROZEN:
        return registry._select(entry.op, registry.MUTABLE), False
    return None, False


#: Reentrancy guard: portable fallbacks re-enter dispatch per element, and
#: the reference run must not recursively sanitize — only the outermost
#: dispatch of a call tree is checked.
_active = False


def checked_dispatch(entry: Any, graph: Any, args: Tuple[Any, ...], kwargs: Dict[str, Any]) -> Any:
    """Run ``entry`` and, when a lower tier exists, assert parity with it.

    The registry calls this instead of ``entry.fn(...)`` whenever the
    sanitizer is enabled.  Raises :class:`BackendParityError` on divergence
    and :class:`NonFiniteOutputError` on unexpected NaN/Inf; otherwise the
    primary result is returned unchanged.
    """
    global _active
    if _active:
        return entry.fn(graph, *args, **kwargs)
    _active = True
    try:
        result = entry.fn(graph, *args, **kwargs)
        _screen_nonfinite(entry, result)
        reference, exact = _reference_kernel(entry)
        if reference is None:
            if entry.backend in (registry.FROZEN, registry.PARALLEL):
                _skip(entry.op, entry.backend, "no-reference-kernel")
            return result
        if _has_live_rng(args, kwargs):
            _skip(entry.op, entry.backend, "live-rng-argument")
            return result
        if not exact and _stochastic(entry.fn):
            # frozen vs portable draw orders differ; parallel vs frozen
            # share per-chunk streams, so `exact` pairs are still checked.
            _skip(entry.op, entry.backend, "stochastic-draw-order")
            return result
        expected = reference.fn(graph, *args, **kwargs)
        normalize = PARITY_NORMALIZERS.get(entry.op)
        if normalize is not None:
            divergence = compare_results(
                normalize(result), normalize(expected), exact=exact
            )
        else:
            divergence = compare_results(result, expected, exact=exact)
        _report["parity"]["checked"] += 1
        if divergence is None:
            _tally_op(entry.op, entry.backend, f"parity-vs-{reference.backend}")
            return result
        record = {
            "op": entry.op,
            "backend": entry.backend,
            "reference": reference.backend,
            "input": _graph_shape(graph),
            "divergence": divergence,
        }
        _report["parity"]["divergences"].append(record)
        _tally_op(entry.op, entry.backend, "DIVERGED")
        raise BackendParityError(
            f"backend parity violation in operation {entry.op!r}: "
            f"{entry.backend!r} kernel disagrees with {reference.backend!r} "
            f"reference on {_graph_shape(graph)} — {divergence} "
            f"(comparison: {'bit-identical' if exact else 'float-close'}; "
            "rerun with REPRO_SANITIZE=0 to bypass, or see "
            "docs/architecture.md 'Runtime sanitizer' for debugging)"
        )
    finally:
        _active = False


def _screen_nonfinite(entry: Any, result: Any) -> None:
    _report["nonfinite"]["checked"] += 1
    found = find_nonfinite(result)
    if found is None:
        return
    if entry.op in NONFINITE_ALLOWED:
        hits = _report["nonfinite"]["allowlisted"]
        if entry.op not in hits:
            hits.append(entry.op)
        return
    _tally_op(entry.op, entry.backend, "NONFINITE")
    raise NonFiniteOutputError(
        f"operation {entry.op!r} ({entry.backend!r} kernel) returned a "
        f"non-finite value at {found}; if this operation legitimately "
        "produces NaN/Inf, add it to repro.sanitize.NONFINITE_ALLOWED with "
        "a justification"
    )


# ----------------------------------------------------------------------
# Artifact payload integrity
# ----------------------------------------------------------------------

def hash_payload(directory: Path, exclude: Tuple[str, ...] = ("ARTIFACT.json",)) -> str:
    """Deterministic sha256 of every file under ``directory``.

    Files are folded in sorted relative-path order, each prefixed by its
    path and size, so renames and truncations change the digest.  The
    marker file itself is excluded (it stores this digest).
    """
    digest = hashlib.sha256()
    directory = Path(directory)
    for path in sorted(directory.rglob("*")):
        if not path.is_file():
            continue
        relative = path.relative_to(directory).as_posix()
        if relative in exclude:
            continue
        payload = path.read_bytes()
        digest.update(f"{relative}\x00{len(payload)}\x00".encode("utf-8"))
        digest.update(payload)
    return digest.hexdigest()


def verify_artifact_payload(
    name: str, key: str, directory: Path, recorded: Optional[str]
) -> None:
    """Re-hash a cache hit against its write-time digest (sanitize-only).

    Entries written before integrity recording existed carry no digest and
    are skipped.  A mismatch raises :class:`ArtifactIntegrityError` — the
    cached payload was modified after it was committed (tampering, bit rot,
    or a non-atomic writer), and serving it would silently poison every
    downstream artifact.
    """
    if recorded is None:
        return
    actual = hash_payload(Path(directory))
    if actual == recorded:
        _report["artifacts"]["verified"] += 1
        return
    _report["artifacts"]["mismatches"].append(
        {"artifact": name, "key": key, "recorded": recorded, "actual": actual}
    )
    raise ArtifactIntegrityError(
        f"artifact {name!r} (key {key}) failed integrity verification: "
        f"stored payload hash {recorded[:12]}… but the cache directory now "
        f"hashes to {actual[:12]}…; the entry was modified after commit — "
        "delete it from the cache (or rebuild with --refresh) and "
        "investigate what wrote into the store"
    )


__all__ = [
    "ENV_VAR",
    "ArtifactIntegrityError",
    "BackendParityError",
    "NonFiniteOutputError",
    "SanitizerError",
    "NONFINITE_ALLOWED",
    "PARITY_NORMALIZERS",
    "checked_dispatch",
    "compare_results",
    "enabled",
    "find_nonfinite",
    "hash_payload",
    "report",
    "reset_report",
    "verify_artifact_payload",
    "write_report",
]
