"""Node arrival functions with the three-phase Google+ timeline.

Phase I (launch, days 1-20): explosive invitation-driven growth.
Phase II (days 21-75): stabilised invitation-only growth.
Phase III (days 76-98): public release, another surge.

The arrival function returns the number of new users per day, scaled so that
the total over the whole timeline equals ``total_users``.  The per-phase
*shape* (relative daily rates) is what produces the three-phase patterns in
the growth, density and diameter figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..metrics.evolution import PhaseBoundaries


@dataclass(frozen=True)
class ArrivalSchedule:
    """Per-day new-user counts over the simulated timeline."""

    daily_arrivals: List[int]

    @property
    def num_days(self) -> int:
        return len(self.daily_arrivals)

    @property
    def total_users(self) -> int:
        return sum(self.daily_arrivals)

    def arrivals_on(self, day: int) -> int:
        """New users on ``day`` (1-indexed)."""
        if not 1 <= day <= self.num_days:
            return 0
        return self.daily_arrivals[day - 1]


def three_phase_schedule(
    total_users: int = 6000,
    num_days: int = 98,
    phases: PhaseBoundaries = PhaseBoundaries(),
    phase_one_share: float = 0.35,
    phase_two_share: float = 0.35,
    phase_three_share: float = 0.30,
) -> ArrivalSchedule:
    """Arrival schedule mimicking the Google+ launch / invite-only / public phases.

    Within Phase I daily arrivals ramp up steeply (early viral growth), within
    Phase II they are flat and lower, and Phase III starts with a large jump
    that decays slowly — the same qualitative shapes as Figure 2a.
    """
    if total_users < num_days:
        raise ValueError("total_users must be at least one per day")
    shares = phase_one_share + phase_two_share + phase_three_share
    if not math.isclose(shares, 1.0, rel_tol=1e-6):
        raise ValueError("phase shares must sum to 1")

    weights: List[float] = []
    for day in range(1, num_days + 1):
        phase = phases.phase_of(day)
        if phase == 1:
            # Steep ramp: early days small, end of phase large.
            position = day / max(phases.phase_one_end, 1)
            weights.append(0.2 + 1.8 * position ** 2)
        elif phase == 2:
            weights.append(1.0)
        else:
            # Jump at public release then slow decay.
            offset = day - phases.phase_two_end
            weights.append(3.0 * math.exp(-offset / 20.0) + 1.5)

    phase_shares = {1: phase_one_share, 2: phase_two_share, 3: phase_three_share}
    phase_weight_totals = {1: 0.0, 2: 0.0, 3: 0.0}
    for day, weight in enumerate(weights, start=1):
        phase_weight_totals[phases.phase_of(day)] += weight

    daily: List[int] = []
    for day, weight in enumerate(weights, start=1):
        phase = phases.phase_of(day)
        share = phase_shares[phase] * weight / phase_weight_totals[phase]
        daily.append(max(1, int(round(share * total_users))))
    return ArrivalSchedule(daily_arrivals=daily)


def constant_schedule(total_users: int, num_days: int) -> ArrivalSchedule:
    """Uniform arrivals; useful as a null model in tests."""
    base = total_users // num_days
    remainder = total_users - base * num_days
    daily = [base + (1 if day < remainder else 0) for day in range(num_days)]
    return ArrivalSchedule(daily_arrivals=daily)
