"""Canonical workload configurations shared by tests, examples, and benches.

Every benchmark that needs a synthetic Google+ evolution uses one of these
presets so results are comparable across benches and reruns (they are also the
workloads documented in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..graph.frozen import FrozenSAN
from ..graph.san import SAN
from ..metrics.evolution import PhaseBoundaries
from ..models.parameters import SANModelParameters
from ..utils.rng import RngLike
from .gplus import (
    FlashCrowdDay,
    GooglePlusConfig,
    GroundTruthEvolution,
    SybilWaveDay,
    simulate_google_plus,
)

#: Default seed used by the benchmarks (documented in EXPERIMENTS.md).
BENCH_SEED = 20120835  # arXiv id of the paper


def tiny_config(num_days: int = 40) -> GooglePlusConfig:
    """A few hundred users — fast enough for unit tests."""
    return GooglePlusConfig(
        total_users=400,
        num_days=num_days,
        phases=PhaseBoundaries(phase_one_end=10, phase_two_end=30),
    )


def small_config() -> GooglePlusConfig:
    """~1.5k users over 98 days — integration tests and quick examples."""
    return GooglePlusConfig(total_users=1500, num_days=98)


def default_config() -> GooglePlusConfig:
    """~4k users over 98 days — the standard benchmark workload."""
    return GooglePlusConfig(total_users=4000, num_days=98)


def large_config() -> GooglePlusConfig:
    """~10k users — for benches that want more statistical resolution."""
    return GooglePlusConfig(total_users=10000, num_days=98)


def huge_config() -> GooglePlusConfig:
    """~5M users — the out-of-core regime the columnar storage tier targets.

    At this scale the CSR arrays no longer fit comfortably in RAM next to a
    working set, so frozen graphs are expected to live in columnar files and
    be opened mmap-backed (``REPRO_MMAP=1`` or an explicit
    ``open_columnar``).  Not part of the CI validate matrix — use
    ``BENCH_STORAGE_SCALE`` to dial ``bench_storage.py`` towards it.
    """
    return GooglePlusConfig(total_users=5_000_000, num_days=98)


def sparse_config() -> GooglePlusConfig:
    """A sparse regime: small link budgets, long link spread, few declarations.

    Exercises the low-density corner of the pipeline (weak closure signals,
    many leaf nodes) without changing the three-phase timeline.
    """
    return GooglePlusConfig(
        total_users=1500,
        num_days=98,
        degree_mu=1.0,
        degree_sigma=0.9,
        link_spread_days=40.0,
        declare_probability=0.12,
    )


def dense_config() -> GooglePlusConfig:
    """A dense regime: large link budgets and strong closure.

    Produces a much higher social density and clustering than the Google+
    defaults — the stress case for the triangle/clustering kernels.
    """
    return GooglePlusConfig(
        total_users=1500,
        num_days=98,
        degree_mu=2.2,
        degree_sigma=1.1,
        link_spread_days=12.0,
        triadic_probability=0.6,
        focal_probability=0.2,
        declare_probability=0.35,
    )


def high_reciprocity_config() -> GooglePlusConfig:
    """A high-reciprocity regime: most links are (eventually) mutual.

    Pushes the per-link reciprocation rates towards the levels of mutual-link
    networks (Facebook-like), which stresses the reciprocity/influence
    figures far from the Google+ operating point.
    """
    return GooglePlusConfig(
        total_users=1500,
        num_days=98,
        reciprocation_phase1=0.75,
        reciprocation_phase2=0.65,
        reciprocation_phase3=0.55,
        delayed_reciprocation_probability=0.25,
        shared_attribute_reciprocation_boost=1.8,
    )


def sybil_wave_config(num_days: int = 40) -> GooglePlusConfig:
    """Tiny workload plus two Sybil infiltration waves (Section 6.3 attack).

    The waves inject ~15% fake identities whose only honest contact is a thin
    band of attack edges — the regime the ranking defense must separate.
    """
    return GooglePlusConfig(
        total_users=400,
        num_days=num_days,
        phases=PhaseBoundaries(phase_one_end=10, phase_two_end=30),
        sybil_waves=(
            SybilWaveDay(day=20, num_sybils=30, attack_edges_per_sybil=2, intra_links=60),
            SybilWaveDay(day=32, num_sybils=30, attack_edges_per_sybil=1, intra_links=60),
        ),
    )


def churn_config(num_days: int = 40) -> GooglePlusConfig:
    """Tiny workload with heavy attribute churn (users changing employers).

    ~3 churn events/day over 40 days rewrites a visible fraction of the
    attribute links, exercising the edge-removal (tombstone) paths of every
    snapshot backend.
    """
    return GooglePlusConfig(
        total_users=400,
        num_days=num_days,
        phases=PhaseBoundaries(phase_one_end=10, phase_two_end=30),
        attribute_churn_rate=3.0,
    )


def flash_crowd_config(num_days: int = 40) -> GooglePlusConfig:
    """Tiny workload with two arrival bursts breaking the three-phase schedule.

    Each burst adds ~20% of the steady-state population in a single day —
    the growth curve keeps its phase structure but with sharp spikes.
    """
    return GooglePlusConfig(
        total_users=400,
        num_days=num_days,
        phases=PhaseBoundaries(phase_one_end=10, phase_two_end=30),
        flash_crowds=(
            FlashCrowdDay(day=15, arrivals=80),
            FlashCrowdDay(day=33, arrivals=80),
        ),
    )


@dataclass
class EvolutionWorkload:
    """A simulated evolution plus the standard snapshot days used by benches."""

    evolution: GroundTruthEvolution
    snapshot_days: List[int]

    def snapshots(self) -> List[Tuple[int, SAN]]:
        return self.evolution.snapshots(self.snapshot_days)

    def frozen_snapshots(self) -> List[Tuple[int, FrozenSAN]]:
        """The standard snapshot days as CSR-backed frozen views (no copies)."""
        return self.evolution.frozen_snapshots(self.snapshot_days)

    def final_san(self) -> SAN:
        return self.evolution.final_san()

    def halfway_day(self) -> int:
        return self.snapshot_days[len(self.snapshot_days) // 2]


def standard_snapshot_days(num_days: int, count: int = 14) -> List[int]:
    """Evenly spaced snapshot days including the first and last day."""
    if count <= 1 or num_days <= 1:
        return [num_days]
    step = (num_days - 1) / (count - 1)
    days = sorted({int(round(1 + index * step)) for index in range(count)})
    if days[-1] != num_days:
        days[-1] = num_days
    return days


def generative_params(steps: int = 50_000) -> SANModelParameters:
    """Canonical Algorithm 1 parameters for the generation benches.

    The paper's defaults at a configurable step count; used by
    ``benchmarks/bench_generative.py`` and the CI benchmark smoke leg so the
    loop/vectorized engine comparison always runs the same workload.
    """
    return SANModelParameters(steps=steps)


def build_workload(
    config: Optional[GooglePlusConfig] = None,
    rng: RngLike = BENCH_SEED,
    snapshot_count: int = 14,
) -> EvolutionWorkload:
    """Simulate an evolution and pair it with its standard snapshot days."""
    chosen = config if config is not None else default_config()
    evolution = simulate_google_plus(chosen, rng=rng)
    days = standard_snapshot_days(chosen.num_days, count=snapshot_count)
    return EvolutionWorkload(evolution=evolution, snapshot_days=days)
