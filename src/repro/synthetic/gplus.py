"""Synthetic Google+ ground-truth evolution.

The paper's measurements run on 79 daily crawls of the real Google+ network.
That dataset is not redistributable here, so this module provides the closest
synthetic equivalent: a day-by-day simulator of a Google+-like social-attribute
network with

* the three-phase launch timeline (invitation bootstrap, stabilised
  invitation-only growth, public release surge) driving node arrivals,
* invitation links from new users to existing inviters,
* per-user lognormal outgoing-link budgets spread over the days after joining
  (yielding lognormal degree distributions),
* link-target selection mixing triadic closure, focal (shared-attribute)
  closure, and attribute-boosted preferential attachment,
* reciprocation whose probability declines across phases and is boosted when
  the endpoints share attributes (the Figure 13a signal),
* profile declaration for ~22% of users across the four Google+ attribute
  types, with inviter homophily and an early-adopter tech tilt (the Figure 14
  signal).

The simulator emits a :class:`GroundTruthEvolution` — a day-stamped event log
from which a SAN "as of day d" (or a whole snapshot sequence) can be
reconstructed, plus per-user profiles and join days.  The crawler substrate
consumes this object to produce the crawled snapshots every measurement bench
runs on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from ..graph.bipartite import AttributeInfo
from ..graph.builders import attribute_node_id
from ..graph.san import SAN
from ..metrics.evolution import PhaseBoundaries
from ..models.history import ArrivalEvent, ArrivalHistory, apply_event
from ..utils.rng import RngLike, ensure_rng
from ..utils.validation import require_non_negative, require_positive, require_probability
from .arrival import three_phase_schedule
from .attributes import ProfileModel, build_vocabulary

Node = Hashable


@dataclass(frozen=True)
class TimedEvent:
    """A growth event stamped with the simulation day it happened on."""

    day: int
    event: ArrivalEvent


@dataclass(frozen=True)
class SybilWaveDay:
    """A Sybil infiltration wave hitting the simulated network on one day.

    Each of the ``num_sybils`` fake identities links to
    ``attack_edges_per_sybil`` uniformly chosen honest users (the attack edges
    whose scarcity the Section 6.3 defense exploits) and the wave wires
    ``intra_links`` mutual links among its own members.  Sybils declare no
    profile attributes and schedule no organic link budgets.
    """

    day: int
    num_sybils: int
    attack_edges_per_sybil: int = 2
    intra_links: int = 0

    def __post_init__(self) -> None:
        require_positive(self.day, "day")
        require_positive(self.num_sybils, "num_sybils")
        require_non_negative(self.attack_edges_per_sybil, "attack_edges_per_sybil")
        require_non_negative(self.intra_links, "intra_links")


@dataclass(frozen=True)
class FlashCrowdDay:
    """Extra arrivals on one day, on top of the three-phase schedule."""

    day: int
    arrivals: int

    def __post_init__(self) -> None:
        require_positive(self.day, "day")
        require_positive(self.arrivals, "arrivals")


@dataclass
class GroundTruthEvolution:
    """Day-stamped event log of a simulated Google+-like network."""

    events: List[TimedEvent]
    num_days: int
    join_day: Dict[Node, int] = field(default_factory=dict)
    profiles: Dict[Node, Dict[str, str]] = field(default_factory=dict)
    phases: PhaseBoundaries = field(default_factory=PhaseBoundaries)
    #: User ids injected by Sybil waves (empty without the adversarial regime).
    sybil_nodes: List[Node] = field(default_factory=list)

    def san_at(self, day: int) -> SAN:
        """The ground-truth SAN at the end of ``day``."""
        san = SAN()
        for timed in self.events:
            if timed.day > day:
                break
            apply_event(san, timed.event)
        return san

    def final_san(self) -> SAN:
        return self.san_at(self.num_days)

    def snapshots(self, days: Sequence[int]) -> List[Tuple[int, SAN]]:
        """Ground-truth SAN copies at each requested day (single replay pass)."""
        wanted = sorted(set(days))
        snapshots: List[Tuple[int, SAN]] = []
        san = SAN()
        index = 0
        for day in range(1, self.num_days + 1):
            while index < len(self.events) and self.events[index].day <= day:
                apply_event(san, self.events[index].event)
                index += 1
            if day in wanted:
                snapshots.append((day, san.copy()))
        return snapshots

    def frozen_snapshots(self, days: Sequence[int]) -> List[Tuple[int, "FrozenSAN"]]:
        """CSR-backed snapshots at each requested day, without per-day copies.

        One pass over the event log appends compact-id edge arrays and
        records (node count, edge count) watermarks at the requested days;
        each snapshot is then materialized directly into a read-only
        :class:`~repro.graph.frozen.FrozenSAN` from the array prefixes.  For
        measurement pipelines this replaces ``snapshots()``'s O(V + E) deep
        copy per day with one vectorized CSR build per day — and the result
        is already on the backend the metric kernels are fastest on.
        """
        import numpy as np

        from ..graph.frozen import FrozenSAN

        wanted = sorted(set(days))
        social_index: Dict[Node, int] = {}
        social_labels: List[Node] = []
        attr_index: Dict[Node, int] = {}
        attr_labels: List[Node] = []
        attr_info: List[object] = []
        edge_src: List[int] = []
        edge_dst: List[int] = []
        link_social: List[int] = []
        link_attr: List[int] = []
        # Churn support: the arrays stay append-only; removals tombstone the
        # link's position (tracked via the alive pair -> position map) and the
        # per-day marks carry a removal-log watermark.
        link_position: Dict[Tuple[int, int], int] = {}
        removed_links: List[int] = []
        edge_position: Dict[Tuple[int, int], int] = {}
        removed_edges: List[int] = []

        def social_id(node: Node) -> int:
            compact = social_index.get(node)
            if compact is None:
                compact = len(social_labels)
                social_index[node] = compact
                social_labels.append(node)
            return compact

        marks: List[Tuple[int, int, int, int, int, int, int]] = []
        index = 0
        for day in range(1, self.num_days + 1):
            while index < len(self.events) and self.events[index].day <= day:
                event = self.events[index].event
                index += 1
                if event.kind == "node":
                    social_id(event.first)
                elif event.kind == "social":
                    pair = (social_id(event.first), social_id(event.second))
                    edge_position[pair] = len(edge_src)
                    edge_src.append(pair[0])
                    edge_dst.append(pair[1])
                elif event.kind == "social_remove":
                    pair = (social_id(event.first), social_id(event.second))
                    removed_edges.append(edge_position.pop(pair))
                elif event.kind == "attribute_remove":
                    pair = (social_id(event.first), attr_index[event.second])
                    removed_links.append(link_position.pop(pair))
                else:
                    attr_id = attr_index.get(event.second)
                    if attr_id is None:
                        attr_id = len(attr_labels)
                        attr_index[event.second] = attr_id
                        attr_labels.append(event.second)
                        attr_info.append(
                            AttributeInfo(attr_type=event.attr_type, value=event.value)
                        )
                    pair = (social_id(event.first), attr_id)
                    link_position[pair] = len(link_social)
                    link_social.append(social_id(event.first))
                    link_attr.append(attr_id)
            if day in wanted:
                marks.append(
                    (
                        day,
                        len(social_labels),
                        len(edge_src),
                        len(attr_labels),
                        len(link_social),
                        len(removed_edges),
                        len(removed_links),
                    )
                )

        src = np.asarray(edge_src, dtype=np.int64)
        dst = np.asarray(edge_dst, dtype=np.int64)
        lsoc = np.asarray(link_social, dtype=np.int64)
        lattr = np.asarray(link_attr, dtype=np.int64)
        removed_edge_log = np.asarray(removed_edges, dtype=np.int64)
        removed_link_log = np.asarray(removed_links, dtype=np.int64)

        def prefix(full: np.ndarray, count: int, log: np.ndarray, dead: int) -> np.ndarray:
            if not dead:
                return full[:count]
            keep = np.ones(count, dtype=bool)
            keep[log[:dead]] = False
            return full[:count][keep]

        return [
            (
                day,
                FrozenSAN.from_edge_arrays(
                    social_labels[:n],
                    prefix(src, m, removed_edge_log, me),
                    prefix(dst, m, removed_edge_log, me),
                    attr_labels[:na],
                    attr_info[:na],
                    prefix(lsoc, ma, removed_link_log, ml),
                    prefix(lattr, ma, removed_link_log, ml),
                ),
            )
            for day, n, m, na, ma, me, ml in marks
        ]

    def arrival_history(
        self, start_day: int = 1, end_day: Optional[int] = None
    ) -> ArrivalHistory:
        """Arrival history covering days ``(start_day, end_day]``.

        The initial SAN is the state at the end of ``start_day - 1``; events on
        later days (up to ``end_day``) become the history's ordered events.
        Used by the Figure 15 and Section 5.2 likelihood analyses.
        """
        if end_day is None:
            end_day = self.num_days
        history = ArrivalHistory(initial=self.san_at(start_day - 1))
        for timed in self.events:
            if timed.day < start_day:
                continue
            if timed.day > end_day:
                break
            history.events.append(timed.event)
        return history

    def new_social_links_between(
        self, after_day: int, up_to_day: int
    ) -> List[Tuple[Node, Node]]:
        """Directed social links created strictly after ``after_day`` and by ``up_to_day``."""
        links: List[Tuple[Node, Node]] = []
        for timed in self.events:
            if timed.day <= after_day:
                continue
            if timed.day > up_to_day:
                break
            if timed.event.kind == "social":
                links.append((timed.event.first, timed.event.second))
        return links

    def users_joining_by(self, day: int) -> List[Node]:
        return [node for node, joined in self.join_day.items() if joined <= day]


@dataclass
class GooglePlusConfig:
    """Configuration of the synthetic Google+ simulator.

    The defaults target a few thousand users — large enough for every metric's
    qualitative shape to be visible, small enough for the full benchmark suite
    to run on a laptop.  ``total_users`` and ``num_days`` scale the workload.
    """

    total_users: int = 4000
    num_days: int = 98
    phases: PhaseBoundaries = field(default_factory=PhaseBoundaries)

    # Outgoing-link budgets (lognormal) and their spread over time.
    degree_mu: float = 1.6
    degree_sigma: float = 1.0
    tech_degree_boost: float = 1.8
    link_spread_days: float = 25.0

    # Link-target selection mix.
    triadic_probability: float = 0.50
    focal_probability: float = 0.15
    #: Probability that a non-closure link from a user with declared attributes
    #: targets a member of one of their attribute communities (the approximate
    #: LAPA behaviour of Section 7) instead of plain preferential attachment.
    attachment_lapa_share: float = 0.35
    #: Relative propensity of each attribute type to drive focal link creation;
    #: Employer outweighs City, which is what makes employers form stronger
    #: communities (Figure 13b) and LAPA beat PA (Figure 15).
    focal_type_weights: Dict[str, float] = field(
        default_factory=lambda: {"employer": 3.5, "school": 2.0, "major": 1.0, "city": 0.3}
    )

    # Per-link reciprocation probabilities per phase (note: a per-link rate r
    # yields a global link reciprocity of 2r / (1 + r), so ~0.3 per link gives
    # the ~0.45 reciprocity Google+ shows early on), plus the shared-attribute
    # boost applied to delayed reciprocation.
    reciprocation_phase1: float = 0.28
    reciprocation_phase2: float = 0.18
    reciprocation_phase3: float = 0.10
    shared_attribute_reciprocation_boost: float = 2.5
    # Links that were not reciprocated immediately may still be reciprocated
    # later (this is what the Figure 13a fine-grained reciprocity measures).
    delayed_reciprocation_probability: float = 0.10
    delayed_reciprocation_mean_days: float = 15.0

    # Invitations & profiles.
    invitation_probability_phase3: float = 0.55
    declare_probability: float = 0.22
    inviter_copy_probability: float = 0.30
    #: Distinct values per attribute type.  Cities are few (huge, loosely knit
    #: communities) while employers are many (small, tightly knit ones) — this
    #: asymmetry is what reproduces the Figure 13b ordering.
    vocabulary_sizes: Dict[str, int] = field(
        default_factory=lambda: {"employer": 90, "school": 60, "major": 30, "city": 22}
    )
    tech_tilt_phase1: float = 0.45
    tech_tilt_phase2: float = 0.15
    tech_tilt_phase3: float = 0.05

    # Scenario regimes (all off by default — the paper's observed workload).
    #: Expected attribute-churn events per day: a uniform profiled user drops
    #: one declared attribute and redeclares a different value of the same
    #: type (users changing employers).  May exceed 1.
    attribute_churn_rate: float = 0.0
    #: Arrival bursts breaking the three-phase schedule.
    flash_crowds: Tuple[FlashCrowdDay, ...] = ()
    #: Sybil infiltration waves (Section 6.3 attack edges).
    sybil_waves: Tuple[SybilWaveDay, ...] = ()

    def __post_init__(self) -> None:
        require_probability(self.triadic_probability, "triadic_probability")
        require_probability(self.focal_probability, "focal_probability")
        if self.triadic_probability + self.focal_probability > 1.0:
            raise ValueError("triadic_probability + focal_probability must be <= 1")
        require_probability(self.declare_probability, "declare_probability")
        for name in (
            "reciprocation_phase1",
            "reciprocation_phase2",
            "reciprocation_phase3",
            "invitation_probability_phase3",
        ):
            require_probability(getattr(self, name), name)
        require_non_negative(self.attribute_churn_rate, "attribute_churn_rate")
        self.flash_crowds = tuple(self.flash_crowds)
        self.sybil_waves = tuple(self.sybil_waves)
        for crowd in self.flash_crowds:
            if crowd.day > self.num_days:
                raise ValueError(f"flash crowd day {crowd.day} exceeds num_days")
        for wave in self.sybil_waves:
            if wave.day > self.num_days:
                raise ValueError(f"sybil wave day {wave.day} exceeds num_days")


class GooglePlusSimulator:
    """Simulate the growth of a Google+-like SAN, day by day."""

    def __init__(self, config: Optional[GooglePlusConfig] = None, rng: RngLike = None) -> None:
        self.config = config if config is not None else GooglePlusConfig()
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> GroundTruthEvolution:
        """Run the full simulation and return the timed event log."""
        config = self.config
        rng = self._rng
        schedule = three_phase_schedule(
            total_users=config.total_users,
            num_days=config.num_days,
            phases=config.phases,
        )
        vocabularies = {
            attr_type: build_vocabulary(attr_type, num_values=size)
            for attr_type, size in config.vocabulary_sizes.items()
        }
        profile_model = ProfileModel(
            vocabularies=vocabularies,
            declare_probability=config.declare_probability,
            inviter_copy_probability=config.inviter_copy_probability,
        )

        evolution = GroundTruthEvolution(
            events=[], num_days=config.num_days, phases=config.phases
        )
        san = SAN()  # live state mirroring the event log
        next_user_id = 0
        # Per-day buckets of scheduled outgoing-link events (source node ids)
        # and of delayed reciprocation events (explicit directed pairs).
        pending_links: List[List[Node]] = [[] for _ in range(config.num_days + 2)]
        pending_reciprocations: List[List[Tuple[Node, Node]]] = [
            [] for _ in range(config.num_days + 2)
        ]
        in_degree_pool: List[Node] = []  # one entry per incoming link (for PA)
        all_users: List[Node] = []
        profiled_users: List[Node] = []  # users with a non-empty profile (churn pool)
        flash_extra: Dict[int, int] = {}
        for crowd in config.flash_crowds:
            flash_extra[crowd.day] = flash_extra.get(crowd.day, 0) + crowd.arrivals
        waves_by_day: Dict[int, List[SybilWaveDay]] = {}
        for wave in config.sybil_waves:
            waves_by_day.setdefault(wave.day, []).append(wave)

        def emit(day: int, event: ArrivalEvent) -> None:
            evolution.events.append(TimedEvent(day=day, event=event))
            apply_event(san, event)

        sybil_users: Set[Node] = set()

        def add_social_link(day: int, source: Node, target: Node) -> bool:
            if source == target or san.has_social_edge(source, target):
                return False
            emit(day, ArrivalEvent("social", source, target))
            # Sybil targets never enter the preferential-attachment pool:
            # intra-wave links must not make fake identities attractive to
            # honest users (only triadic closure can organically reach them).
            if target not in sybil_users:
                in_degree_pool.append(target)
            return True

        def maybe_reciprocate(day: int, source: Node, target: Node, probability: float) -> None:
            """Immediate reciprocation, or a delayed one scheduled for later."""
            if rng.random() < min(0.95, probability):
                add_social_link(day, target, source)
                return
            delayed = config.delayed_reciprocation_probability
            if san.common_attributes(source, target):
                delayed *= config.shared_attribute_reciprocation_boost
            if rng.random() < min(0.9, delayed):
                offset = int(rng.expovariate(1.0 / config.delayed_reciprocation_mean_days)) + 1
                future = day + offset
                if future <= config.num_days:
                    pending_reciprocations[future].append((target, source))

        for day in range(1, config.num_days + 1):
            phase = config.phases.phase_of(day)
            tech_tilt = self._tech_tilt(phase)
            reciprocation = self._reciprocation(day, rng)

            # ---------------------- new user arrivals ----------------------
            for _ in range(schedule.arrivals_on(day) + flash_extra.get(day, 0)):
                user = next_user_id
                next_user_id += 1
                evolution.join_day[user] = day
                emit(day, ArrivalEvent("node", user))

                inviter = self._pick_inviter(all_users, in_degree_pool, phase, rng)
                inviter_profile = (
                    evolution.profiles.get(inviter) if inviter is not None else None
                )
                profile = profile_model.sample_profile(
                    rng=rng, inviter_profile=inviter_profile, tech_tilt=tech_tilt
                )
                evolution.profiles[user] = profile
                if profile:
                    profiled_users.append(user)
                for attr_type, value in profile.items():
                    emit(
                        day,
                        ArrivalEvent(
                            "attribute",
                            user,
                            attribute_node_id(attr_type, value),
                            attr_type=attr_type,
                            value=value,
                        ),
                    )

                all_users.append(user)

                if inviter is not None and add_social_link(day, user, inviter):
                    maybe_reciprocate(day, user, inviter, reciprocation * 1.2)

                # Schedule this user's future outgoing links.
                budget = self._sample_link_budget(profile, rng)
                for _ in range(budget):
                    offset = int(rng.expovariate(1.0 / config.link_spread_days)) + 1
                    target_day = day + offset
                    if target_day <= config.num_days:
                        pending_links[target_day].append(user)

            # ---------------------- Sybil infiltration waves ----------------------
            # Sybils stay out of all_users (never inviters, PA or focal
            # targets) and schedule no link budgets; only their attack edges
            # (and intra-wave links) touch the honest region.
            for wave in waves_by_day.get(day, ()):
                wave_members: List[Node] = []
                for _ in range(wave.num_sybils):
                    sybil = next_user_id
                    next_user_id += 1
                    evolution.join_day[sybil] = day
                    evolution.profiles[sybil] = {}
                    evolution.sybil_nodes.append(sybil)
                    sybil_users.add(sybil)
                    wave_members.append(sybil)
                    emit(day, ArrivalEvent("node", sybil))
                    for _ in range(wave.attack_edges_per_sybil):
                        if not all_users:
                            break
                        victim = all_users[rng.randrange(len(all_users))]
                        add_social_link(day, sybil, victim)
                if len(wave_members) >= 2:
                    for _ in range(wave.intra_links):
                        first = wave_members[rng.randrange(len(wave_members))]
                        second = wave_members[rng.randrange(len(wave_members))]
                        if first == second:
                            continue
                        add_social_link(day, first, second)
                        add_social_link(day, second, first)

            # ---------------------- scheduled link creation ----------------------
            for source in pending_links[day]:
                if not san.is_social_node(source):
                    continue
                target = self._pick_link_target(san, source, in_degree_pool, all_users, rng)
                if target is None:
                    continue
                if add_social_link(day, source, target):
                    maybe_reciprocate(day, source, target, reciprocation)

            # ---------------------- delayed reciprocations ----------------------
            for source, target in pending_reciprocations[day]:
                if san.is_social_node(source) and san.is_social_node(target):
                    add_social_link(day, source, target)

            # ---------------------- attribute churn ----------------------
            # A profiled user drops one declared attribute and redeclares a
            # different value of the same type (changing employers); the
            # event log records the removal so every snapshot view agrees.
            if config.attribute_churn_rate > 0.0:
                churn_events = int(config.attribute_churn_rate)
                fraction = config.attribute_churn_rate - churn_events
                if fraction > 0.0 and rng.random() < fraction:
                    churn_events += 1
                for _ in range(churn_events):
                    if not profiled_users:
                        break
                    user = profiled_users[rng.randrange(len(profiled_users))]
                    profile = evolution.profiles[user]
                    attr_types = list(profile)
                    attr_type = attr_types[rng.randrange(len(attr_types))]
                    old_value = profile[attr_type]
                    emit(
                        day,
                        ArrivalEvent(
                            "attribute_remove",
                            user,
                            attribute_node_id(attr_type, old_value),
                        ),
                    )
                    vocabulary = vocabularies[attr_type]
                    new_value = old_value
                    for _attempt in range(10):
                        new_value = vocabulary.sample(rng=rng)
                        if new_value != old_value:
                            break
                    if new_value == old_value:
                        del profile[attr_type]
                        if not profile:
                            profiled_users.remove(user)
                        continue
                    profile[attr_type] = new_value
                    emit(
                        day,
                        ArrivalEvent(
                            "attribute",
                            user,
                            attribute_node_id(attr_type, new_value),
                            attr_type=attr_type,
                            value=new_value,
                        ),
                    )

        return evolution

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _tech_tilt(self, phase: int) -> float:
        config = self.config
        if phase == 1:
            return config.tech_tilt_phase1
        if phase == 2:
            return config.tech_tilt_phase2
        return config.tech_tilt_phase3

    def _reciprocation(self, day: int, rng) -> float:
        """Phase-dependent reciprocation probability with small daily noise."""
        config = self.config
        phase = config.phases.phase_of(day)
        if phase == 1:
            base = config.reciprocation_phase1
        elif phase == 2:
            # Linear decline across phase II.
            span = max(config.phases.phase_two_end - config.phases.phase_one_end, 1)
            progress = (day - config.phases.phase_one_end) / span
            base = config.reciprocation_phase1 + progress * (
                config.reciprocation_phase2 - config.reciprocation_phase1
            )
        else:
            base = config.reciprocation_phase3
        return max(0.05, base + rng.uniform(-0.02, 0.02))

    def _pick_inviter(
        self, all_users: List[Node], in_degree_pool: List[Node], phase: int, rng
    ) -> Optional[Node]:
        """Choose an inviter ∝ (in-degree + 1); Phase III users may join uninvited."""
        if not all_users:
            return None
        if phase == 3 and rng.random() > self.config.invitation_probability_phase3:
            return None
        total = len(in_degree_pool) + len(all_users)
        if in_degree_pool and rng.random() * total < len(in_degree_pool):
            return in_degree_pool[rng.randrange(len(in_degree_pool))]
        return all_users[rng.randrange(len(all_users))]

    def _sample_link_budget(self, profile: Dict[str, str], rng) -> int:
        """Lognormal outgoing-link budget, boosted for tech-profile users."""
        config = self.config
        draw = rng.lognormvariate(config.degree_mu, config.degree_sigma)
        if profile.get("employer") in ("Google", "Microsoft", "Intel", "Facebook") or (
            profile.get("major") == "Computer Science"
        ):
            draw *= config.tech_degree_boost
        return max(0, int(round(draw)))

    def _pick_link_target(
        self,
        san: SAN,
        source: Node,
        in_degree_pool: List[Node],
        all_users: List[Node],
        rng,
    ) -> Optional[Node]:
        """Target selection: triadic closure / focal closure / attribute-boosted PA."""
        config = self.config
        roll = rng.random()
        if roll < config.triadic_probability:
            target = self._triadic_target(san, source, rng)
            if target is not None:
                return target
        elif roll < config.triadic_probability + config.focal_probability:
            target = self._focal_target(san, source, rng)
            if target is not None:
                return target
        return self._attachment_target(san, source, in_degree_pool, all_users, rng)

    def _triadic_target(self, san: SAN, source: Node, rng) -> Optional[Node]:
        neighbors = list(san.social_neighbors(source))
        if not neighbors:
            return None
        for _ in range(5):
            intermediate = neighbors[rng.randrange(len(neighbors))]
            second = [
                node
                for node in san.social_neighbors(intermediate)
                if node != source and not san.has_social_edge(source, node)
            ]
            if second:
                return second[rng.randrange(len(second))]
        return None

    def _weighted_attribute_of(self, san: SAN, source: Node, rng) -> Optional[Node]:
        """Pick one of the source's attributes weighted by its type's focal weight.

        The neighbor set holds string attribute ids, whose set-iteration order
        varies with ``PYTHONHASHSEED``; sorting pins the cumulative-weight draw
        so the simulation is a pure function of its RNG seed.
        """
        attributes = sorted(san.attribute_neighbors(source))
        if not attributes:
            return None
        weights = [
            self.config.focal_type_weights.get(san.attribute_type(attribute), 1.0)
            for attribute in attributes
        ]
        total = sum(weights)
        if total <= 0:
            return attributes[rng.randrange(len(attributes))]
        threshold = rng.random() * total
        cumulative = 0.0
        for attribute, weight in zip(attributes, weights):
            cumulative += weight
            if cumulative >= threshold:
                return attribute
        return attributes[-1]

    def _member_of_attribute(self, san: SAN, attribute: Node, source: Node, rng) -> Optional[Node]:
        """Pick a community member with probability ∝ (in-degree + 1).

        Weighting by degree keeps the within-community choice consistent with
        LAPA's ``d_i(v) * (1 + beta a(u, v))`` form, which is what makes
        ``alpha = 1`` the best-fitting exponent in the Figure 15 sweep.
        """
        members = [
            node
            for node in san.attributes.members_of(attribute)
            if node != source and not san.has_social_edge(source, node)
        ]
        if not members:
            return None
        weights = [san.social_in_degree(node) + 1.0 for node in members]
        total = sum(weights)
        threshold = rng.random() * total
        cumulative = 0.0
        for node, weight in zip(members, weights):
            cumulative += weight
            if cumulative >= threshold:
                return node
        return members[-1]

    def _focal_target(self, san: SAN, source: Node, rng) -> Optional[Node]:
        for _ in range(5):
            attribute = self._weighted_attribute_of(san, source, rng)
            if attribute is None:
                return None
            target = self._member_of_attribute(san, attribute, source, rng)
            if target is not None:
                return target
        return None

    def _attachment_target(
        self,
        san: SAN,
        source: Node,
        in_degree_pool: List[Node],
        all_users: List[Node],
        rng,
    ) -> Optional[Node]:
        """Attribute-aware attachment: approximate LAPA mixed with plain PA.

        With probability ``attachment_lapa_share`` (and if the source declares
        attributes) the target is drawn from one of the source's attribute
        communities — the practical LAPA heuristic of Section 7; otherwise the
        target follows preferential attachment on in-degree (+1 smoothing).
        """
        config = self.config
        if not all_users:
            return None
        if (
            san.attribute_degree(source) > 0
            and rng.random() < config.attachment_lapa_share
        ):
            attribute = self._weighted_attribute_of(san, source, rng)
            if attribute is not None:
                target = self._member_of_attribute(san, attribute, source, rng)
                if target is not None:
                    return target
        for _ in range(15):
            total = len(in_degree_pool) + len(all_users)
            if in_degree_pool and rng.random() * total < len(in_degree_pool):
                candidate = in_degree_pool[rng.randrange(len(in_degree_pool))]
            else:
                candidate = all_users[rng.randrange(len(all_users))]
            if candidate != source and not san.has_social_edge(source, candidate):
                return candidate
        return None


def simulate_google_plus(
    config: Optional[GooglePlusConfig] = None, rng: RngLike = None
) -> GroundTruthEvolution:
    """Convenience wrapper: run the simulator once and return the evolution."""
    return GooglePlusSimulator(config=config, rng=rng).run()
