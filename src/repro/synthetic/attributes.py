"""Attribute vocabularies for the synthetic Google+ substrate.

The real dataset has four attribute types — School, Major, Employer and City —
whose value popularity is heavily skewed (a handful of employers and cities
account for a large share of the declarations).  The vocabulary here mirrors
that: each type has a configurable number of values with Zipf-distributed
popularity, and the most popular values carry recognisable names (Google,
Computer Science, ...) so the Figure 14 reproduction reads like the paper.

Early Google+ adopters were disproportionately tech-industry users; the
vocabulary supports a "tech tilt" that boosts the probability of tech-related
employers/majors for users joining in the earliest phase, which is what makes
the Employer=Google / Major=Computer Science degree effect of Figure 14
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..utils.rng import RngLike, ensure_rng

#: Named heads of each vocabulary, matching the values the paper highlights.
NAMED_VALUES: Dict[str, List[str]] = {
    "employer": ["Google", "Microsoft", "IBM", "Infosys", "Intel", "Facebook"],
    "major": [
        "Computer Science",
        "Economics",
        "Political Science",
        "Finance",
        "Electrical Engineering",
    ],
    "school": ["UC Berkeley", "Stanford", "MIT", "Tsinghua", "CMU"],
    "city": ["San Francisco", "New York", "London", "Bangalore", "Beijing"],
}

#: Values considered "tech" for the early-adopter tilt.
TECH_VALUES = {"Google", "Microsoft", "Intel", "Facebook", "Computer Science",
               "Electrical Engineering", "San Francisco"}


@dataclass
class AttributeVocabulary:
    """A Zipf-weighted vocabulary of attribute values for one attribute type."""

    attr_type: str
    values: List[str]
    zipf_exponent: float = 1.1
    _weights: List[float] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("an attribute vocabulary needs at least one value")
        self._weights = [
            1.0 / (rank ** self.zipf_exponent) for rank in range(1, len(self.values) + 1)
        ]

    def sample(self, rng: RngLike = None, tech_tilt: float = 0.0) -> str:
        """Draw a value; ``tech_tilt`` in [0, 1] boosts tech-related values."""
        generator = ensure_rng(rng)
        if tech_tilt > 0 and generator.random() < tech_tilt:
            tech_candidates = [value for value in self.values if value in TECH_VALUES]
            if tech_candidates:
                return tech_candidates[generator.randrange(len(tech_candidates))]
        total = sum(self._weights)
        threshold = generator.random() * total
        cumulative = 0.0
        for value, weight in zip(self.values, self._weights):
            cumulative += weight
            if cumulative >= threshold:
                return value
        return self.values[-1]

    def __len__(self) -> int:
        return len(self.values)


def build_vocabulary(
    attr_type: str, num_values: int = 200, zipf_exponent: float = 1.1
) -> AttributeVocabulary:
    """Build a vocabulary with named heads followed by synthetic long-tail values."""
    named = NAMED_VALUES.get(attr_type, [])
    values = list(named)
    index = 0
    while len(values) < num_values:
        values.append(f"{attr_type.title()}_{index:04d}")
        index += 1
    return AttributeVocabulary(
        attr_type=attr_type, values=values[:num_values], zipf_exponent=zipf_exponent
    )


def default_vocabularies(
    num_values: int = 200, zipf_exponent: float = 1.1
) -> Dict[str, AttributeVocabulary]:
    """The four Google+ attribute-type vocabularies used by the simulator."""
    return {
        attr_type: build_vocabulary(attr_type, num_values=num_values, zipf_exponent=zipf_exponent)
        for attr_type in ("employer", "school", "major", "city")
    }


@dataclass
class ProfileModel:
    """Sampler for a new user's declared attributes.

    ``declare_probability`` is the probability that the user declares anything
    at all (~22% on Google+).  A declaring user then declares each type
    independently with ``type_probabilities``; the value is either copied from
    the inviter's profile (homophily — this plants the attribute influence on
    link structure that Sections 4.2 and 5 measure) or drawn from the type's
    vocabulary with an early-adopter tech tilt.
    """

    vocabularies: Dict[str, AttributeVocabulary]
    declare_probability: float = 0.22
    type_probabilities: Dict[str, float] = field(
        default_factory=lambda: {
            "employer": 0.55,
            "school": 0.65,
            "major": 0.50,
            "city": 0.70,
        }
    )
    inviter_copy_probability: float = 0.3

    def sample_profile(
        self,
        rng: RngLike = None,
        inviter_profile: Optional[Dict[str, str]] = None,
        tech_tilt: float = 0.0,
    ) -> Dict[str, str]:
        """Sample the ``{attr_type: value}`` profile of a new user (possibly empty)."""
        generator = ensure_rng(rng)
        if generator.random() >= self.declare_probability:
            return {}
        profile: Dict[str, str] = {}
        for attr_type, vocabulary in self.vocabularies.items():
            if generator.random() >= self.type_probabilities.get(attr_type, 0.5):
                continue
            copied = None
            if (
                inviter_profile
                and attr_type in inviter_profile
                and generator.random() < self.inviter_copy_probability
            ):
                copied = inviter_profile[attr_type]
            profile[attr_type] = (
                copied
                if copied is not None
                else vocabulary.sample(rng=generator, tech_tilt=tech_tilt)
            )
        return profile
