"""Synthetic Google+ substrate: vocabularies, arrival schedules, the simulator."""

from .arrival import ArrivalSchedule, constant_schedule, three_phase_schedule
from .attributes import (
    NAMED_VALUES,
    TECH_VALUES,
    AttributeVocabulary,
    ProfileModel,
    build_vocabulary,
    default_vocabularies,
)
from .gplus import (
    GooglePlusConfig,
    GooglePlusSimulator,
    GroundTruthEvolution,
    TimedEvent,
    simulate_google_plus,
)
from .workloads import (
    BENCH_SEED,
    EvolutionWorkload,
    build_workload,
    default_config,
    dense_config,
    generative_params,
    high_reciprocity_config,
    large_config,
    small_config,
    sparse_config,
    standard_snapshot_days,
    tiny_config,
)

__all__ = [
    "ArrivalSchedule",
    "constant_schedule",
    "three_phase_schedule",
    "NAMED_VALUES",
    "TECH_VALUES",
    "AttributeVocabulary",
    "ProfileModel",
    "build_vocabulary",
    "default_vocabularies",
    "GooglePlusConfig",
    "GooglePlusSimulator",
    "GroundTruthEvolution",
    "TimedEvent",
    "simulate_google_plus",
    "BENCH_SEED",
    "EvolutionWorkload",
    "build_workload",
    "default_config",
    "dense_config",
    "generative_params",
    "high_reciprocity_config",
    "large_config",
    "small_config",
    "sparse_config",
    "standard_snapshot_days",
    "tiny_config",
]
