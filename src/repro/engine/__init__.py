"""Backend-dispatch engine: kernel registry + optional-dependency gating.

The engine is the only place in the library that inspects a graph's backend.
Metric and algorithm modules declare a portable implementation with
:func:`dispatchable` and attach vectorized backend kernels with
:func:`kernel`; callers keep calling plain functions.  See
:mod:`repro.engine.registry` for the dispatch rules and
:mod:`repro.engine.deps` for how optional dependencies (scipy) are gated.
"""

from . import deps, parallel
from .registry import (
    DEFAULT_PARALLEL_THRESHOLD,
    FROZEN,
    MUTABLE,
    PARALLEL,
    DuplicateKernelError,
    EngineConfig,
    EngineError,
    Kernel,
    NoKernelError,
    UnknownOperationError,
    backend_of,
    config,
    configure,
    dispatch,
    dispatchable,
    frozen_view,
    graph_size,
    kernel,
    kernels_for,
    list_ops,
    register,
    resolve,
    select,
)

__all__ = [
    "DEFAULT_PARALLEL_THRESHOLD",
    "FROZEN",
    "MUTABLE",
    "PARALLEL",
    "DuplicateKernelError",
    "EngineConfig",
    "EngineError",
    "Kernel",
    "NoKernelError",
    "UnknownOperationError",
    "backend_of",
    "config",
    "configure",
    "deps",
    "dispatch",
    "dispatchable",
    "frozen_view",
    "graph_size",
    "kernel",
    "kernels_for",
    "list_ops",
    "parallel",
    "register",
    "resolve",
    "select",
]
