"""Lazy, guarded access to optional acceleration dependencies.

The only optional dependency today is scipy: several frozen kernels use
``scipy.sparse`` matrix products and ``scipy.sparse.csgraph`` connectivity
routines when they are available, and fall back to batched-numpy code
otherwise.  All scipy imports in the library go through this module, so

* importing :mod:`repro` never imports scipy eagerly,
* the kernel registry can ask :func:`have_scipy` *at dispatch time* and pick
  a fallback kernel when scipy is missing, and
* the test suite / CI can force the numpy-only paths on a machine that has
  scipy installed by setting ``REPRO_NO_SCIPY=1`` in the environment.

Install the optional accelerators with ``pip install -e .[fast]``.
"""

from __future__ import annotations

import importlib
import os
from typing import Any, Dict, Optional

#: Environment variable that disables scipy even when it is importable.
DISABLE_ENV_VAR = "REPRO_NO_SCIPY"

_TRUTHY = {"1", "true", "yes", "on"}

#: Import cache: module name -> module object or None (import failed).
_modules: Dict[str, Optional[Any]] = {}


def env_flag(name: str) -> bool:
    """Whether environment variable ``name`` holds a truthy value.

    Read from the environment on every call (it is one dict lookup) so tests
    can flip a flag with ``monkeypatch.setenv`` without reimporting.  Shared
    by every engine escape hatch (``REPRO_NO_SCIPY``, ``REPRO_NO_PARALLEL``).
    """
    return os.environ.get(name, "").strip().lower() in _TRUTHY


def scipy_disabled() -> bool:
    """Whether ``REPRO_NO_SCIPY`` asks for the numpy-only fallback paths."""
    return env_flag(DISABLE_ENV_VAR)


#: Environment variable that arms the runtime sanitizer
#: (:mod:`repro.sanitize`): backend-parity re-execution at dispatch time,
#: read-only worker views, NaN/Inf screening, artifact integrity re-hashing.
#: Defined here (not in ``repro.sanitize``) so the engine and artifact layers
#: can probe it without importing the sanitizer.
SANITIZE_ENV_VAR = "REPRO_SANITIZE"


def sanitize_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` arms the runtime sanitizer.

    Read per call, like every other escape hatch: the pipeline ``--sanitize``
    flag and tests flip the variable mid-process.
    """
    return env_flag(SANITIZE_ENV_VAR)


def _import(name: str) -> Optional[Any]:
    if name not in _modules:
        try:
            _modules[name] = importlib.import_module(name)
        except ImportError:
            _modules[name] = None
    return _modules[name]


def scipy_sparse() -> Optional[Any]:
    """The ``scipy.sparse`` module, or ``None`` when unavailable/disabled."""
    if scipy_disabled():
        return None
    return _import("scipy.sparse")


def scipy_csgraph() -> Optional[Any]:
    """The ``scipy.sparse.csgraph`` module, or ``None`` when unavailable/disabled."""
    if scipy_disabled():
        return None
    return _import("scipy.sparse.csgraph")


def have_scipy() -> bool:
    """Whether the scipy-backed kernels may be selected right now."""
    return scipy_sparse() is not None


def reset_cache() -> None:
    """Forget import results (test helper; normal code never needs this)."""
    _modules.clear()
