"""Shared-memory process-pool infrastructure for the ``parallel`` kernel tier.

The frozen CSR kernels are fast but single-core.  This module provides the
plumbing that lets a kernel fan node-range chunks out to a process pool
*without* pickling the graph:

* :class:`SharedCSR` packs a bundle of named numpy arrays (an ``indptr`` /
  ``indices`` pair, a register matrix, ...) into **one**
  :class:`multiprocessing.shared_memory.SharedMemory` segment.  The picklable
  :class:`SharedCSRSpec` carries only the segment name and per-array layout;
  workers reconstruct zero-copy numpy views with :func:`attach_views`.
* :func:`shared_arrays` memoizes one exported bundle per (frozen graph, key)
  in a weak-keyed cache, so a graph's CSR arrays cross the process boundary
  exactly once no matter how many parallel kernels run on it.  Segments are
  unlinked when the graph is garbage-collected, at :func:`shutdown`, and at
  interpreter exit.
* :func:`executor` lazily creates a fork-context
  :class:`~concurrent.futures.ProcessPoolExecutor` (spawn where fork is
  unavailable) and recreates it when the requested worker count or the owning
  pid changes — so a forked child never reuses its parent's pool.  Workers
  run with ``REPRO_NO_PARALLEL=1`` so a parallel kernel can never recursively
  spawn pools.

Escape hatches follow the ``REPRO_NO_SCIPY`` pattern in
:mod:`repro.engine.deps`: ``REPRO_NO_PARALLEL=1`` disables the tier entirely
(the registry probe turns every parallel kernel unavailable, so dispatch
falls through to the frozen kernels), and ``REPRO_MAX_WORKERS=N`` bounds the
pool size.  The tier also self-disables on effectively single-core machines
(``max_workers() < 2``): chunk scheduling overhead cannot pay for itself
there.

Every parallel kernel built on this module is **bit-identical** to its frozen
counterpart — chunk boundaries are chosen so per-chunk results combine
exactly (integer sums, per-row arrays, fixed per-chunk RNG streams), never
approximately.
"""

from __future__ import annotations

import atexit
import itertools
import os
import weakref
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context, resource_tracker, shared_memory
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from . import deps

#: Environment variable that disables the parallel tier even on multi-core.
DISABLE_ENV_VAR = "REPRO_NO_PARALLEL"

#: Environment variable bounding the pool size (default: ``os.cpu_count()``).
MAX_WORKERS_ENV_VAR = "REPRO_MAX_WORKERS"

#: Prefix of every segment this module creates, so tests can scan ``/dev/shm``
#: for leaks without false positives from other libraries.
SEGMENT_PREFIX = "repro-shm-"


def parallel_disabled() -> bool:
    """Whether ``REPRO_NO_PARALLEL`` asks for the single-process fallback."""
    return deps.env_flag(DISABLE_ENV_VAR)


def max_workers() -> int:
    """Worker count the pool would use: ``REPRO_MAX_WORKERS`` or cpu count."""
    value = os.environ.get(MAX_WORKERS_ENV_VAR, "").strip()
    if value:
        try:
            return max(1, int(value))
        except ValueError:
            pass
    return os.cpu_count() or 1


def parallel_available() -> bool:
    """Probe for the registry's ``"parallel"`` kernel requirement.

    Evaluated at dispatch time: the tier is selectable only when it is not
    disabled via the environment and at least two workers are available —
    on one core the chunked kernels cannot beat their frozen counterparts.
    """
    return not parallel_disabled() and max_workers() >= 2


# ----------------------------------------------------------------------
# Shared-memory array bundles
# ----------------------------------------------------------------------
#: Alignment of each array within a segment (cache-line friendly).
_ALIGN = 64

_segment_counter = itertools.count()


def _segment_name() -> str:
    return f"{SEGMENT_PREFIX}{os.getpid()}-{next(_segment_counter)}"


@dataclass(frozen=True)
class SharedCSRSpec:
    """Picklable handle of a :class:`SharedCSR`: segment name + array layout.

    ``fields`` maps array name -> ``(byte offset, shape, dtype string)``.
    This is all a worker needs to rebuild zero-copy views; the array data
    itself never crosses the pickle boundary.
    """

    name: str
    fields: Tuple[Tuple[str, Tuple[int, Tuple[int, ...], str]], ...]


#: Segment name -> live SharedCSR, for shutdown()/atexit cleanup.
_LIVE_SEGMENTS: Dict[str, "SharedCSR"] = {}


class SharedCSR:
    """Named numpy arrays packed into one owned shared-memory segment.

    The creating process owns the segment: :meth:`unlink` (idempotent)
    removes it from the system.  Workers attach by spec via
    :func:`attach_views` and never own anything.
    """

    def __init__(self, arrays: Mapping[str, np.ndarray]) -> None:
        layout: List[Tuple[str, Tuple[int, Tuple[int, ...], str]]] = []
        contiguous: Dict[str, np.ndarray] = {}
        offset = 0
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            contiguous[name] = array
            layout.append((name, (offset, tuple(array.shape), array.dtype.str)))
            offset += array.nbytes
            offset += (-offset) % _ALIGN
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(offset, 1), name=_segment_name()
        )
        for name, (start, shape, dtype) in layout:
            view = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=self._shm.buf, offset=start
            )
            view[...] = contiguous[name]
        self.spec = SharedCSRSpec(name=self._shm.name, fields=tuple(layout))
        self._unlinked = False
        _LIVE_SEGMENTS[self._shm.name] = self

    def view(self, field: str) -> np.ndarray:
        """Zero-copy view of one packed array (owner-side).

        Views keep the mapping alive; drop them before expecting the memory
        to be released.
        """
        for name, (start, shape, dtype) in self.spec.fields:
            if name == field:
                return np.ndarray(
                    shape, dtype=np.dtype(dtype), buffer=self._shm.buf, offset=start
                )
        raise KeyError(field)

    def unlink(self) -> None:
        """Remove the segment from the system (idempotent).

        The mapping itself is released when the last live view is collected;
        the ``/dev/shm`` entry disappears immediately either way.
        """
        if self._unlinked:
            return
        self._unlinked = True
        _LIVE_SEGMENTS.pop(self._shm.name, None)
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        try:
            self._shm.close()
        except BufferError:
            pass  # live views still reference the buffer; unmapped at their GC


def live_segment_names() -> List[str]:
    """Names of every segment this process currently owns (test hook)."""
    return sorted(_LIVE_SEGMENTS)


# ----------------------------------------------------------------------
# Per-graph export cache (owner side)
# ----------------------------------------------------------------------
#: frozen graph -> {key: SharedCSR}.  Weakly keyed: exported bundles die with
#: their graph (via the finalizer registered below), never the reverse.
_graph_segments: "weakref.WeakKeyDictionary[Any, Dict[str, SharedCSR]]" = (
    weakref.WeakKeyDictionary()
)


def _unlink_bundle(bundle: Dict[str, SharedCSR]) -> None:
    for shared in bundle.values():
        shared.unlink()


def shared_arrays(
    graph: Any, key: str, factory: Callable[[], Mapping[str, np.ndarray]]
) -> SharedCSRSpec:
    """Memoized shared-memory export of ``factory()``'s arrays for ``graph``.

    The first call per (graph, key) packs the arrays into a segment; later
    calls return the existing spec without touching the arrays.  The segment
    is unlinked when the graph is garbage-collected (or at
    :func:`shutdown`).  Graphs that cannot be weak-referenced still work but
    are only cleaned up at shutdown/exit.
    """
    try:
        bundle = _graph_segments.get(graph)
    except TypeError:
        bundle = None
    if bundle is None:
        bundle = {}
        try:
            _graph_segments[graph] = bundle
            weakref.finalize(graph, _unlink_bundle, bundle)
        except TypeError:
            pass
    shared = bundle.get(key)
    if shared is None:
        shared = SharedCSR(factory())
        bundle[key] = shared
    return shared.spec


def shared_undirected_csr(graph: Any) -> SharedCSRSpec:
    """Shared export of a frozen graph's undirected CSR (memoized)."""
    return shared_arrays(
        graph,
        "undirected_csr",
        lambda: dict(zip(("indptr", "indices"), graph.undirected_csr())),
    )


def shared_out_csr(graph: Any) -> SharedCSRSpec:
    """Shared export of a frozen graph's out-adjacency CSR (memoized)."""
    return shared_arrays(
        graph,
        "out_csr",
        lambda: dict(zip(("indptr", "indices"), graph.out_csr())),
    )


# ----------------------------------------------------------------------
# Worker-side attach machinery
# ----------------------------------------------------------------------
#: Segment name -> attached SharedMemory (worker-side, keeps mappings alive).
_attached: Dict[str, shared_memory.SharedMemory] = {}

#: (segment name, key) -> derived object (worker-side; e.g. a scipy matrix
#: wrapped around the shared arrays, rebuilt once per worker, not per chunk).
_attached_derived: Dict[Tuple[str, str], Any] = {}


#: True in pool workers whose resource tracker is *inherited* from the owner
#: (fork start method).  There the owner's create-time registration already
#: protects the segment and an extra unregister would strip it.
_tracker_inherited = False


def _attach(name: str) -> shared_memory.SharedMemory:
    shm = _attached.get(name)
    if shm is None:
        shm = shared_memory.SharedMemory(name=name)
        # Python <= 3.12 registers every attach with the resource tracker,
        # and a *spawn* worker gets its own tracker — which would unlink the
        # owner's segment when the worker exits.  The owner manages the
        # lifecycle; opt the attach out.  Skip in the owner itself and in
        # fork workers (shared tracker: the registration set is deduplicated,
        # and unregistering would both drop the owner's leak protection and
        # make its later ``unlink()`` double-unregister).
        if name not in _LIVE_SEGMENTS and not _tracker_inherited:
            try:
                resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
            except Exception:
                pass
        _attached[name] = shm
    return shm


def _views(spec: SharedCSRSpec, writeable: bool) -> Dict[str, np.ndarray]:
    shm = _attach(spec.name)
    views = {
        name: np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset
        )
        for name, (offset, shape, dtype) in spec.fields
    }
    if not writeable:
        for view in views.values():
            view.flags.writeable = False
    return views


def attach_views(spec: SharedCSRSpec) -> Dict[str, np.ndarray]:
    """Zero-copy numpy views of a :class:`SharedCSRSpec`'s arrays.

    Works in any process: workers attach (and cache) the segment by name;
    in the owning process the views are equivalent to :meth:`SharedCSR.view`.

    Under ``REPRO_SANITIZE=1`` the views handed to a *non-owning* process
    (a pool worker) are read-only: a worker that writes through an input
    view raises ``ValueError: assignment destination is read-only`` instead
    of silently corrupting shared state for every sibling chunk.  Workers
    that legitimately fill a result buffer must ask for it explicitly via
    :func:`attach_output_views`.
    """
    writeable = spec.name in _LIVE_SEGMENTS or not deps.sanitize_enabled()
    return _views(spec, writeable)


def attach_output_views(spec: SharedCSRSpec) -> Dict[str, np.ndarray]:
    """Writeable views of a spec whose arrays a worker *intends* to fill.

    The explicit opt-out of the sanitizer's read-only clamp: chunked kernels
    that scatter per-chunk results into a shared output buffer (e.g. the
    HyperANF register ping-pong) attach it through this function.  Chunk
    ranges must be disjoint — the sanitizer cannot check that, only that no
    worker writes through a view it attached as *input*.
    """
    return _views(spec, True)


def attached_derived(spec: SharedCSRSpec, key: str, factory: Callable[[], Any]) -> Any:
    """Worker-side memo of an object derived from a shared bundle.

    Keyed by segment name, so the cache is naturally invalidated when a new
    graph exports a new segment.  Bounded: cleared wholesale if it grows past
    a few dozen graphs (worker processes are long-lived).
    """
    token = (spec.name, key)
    value = _attached_derived.get(token)
    if value is None:
        if len(_attached_derived) > 64:
            _attached_derived.clear()
        value = factory()
        _attached_derived[token] = value
    return value


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
_pool: Optional[ProcessPoolExecutor] = None
_pool_workers = 0
_pool_pid = 0


def _worker_init(start_method: str) -> None:
    global _tracker_inherited
    # A worker must never spawn its own pool: disable the tier inside it so
    # any dispatch it performs lands on the frozen kernels.
    os.environ[DISABLE_ENV_VAR] = "1"
    _tracker_inherited = start_method == "fork"
    # A fork child inherits the owner's bookkeeping by copy; it owns none of
    # those segments and must never unlink them.
    _LIVE_SEGMENTS.clear()
    _graph_segments.clear()


def executor() -> ProcessPoolExecutor:
    """The lazily created worker pool (fork context, spawn as fallback).

    Recreated when ``REPRO_MAX_WORKERS`` changes or after a fork (a child
    process must not submit to the pool file descriptors it inherited).
    """
    global _pool, _pool_workers, _pool_pid
    workers = max_workers()
    if _pool is not None and (_pool_workers != workers or _pool_pid != os.getpid()):
        if _pool_pid == os.getpid():
            _pool.shutdown(wait=True, cancel_futures=True)
        _pool = None
    if _pool is None:
        try:
            context = get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = get_context("spawn")
        _pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_worker_init,
            initargs=(context.get_start_method(),),
        )
        _pool_workers = workers
        _pool_pid = os.getpid()
    return _pool


def chunk_ranges(total: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into at most ``parts`` contiguous ``[lo, hi)`` spans.

    Deterministic and near-equal; empty spans are dropped, so the result may
    be shorter than ``parts`` (and empty when ``total == 0``).
    """
    parts = max(1, min(parts, total))
    bounds = np.linspace(0, total, parts + 1).astype(np.int64)
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(parts)
        if bounds[i + 1] > bounds[i]
    ]


def run_chunks(fn: Callable[..., Any], chunk_args: Sequence[Tuple]) -> List[Any]:
    """Run ``fn(*args)`` on the pool for every args tuple, in order.

    Results are returned in submission order (chunk order), which is what
    lets callers ``np.concatenate`` per-chunk arrays back into the exact
    layout the frozen kernel would have produced.  The first failure cancels
    the remaining chunks and propagates.
    """
    if not chunk_args:
        return []
    pool = executor()
    futures = [pool.submit(fn, *args) for args in chunk_args]
    try:
        return [future.result() for future in futures]
    except BaseException:
        for future in futures:
            future.cancel()
        raise


def shutdown() -> None:
    """Terminate the pool and unlink every shared segment this process owns.

    Safe to call repeatedly; the pool and segments are recreated on demand.
    Registered with :mod:`atexit`, so a normal interpreter exit never leaks
    ``/dev/shm`` entries.
    """
    global _pool
    if _pool is not None and _pool_pid == os.getpid():
        _pool.shutdown(wait=True, cancel_futures=True)
    _pool = None
    for shared in list(_LIVE_SEGMENTS.values()):
        shared.unlink()
    # Exported specs now dangle; drop the per-graph memo so the next kernel
    # call re-exports instead of handing workers a dead segment name.
    _graph_segments.clear()


atexit.register(shutdown)
