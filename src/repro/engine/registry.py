"""Backend-dispatch engine: a kernel registry keyed by (operation, backend).

PR 1 wired the frozen CSR fast paths into the metrics layer with scattered
``isinstance(san, FrozenSAN)`` checks.  That idiom does not scale to more
backends (sharded, GPU, remote) or more operations, so this module replaces
it with an explicit registry:

* an *operation* is a named measurement/algorithm entry point whose first
  positional argument is the graph (``"social_knn"``, ``"components.weak"``,
  ``"random_walks"``, ...);
* a *kernel* is one implementation of an operation for one backend,
  registered with the :func:`kernel` decorator, optionally gated on a
  requirement (``requires="scipy"``) and ranked by ``priority``;
* :func:`dispatch` resolves the backend of the input graph, picks the best
  available kernel, and calls it.  A frozen graph with no frozen kernel falls
  back to the portable (mutable-backend) implementation, which every frozen
  graph can run because it satisfies the read-only
  :class:`~repro.graph.protocol.SANView` / ``DiGraphView`` surface.

Public entry points keep their normal Python signatures via
:func:`dispatchable`, which registers the decorated function as the portable
kernel and replaces it with a thin wrapper that calls :func:`dispatch`:

>>> from repro.graph import san_from_edge_lists
>>> san = san_from_edge_lists([(1, 2), (2, 1)])
>>> from repro.metrics.reciprocity import reciprocal_edge_count
>>> reciprocal_edge_count(san) == reciprocal_edge_count(san.freeze())
True
>>> resolve("reciprocal_edge_count", san.freeze()).backend
'frozen'
>>> resolve("reciprocal_edge_count", san).backend
'mutable'

Freeze-on-demand: by default a mutable graph runs the portable kernel.  When
an auto-freeze threshold is configured (:func:`configure`), ``dispatch``
freezes a mutable graph on the fly whenever a frozen kernel exists and the
graph has at least that many edges.  The frozen view is cached per graph in
a weak-keyed map and validated against the graph's mutation counter
(``version()``), so repeated dispatches — including portable fallbacks that
re-enter dispatch per node — freeze once per graph state, not once per call.
Batch pipelines should still prefer freezing explicitly up front (see
``repro.metrics.summary.frozen_san_report`` and the ``python -m repro
report`` subcommand).

The parallel tier: kernels registered under ``backend="parallel"`` (with
``requires="parallel"``) fan node-range chunks out to the shared-memory
process pool in :mod:`repro.engine.parallel`.  A frozen dispatch prefers the
parallel tier only when the graph has at least
``EngineConfig.parallel_threshold`` edges *and* the pool is usable (two or
more workers, ``REPRO_NO_PARALLEL`` unset); otherwise it falls through to
the single-core frozen kernels.  Parallel kernels are bit-identical to their
frozen counterparts by construction, so tier selection is purely a
scheduling decision.
"""

from __future__ import annotations

import functools
import inspect
import weakref
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..graph.frozen import FrozenBipartiteAttributeGraph, FrozenDiGraph, FrozenSAN
from . import deps, parallel

#: Canonical backend names.
MUTABLE = "mutable"
FROZEN = "frozen"
PARALLEL = "parallel"

_FROZEN_TYPES = (FrozenSAN, FrozenDiGraph, FrozenBipartiteAttributeGraph)

#: Requirement name -> zero-arg availability probe, evaluated at dispatch
#: time (so e.g. setting ``REPRO_NO_SCIPY`` or ``REPRO_NO_PARALLEL``
#: mid-process is honoured).
REQUIREMENT_PROBES: Dict[str, Callable[[], bool]] = {
    "scipy": deps.have_scipy,
    "parallel": parallel.parallel_available,
}

#: Default edge-count floor below which the parallel tier is never selected:
#: chunk scheduling and shared-memory export cost more than they save on
#: small graphs.  Mirrors the spirit of ``auto_freeze_threshold``, but with a
#: non-``None`` default — the parallel tier is opt-out, not opt-in, because
#: every parallel kernel is bit-identical to its frozen counterpart.
DEFAULT_PARALLEL_THRESHOLD = 50_000


class EngineError(Exception):
    """Base class for dispatch-engine errors."""


class UnknownOperationError(EngineError, KeyError):
    """No kernel has been registered under the requested operation name."""


class NoKernelError(EngineError, LookupError):
    """The operation exists but no kernel is available for the input backend."""


class DuplicateKernelError(EngineError, ValueError):
    """Two kernels were registered for one (operation, backend) at equal priority.

    Equal priority makes shadowing an accident of registration (import)
    order: the earlier registration would silently win at dispatch time.
    Raised at import time so the collision is named where it happens; pick a
    distinct priority for the new kernel instead.  Re-registering the *same*
    function (same module and qualname, e.g. after a module reload) replaces
    the old entry rather than raising.
    """


@dataclass(frozen=True)
class Kernel:
    """One registered implementation of an operation on one backend."""

    op: str
    backend: str
    fn: Callable[..., Any]
    requires: Tuple[str, ...] = ()
    priority: int = 0

    def available(self) -> bool:
        """Whether every requirement of this kernel is satisfied right now."""
        return all(REQUIREMENT_PROBES[name]() for name in self.requires)


@dataclass
class EngineConfig:
    """Mutable engine policy (a single module-level instance)."""

    #: Freeze a mutable graph on the fly when a frozen kernel exists and the
    #: graph has at least this many edges.  ``None`` disables auto-freezing.
    auto_freeze_threshold: Optional[int] = None

    #: Select a ``parallel`` kernel over the frozen one only when the graph
    #: has at least this many edges.  ``None`` disables the parallel tier
    #: entirely (as does ``REPRO_NO_PARALLEL=1`` in the environment).
    parallel_threshold: Optional[int] = DEFAULT_PARALLEL_THRESHOLD


_config = EngineConfig()

#: op -> backend -> kernels (sorted at dispatch time by priority).
_registry: Dict[str, Dict[str, List[Kernel]]] = {}


def configure(
    auto_freeze_threshold: Optional[int] = None,
    parallel_threshold: Optional[int] = DEFAULT_PARALLEL_THRESHOLD,
) -> EngineConfig:
    """Set engine policy; returns the live config object.

    ``configure(auto_freeze_threshold=10_000)`` makes :func:`dispatch` freeze
    mutable graphs of >= 10k edges before running ops that have a frozen
    kernel.  ``configure(parallel_threshold=0)`` makes every frozen dispatch
    prefer an available parallel kernel regardless of size;
    ``parallel_threshold=None`` pins dispatch to the single-core frozen tier.
    ``configure()`` restores the defaults (no auto-freezing, parallel tier
    above :data:`DEFAULT_PARALLEL_THRESHOLD` edges).
    """
    _config.auto_freeze_threshold = auto_freeze_threshold
    _config.parallel_threshold = parallel_threshold
    return _config


def config() -> EngineConfig:
    """The live engine configuration."""
    return _config


def _same_function(a: Callable[..., Any], b: Callable[..., Any]) -> bool:
    """Whether two callables are the same definition (reload-tolerant)."""
    if a is b:
        return True
    module_a = getattr(a, "__module__", None)
    qualname_a = getattr(a, "__qualname__", None)
    if module_a is None or qualname_a is None:
        return False
    return module_a == getattr(b, "__module__", None) and qualname_a == getattr(
        b, "__qualname__", None
    )


def _describe(fn: Callable[..., Any]) -> str:
    module = getattr(fn, "__module__", "?")
    qualname = getattr(fn, "__qualname__", repr(fn))
    return f"{module}.{qualname}"


def register(
    op: str,
    fn: Callable[..., Any],
    backend: str = FROZEN,
    requires: Union[str, Tuple[str, ...]] = (),
    priority: int = 0,
) -> Kernel:
    """Register ``fn`` as a kernel (functional form of :func:`kernel`).

    Raises :class:`DuplicateKernelError` when a *different* function is
    already registered for ``(op, backend)`` at the same priority — silent
    equal-priority shadowing is an accident of import order.  Registering
    the same function again (by module and qualname) replaces the existing
    entry, so module reloads stay idempotent.
    """
    if isinstance(requires, str):
        requires = (requires,)
    for name in requires:
        if name not in REQUIREMENT_PROBES:
            raise ValueError(f"unknown kernel requirement {name!r}")
    entry = Kernel(op=op, backend=backend, fn=fn, requires=tuple(requires), priority=priority)
    entries = _registry.setdefault(op, {}).setdefault(backend, [])
    # Keep the list priority-descending (stable for ties) at registration
    # time so dispatch never re-sorts on the hot path.
    position = len(entries)
    for index, existing in enumerate(entries):
        if existing.priority == entry.priority:
            if _same_function(existing.fn, fn):
                entries[index] = entry  # idempotent re-registration
                return entry
            raise DuplicateKernelError(
                f"duplicate kernel registration for operation {op!r} on "
                f"backend {backend!r} at priority {priority}: "
                f"{_describe(existing.fn)} is already registered and "
                f"{_describe(fn)} would shadow it silently; pick a distinct "
                "priority"
            )
        if existing.priority < entry.priority:
            position = index
            break
    entries.insert(position, entry)
    return entry


def kernel(
    op: str,
    backend: str = FROZEN,
    requires: Union[str, Tuple[str, ...]] = (),
    priority: int = 0,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator: register the function as the (op, backend) kernel.

    ``priority`` ranks kernels registered for the same (op, backend) pair —
    higher wins when its requirements are met.  The convention is 10 for a
    scipy kernel shadowing a numpy fallback at 0.
    """

    def decorator(fn: Callable[..., Any]) -> Callable[..., Any]:
        register(op, fn, backend=backend, requires=requires, priority=priority)
        return fn

    return decorator


def dispatchable(op: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator for public entry points: portable kernel + dispatch wrapper.

    The decorated function *is* the portable (mutable-backend) implementation;
    it is registered under ``backend="mutable"`` and replaced by a wrapper
    that routes every call through :func:`dispatch`.  The wrapper keeps the
    original name, signature and docstring, and exposes the operation name as
    ``wrapper.op`` plus the portable body as ``wrapper.__wrapped__``.
    """

    def decorator(fn: Callable[..., Any]) -> Callable[..., Any]:
        register(op, fn, backend=MUTABLE, priority=0)
        graph_parameter = next(iter(inspect.signature(fn).parameters))

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if args:
                return dispatch(op, args[0], *args[1:], **kwargs)
            try:
                graph = kwargs.pop(graph_parameter)
            except KeyError:
                raise TypeError(
                    f"{fn.__name__}() missing required argument: {graph_parameter!r}"
                ) from None
            return dispatch(op, graph, **kwargs)

        wrapper.op = op  # type: ignore[attr-defined]
        return wrapper

    return decorator


def backend_of(graph: Any) -> str:
    """Backend name of a graph object (``"frozen"`` or ``"mutable"``)."""
    return FROZEN if isinstance(graph, _FROZEN_TYPES) else MUTABLE


def graph_size(graph: Any) -> int:
    """Edge count used by the auto-freeze policy (0 when undeterminable)."""
    try:
        return graph.number_of_social_edges() + graph.number_of_attribute_edges()
    except AttributeError:
        pass
    try:
        return graph.number_of_edges()
    except AttributeError:
        return 0


def kernels_for(op: str) -> List[Kernel]:
    """All registered kernels of ``op`` (all backends), best-first per backend."""
    try:
        backends = _registry[op]
    except KeyError:
        raise UnknownOperationError(op) from None
    result: List[Kernel] = []
    for entries in backends.values():
        result.extend(entries)  # already priority-descending per backend
    return result


def list_ops() -> List[str]:
    """Sorted names of every registered operation."""
    return sorted(_registry)


def _select(op: str, backend: str) -> Optional[Kernel]:
    for entry in _registry.get(op, {}).get(backend, ()):  # priority-descending
        if entry.available():
            return entry
    return None


def _select_frozen_tier(op: str, size: int) -> Optional[Kernel]:
    """Best kernel for a frozen graph of ``size`` edges: parallel, then frozen.

    The parallel tier is consulted only at or above the configured
    ``parallel_threshold`` (its ``"parallel"`` requirement probe additionally
    gates on worker availability and ``REPRO_NO_PARALLEL``); below the
    threshold, or when no parallel kernel is available, the single-core
    frozen kernels serve the call — the tiers are bit-identical, so this is
    purely a scheduling decision.
    """
    threshold = _config.parallel_threshold
    if threshold is not None and size >= threshold:
        entry = _select(op, PARALLEL)
        if entry is not None:
            return entry
    return _select(op, FROZEN)


def select(op: str, backend: str) -> Optional[Kernel]:
    """Best available kernel registered for ``(op, backend)``, or ``None``.

    Unlike :func:`resolve`, this looks up a backend *by name* instead of
    inferring it from a graph object, which is what operations with no graph
    input (e.g. the generative-model engines, registered under the ``"loop"``
    and ``"vectorized"`` backends) need to pick an implementation.
    """
    if op not in _registry:
        raise UnknownOperationError(op)
    return _select(op, backend)


def resolve(op: str, graph: Any) -> Kernel:
    """The kernel :func:`dispatch` would run for ``graph`` (without running it).

    Resolution order: for frozen inputs, the parallel tier (when the graph
    clears the size threshold and workers are available), then the best
    available kernel of the graph's own backend, then — for frozen inputs —
    the portable mutable kernel, which runs unchanged on the frozen
    read-only API.  (Auto-freezing is a dispatch-time decision and is not
    reflected here.)
    """
    if op not in _registry:
        raise UnknownOperationError(op)
    backend = backend_of(graph)
    if backend == FROZEN:
        entry = _select_frozen_tier(op, graph_size(graph))
    else:
        entry = _select(op, backend)
    if entry is None and backend == FROZEN:
        entry = _select(op, MUTABLE)
    if entry is None:
        raise NoKernelError(
            f"no available kernel for operation {op!r} on backend {backend!r}"
        )
    return entry


#: Auto-freeze cache: mutable graph -> (version at freeze time, frozen view).
#: Weakly keyed so caching never extends a graph's lifetime; validated by the
#: graph's mutation counter, so a stale frozen view is never served and
#: portable fallback loops that re-enter dispatch per element freeze once,
#: not once per element.
_frozen_views: "weakref.WeakKeyDictionary[Any, Tuple[int, Any]]" = (
    weakref.WeakKeyDictionary()
)


def frozen_view(graph: Any) -> Optional[Any]:
    """A cached frozen view of ``graph`` (freeze-once, validated by version).

    Returns ``None`` when the graph cannot be frozen (no ``freeze`` method).
    Frozen inputs are returned unchanged (``freeze()`` is the identity on
    them), so callers can use this to normalise mixed-backend collections —
    e.g. :func:`repro.metrics.evolution.ensure_frozen_snapshots` freezes a
    mutable snapshot sequence exactly once before running series kernels.
    """
    freeze = getattr(graph, "freeze", None)
    if freeze is None:
        return None
    version_of = getattr(graph, "version", None)
    if version_of is None:
        return freeze()  # no mutation counter: cannot cache safely
    version = version_of()
    try:
        cached = _frozen_views.get(graph)
    except TypeError:  # unhashable / non-weakrefable graph
        return freeze()
    if cached is not None and cached[0] == version:
        return cached[1]
    frozen = freeze()
    try:
        _frozen_views[graph] = (version, frozen)
    except TypeError:
        pass
    return frozen


def _run(entry: Kernel, graph: Any, args: Tuple[Any, ...], kwargs: Dict[str, Any]) -> Any:
    """Invoke a resolved kernel, detouring through the sanitizer when armed.

    ``REPRO_SANITIZE=1`` routes the call through
    :func:`repro.sanitize.checked_dispatch`, which re-runs the next tier
    down on the same inputs and asserts parity (see the module docstring of
    :mod:`repro.sanitize`).  The import is deferred: the sanitizer is never
    loaded — and costs one env lookup per dispatch — unless armed.
    """
    if deps.sanitize_enabled():
        from .. import sanitize

        return sanitize.checked_dispatch(entry, graph, args, kwargs)
    return entry.fn(graph, *args, **kwargs)


def dispatch(op: str, graph: Any, *args: Any, **kwargs: Any) -> Any:
    """Run the best available kernel of ``op`` on ``graph``.

    The graph is always passed to the kernel as the first positional
    argument; remaining arguments are forwarded untouched.
    """
    if op not in _registry:
        raise UnknownOperationError(op)
    if backend_of(graph) == MUTABLE:
        threshold = _config.auto_freeze_threshold
        if threshold is not None and graph_size(graph) >= threshold:
            entry = _select_frozen_tier(op, graph_size(graph))
            if entry is not None:
                frozen = frozen_view(graph)
                if frozen is not None:
                    return _run(entry, frozen, args, kwargs)
        entry = _select(op, MUTABLE)
        if entry is None:
            raise NoKernelError(
                f"no available kernel for operation {op!r} on backend 'mutable'"
            )
        return _run(entry, graph, args, kwargs)
    return _run(resolve(op, graph), graph, args, kwargs)
