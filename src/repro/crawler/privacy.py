"""Visibility model for the simulated crawl.

The paper acknowledges two biases in the Google+ crawl (Section 2.2): users
may keep their circles private (so their link lists are not enumerable) and
users may not declare attributes.  Attribute declaration is already part of
the ground-truth simulator (only ~22% of users declare anything); this module
models circle privacy: a per-user, persistent "hides link lists" flag.

A hidden user's links can still be *discovered from the other endpoint* when
that endpoint is public — exactly the asymmetry a real crawler faces.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Hashable

from ..utils.validation import require_probability

Node = Hashable


@dataclass(frozen=True)
class PrivacyModel:
    """Deterministic per-user privacy decisions derived from a seed.

    Using a hash of ``(seed, user)`` instead of a live RNG makes privacy
    decisions stable across days, which matters: a user who hides their
    circles on day 10 also hides them on day 70.
    """

    hide_links_probability: float = 0.08
    hide_attributes_probability: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        require_probability(self.hide_links_probability, "hide_links_probability")
        require_probability(self.hide_attributes_probability, "hide_attributes_probability")

    def _uniform(self, user: Node, salt: str) -> float:
        payload = f"{self.seed}:{salt}:{user!r}".encode("utf-8")
        digest = hashlib.blake2b(payload, digest_size=8).digest()
        return int.from_bytes(digest, "little") / 2 ** 64

    def hides_links(self, user: Node) -> bool:
        """Whether ``user`` keeps both circle lists private."""
        return self._uniform(user, "links") < self.hide_links_probability

    def hides_attributes(self, user: Node) -> bool:
        """Whether ``user`` hides their declared profile fields from the crawler."""
        return self._uniform(user, "attributes") < self.hide_attributes_probability


#: A privacy model where everything is public (used to measure crawler bias).
FULLY_PUBLIC = PrivacyModel(hide_links_probability=0.0, hide_attributes_probability=0.0)
