"""Daily snapshot crawling: turn a ground-truth evolution into crawled snapshots.

Mirrors the paper's procedure: the first snapshot is a full BFS crawl; each
subsequent snapshot expands the crawl starting from the users already known
from the previous snapshot (plus BFS discovery of newly reachable users).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..graph.san import SAN
from ..synthetic.gplus import GroundTruthEvolution
from .crawler import BFSCrawler, CrawlResult
from .privacy import PrivacyModel

Node = Hashable


@dataclass
class SnapshotSeries:
    """An ordered sequence of crawled snapshots with coverage bookkeeping."""

    snapshots: List[Tuple[int, SAN]] = field(default_factory=list)
    coverage: Dict[int, float] = field(default_factory=dict)

    def days(self) -> List[int]:
        return [day for day, _ in self.snapshots]

    def at(self, day: int) -> SAN:
        for snapshot_day, san in self.snapshots:
            if snapshot_day == day:
                return san
        raise KeyError(f"no snapshot crawled for day {day}")

    def last(self) -> SAN:
        if not self.snapshots:
            raise ValueError("the snapshot series is empty")
        return self.snapshots[-1][1]

    def halfway(self) -> SAN:
        if not self.snapshots:
            raise ValueError("the snapshot series is empty")
        return self.snapshots[len(self.snapshots) // 2][1]

    def halfway_day(self) -> int:
        return self.snapshots[len(self.snapshots) // 2][0]

    def __len__(self) -> int:
        return len(self.snapshots)

    def __iter__(self):
        return iter(self.snapshots)


class DailyCrawler:
    """Crawl a ground-truth evolution at a set of days, expanding day over day."""

    def __init__(self, privacy: Optional[PrivacyModel] = None) -> None:
        self.crawler = BFSCrawler(privacy=privacy)

    def crawl_series(
        self,
        evolution: GroundTruthEvolution,
        days: Sequence[int],
        seeds: Optional[Sequence[Node]] = None,
    ) -> SnapshotSeries:
        """Crawl the ground truth at each requested day.

        The seed set of each crawl is the set of users visited by the previous
        crawl (the paper "expanded the social structure from the previous
        snapshot"), falling back to the provided ``seeds`` for the first day.
        """
        series = SnapshotSeries()
        previous_visited: Optional[List[Node]] = list(seeds) if seeds else None
        ground_truth_snapshots = evolution.snapshots(sorted(set(days)))
        for day, ground_truth in ground_truth_snapshots:
            crawl_seeds = previous_visited
            if crawl_seeds is not None:
                crawl_seeds = [
                    node for node in crawl_seeds if ground_truth.is_social_node(node)
                ]
            result: CrawlResult = self.crawler.crawl(ground_truth, seeds=crawl_seeds or None)
            series.snapshots.append((day, result.san))
            series.coverage[day] = result.coverage
            previous_visited = list(result.visited)
        return series


def crawl_evolution(
    evolution: GroundTruthEvolution,
    days: Sequence[int],
    privacy: Optional[PrivacyModel] = None,
    seeds: Optional[Sequence[Node]] = None,
) -> SnapshotSeries:
    """Convenience wrapper: crawl ``evolution`` at ``days`` with ``privacy``."""
    return DailyCrawler(privacy=privacy).crawl_series(evolution, days, seeds=seeds)
