"""BFS crawler over a ground-truth SAN.

Reproduces the paper's data-collection methodology (Section 2.2): starting
from seed users, breadth-first search expands over *both* the outgoing list
("in your circles") and the incoming list ("have you in circles") of every
visited public user — the property that let the authors cover the whole
weakly connected component of Google+.  A daily crawl expands from the node
set of the previous day's snapshot.

The crawler sees:

* the links of every visited user whose lists are public (plus links of
  private users that are visible from the public endpoint),
* the declared attributes of visited users who do not hide them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable, Iterable, Optional, Sequence, Set

from ..graph.san import SAN
from .privacy import FULLY_PUBLIC, PrivacyModel

Node = Hashable


@dataclass
class CrawlResult:
    """The crawled SAN plus bookkeeping about coverage."""

    san: SAN
    visited: Set[Node]
    ground_truth_social_nodes: int

    @property
    def coverage(self) -> float:
        """Fraction of ground-truth social nodes reached by the crawl."""
        if self.ground_truth_social_nodes == 0:
            return 0.0
        return len(self.visited) / self.ground_truth_social_nodes


class BFSCrawler:
    """Breadth-first crawler with access to both in- and out-link lists."""

    def __init__(self, privacy: Optional[PrivacyModel] = None) -> None:
        self.privacy = privacy if privacy is not None else FULLY_PUBLIC

    def crawl(
        self,
        ground_truth: SAN,
        seeds: Optional[Iterable[Node]] = None,
        max_nodes: Optional[int] = None,
    ) -> CrawlResult:
        """Crawl ``ground_truth`` starting from ``seeds``.

        ``seeds`` defaults to the earliest social node (smallest id).  The
        crawl visits users in BFS order over the union of visible in/out
        lists; ``max_nodes`` truncates the crawl (for early-stopped crawls).
        """
        crawled = SAN()
        visited: Set[Node] = set()
        total_social = ground_truth.number_of_social_nodes()
        if total_social == 0:
            return CrawlResult(san=crawled, visited=visited, ground_truth_social_nodes=0)

        if seeds is None:
            seeds = [min(ground_truth.social_nodes(), key=lambda node: str(node))]
        frontier = deque()
        for seed in seeds:
            if ground_truth.is_social_node(seed) and seed not in visited:
                visited.add(seed)
                frontier.append(seed)

        while frontier:
            user = frontier.popleft()
            crawled.add_social_node(user)
            self._collect_profile(ground_truth, crawled, user)

            if self.privacy.hides_links(user):
                # Private circles: this user's lists are not enumerable, but
                # the user stays in the crawl (it was discovered from a public
                # endpoint) and its links may be added from the other side.
                continue

            for target in ground_truth.social_out_neighbors(user):
                crawled.add_social_edge(user, target)
                self._collect_profile(ground_truth, crawled, target)
                if target not in visited:
                    visited.add(target)
                    frontier.append(target)
            for source in ground_truth.social_in_neighbors(user):
                crawled.add_social_edge(source, user)
                self._collect_profile(ground_truth, crawled, source)
                if source not in visited:
                    visited.add(source)
                    frontier.append(source)
            if max_nodes is not None and len(visited) >= max_nodes:
                break

        return CrawlResult(
            san=crawled, visited=visited, ground_truth_social_nodes=total_social
        )

    def _collect_profile(self, ground_truth: SAN, crawled: SAN, user: Node) -> None:
        """Copy a visited user's public attributes into the crawled SAN."""
        if self.privacy.hides_attributes(user):
            return
        for attribute in ground_truth.attribute_neighbors(user):
            info = ground_truth.attribute_info(attribute)
            crawled.add_attribute_edge(
                user, attribute, attr_type=info.attr_type, value=info.value
            )


def crawl_snapshot(
    ground_truth: SAN,
    seeds: Optional[Sequence[Node]] = None,
    privacy: Optional[PrivacyModel] = None,
    max_nodes: Optional[int] = None,
) -> CrawlResult:
    """One-shot convenience wrapper around :class:`BFSCrawler`."""
    return BFSCrawler(privacy=privacy).crawl(ground_truth, seeds=seeds, max_nodes=max_nodes)
