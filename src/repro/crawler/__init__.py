"""Crawler substrate: privacy model, BFS crawler, daily snapshot series."""

from .crawler import BFSCrawler, CrawlResult, crawl_snapshot
from .privacy import FULLY_PUBLIC, PrivacyModel
from .snapshots import DailyCrawler, SnapshotSeries, crawl_evolution

__all__ = [
    "BFSCrawler",
    "CrawlResult",
    "crawl_snapshot",
    "FULLY_PUBLIC",
    "PrivacyModel",
    "DailyCrawler",
    "SnapshotSeries",
    "crawl_evolution",
]
