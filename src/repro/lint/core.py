"""The ``repro lint`` rule engine: invariants as machine-checked findings.

Seven PRs of this repository accumulated load-bearing invariants — seeded
RNG defaults, scipy contained behind :mod:`repro.engine.deps`, backend
dispatch through the kernel registry instead of ``isinstance(Frozen*)``
branches, content-derived cache tokens, shared-memory segments that always
get unlinked.  Each was enforced by convention or a one-off grep.  This
module turns the catalog into a static-analysis gate:

* a :class:`Rule` visits a parsed module (:class:`ModuleContext`) and yields
  :class:`Finding` objects carrying file/line/rule-id/message;
* a :class:`ProjectRule` checks whole-project state once per run (used by
  R006, which loads the live kernel registry);
* ``# repro: lint-ignore[R001] -- reason`` suppresses a finding on its line
  (a comment-only line suppresses the next line).  The reason is mandatory:
  a suppression without one is itself a finding (``R000``), and a
  well-formed suppression whose rule no longer fires is reported as *stale*
  under ``--report-stale``;
* :func:`run_lint` walks the target files, applies every selected rule, and
  returns a :class:`LintResult` the reporters render as text or JSON.

The concrete invariant catalog (R001-R009) lives in
:mod:`repro.lint.rules`; the CLI wiring in :mod:`repro.lint.cli`.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Rule id of the framework itself: malformed/stale suppressions and files
#: that cannot be parsed.  Always active and never suppressible.
FRAMEWORK_RULE = "R000"

#: The suppression marker.  ``lint-ignore[R001,R004] -- reason`` names one or
#: more rule ids and *must* carry a reason after ``--``.
_MARKER_RE = re.compile(r"#\s*repro:\s*lint-ignore")
_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*lint-ignore\[(?P<rules>[^\]]*)\]"
    r"(?:\s*--\s*(?P<reason>.*\S))?\s*$"
)

_RULE_ID_RE = re.compile(r"^R\d{3}$")


class LintError(Exception):
    """Base class for lint-engine usage errors (exit code 2)."""


class UnknownRuleError(LintError, KeyError):
    """A rule id was requested that no registered rule carries."""

    def __init__(self, rule_id: str, known: Sequence[str]):
        super().__init__(rule_id)
        self.rule_id = rule_id
        self.known = list(known)

    def __str__(self) -> str:
        return (
            f"unknown rule {self.rule_id!r}; available: {', '.join(self.known)}"
        )


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str

    def sort_key(self) -> Tuple[str, int, str]:
        return (self.path, self.line, self.rule)

    def to_json(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }

    def baseline_key(self) -> Tuple[str, str, str]:
        """Line-number-insensitive identity used by ``--baseline`` matching."""
        return (self.path, self.rule, self.message)


@dataclass(frozen=True)
class Suppression:
    """One well-formed ``lint-ignore`` directive found in a module."""

    path: str
    line: int
    rules: Tuple[str, ...]
    reason: str
    #: Source lines whose findings this directive suppresses: the directive's
    #: own line for a trailing comment, the following line for a
    #: comment-only line.
    covered_lines: Tuple[int, ...]


class ModuleContext:
    """A parsed module plus the derived tables every rule needs.

    Built once per file by :func:`run_lint`; rules receive it read-only.
    ``package_relpath`` is the path inside the ``repro`` package (e.g.
    ``"engine/deps.py"``) when the file lives under a directory named
    ``repro``, else just the file name — rules use it to scope themselves to
    architectural layers.
    """

    def __init__(self, path: Path, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        parts = path.parts
        if "repro" in parts:
            anchor = len(parts) - 1 - tuple(reversed(parts)).index("repro")
            self.package_relpath = "/".join(parts[anchor + 1 :])
        else:
            self.package_relpath = path.name
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None
        self._imports: Optional[Dict[str, str]] = None

    # -- derived tables ---------------------------------------------------
    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child node -> parent node, for ancestor walks."""
        if self._parents is None:
            table: Dict[ast.AST, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    table[child] = parent
            self._parents = table
        return self._parents

    @property
    def imports(self) -> Dict[str, str]:
        """Local binding -> dotted origin, from every import in the module.

        ``import numpy as np`` maps ``np -> numpy``; ``from numpy.random
        import default_rng`` maps ``default_rng -> numpy.random.default_rng``;
        relative imports keep their leading dots (``from ..engine import
        deps`` maps ``deps -> ..engine.deps``).
        """
        if self._imports is None:
            table: Dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.asname:
                            table[alias.asname] = alias.name
                        else:
                            head = alias.name.split(".")[0]
                            table[head] = head
                elif isinstance(node, ast.ImportFrom):
                    base = "." * node.level + (node.module or "")
                    for alias in node.names:
                        bound = alias.asname or alias.name
                        origin = f"{base}.{alias.name}" if base else alias.name
                        table[bound] = origin
            self._imports = table
        return self._imports

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The parent chain of ``node``, innermost first."""
        parents = self.parents
        current = parents.get(node)
        while current is not None:
            yield current
            current = parents.get(current)

    def enclosing_functions(self, node: ast.AST) -> List[ast.AST]:
        """Enclosing function definitions of ``node``, innermost first."""
        return [
            ancestor
            for ancestor in self.ancestors(node)
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    def resolve_dotted(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted origin of a ``Name``/``Attribute`` chain.

        ``np.random.seed`` with ``import numpy as np`` resolves to
        ``"numpy.random.seed"``; a bare ``default_rng`` imported from
        ``numpy.random`` resolves to ``"numpy.random.default_rng"``.  Returns
        ``None`` when the chain's head is not an imported binding (locals,
        attributes of instances, ...).
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        origin = self.imports.get(current.id)
        if origin is None:
            return None
        parts.append(origin)
        return ".".join(reversed(parts))


class Rule:
    """Base class of per-module AST rules.

    Subclasses set ``rule_id`` (``"R00x"``), ``name`` (kebab-case slug) and
    ``description``, implement :meth:`check`, and register themselves with
    :func:`register_rule` — see :mod:`repro.lint.rules` for the catalog and
    ``docs/architecture.md`` ("Invariant catalog") for the how-to.
    """

    rule_id: str = ""
    name: str = ""
    description: str = ""

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            rule=self.rule_id,
            message=message,
        )


class ProjectRule(Rule):
    """A rule evaluated once per lint run instead of once per module.

    Used for hybrid static+import checks (R006 loads the live kernel
    registry).  ``check_project`` receives every parsed module of the run;
    findings may point at files outside that set (e.g. at a registering
    module resolved through :mod:`inspect`).
    """

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        return ()

    def check_project(self, modules: Sequence[ModuleContext]) -> Iterable[Finding]:
        raise NotImplementedError


#: Registered rules, id -> instance, in catalog order.
_RULES: Dict[str, Rule] = {}


def register_rule(rule_class: type) -> type:
    """Class decorator: add the rule to the catalog (id must be unique)."""
    rule = rule_class()
    if not _RULE_ID_RE.match(rule.rule_id or ""):
        raise ValueError(f"rule id must match R###, got {rule.rule_id!r}")
    if rule.rule_id in _RULES or rule.rule_id == FRAMEWORK_RULE:
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    _RULES[rule.rule_id] = rule
    return rule_class


def all_rules() -> Dict[str, Rule]:
    """The registered rule catalog, id -> rule, importing the catalog module."""
    from . import rules as _catalog  # noqa: F401  (registration side effect)

    return dict(_RULES)


def select_rules(ids: Optional[Sequence[str]]) -> List[Rule]:
    """Resolve ``ids`` (``None`` = every rule) against the catalog."""
    catalog = all_rules()
    if ids is None:
        return list(catalog.values())
    selected = []
    for rule_id in ids:
        normalized = rule_id.strip().upper()
        if not normalized:
            continue
        if normalized not in catalog:
            raise UnknownRuleError(normalized, sorted(catalog))
        selected.append(catalog[normalized])
    if not selected:
        raise LintError("no rules selected")
    return selected


# -- suppression parsing --------------------------------------------------

def parse_suppressions(
    path: Path, source: str
) -> Tuple[List[Suppression], List[Finding]]:
    """Extract ``lint-ignore`` directives from the comments of ``source``.

    Returns the well-formed suppressions plus ``R000`` findings for malformed
    ones: missing brackets, empty or non-``R###`` rule lists, and —
    crucially — a missing ``-- reason``.  Malformed directives are inert
    (they suppress nothing), so the underlying finding still fires next to
    the ``R000``.
    """
    suppressions: List[Suppression] = []
    findings: List[Finding] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            token for token in tokens if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return [], []
    for token in comments:
        if not _MARKER_RE.search(token.string):
            continue
        line = token.start[0]
        match = _SUPPRESSION_RE.search(token.string)
        if match is None:
            findings.append(
                Finding(
                    path=str(path),
                    line=line,
                    rule=FRAMEWORK_RULE,
                    message=(
                        "malformed lint-ignore directive: expected "
                        "'# repro: lint-ignore[R###] -- reason'"
                    ),
                )
            )
            continue
        rule_ids = tuple(
            part.strip().upper()
            for part in match.group("rules").split(",")
            if part.strip()
        )
        reason = match.group("reason")
        bad_ids = [rule_id for rule_id in rule_ids if not _RULE_ID_RE.match(rule_id)]
        if not rule_ids or bad_ids:
            detail = ", ".join(bad_ids) if bad_ids else "empty rule list"
            findings.append(
                Finding(
                    path=str(path),
                    line=line,
                    rule=FRAMEWORK_RULE,
                    message=f"lint-ignore names no valid rule id ({detail})",
                )
            )
            continue
        unknown = [rule_id for rule_id in rule_ids if rule_id not in all_rules()]
        if unknown:
            findings.append(
                Finding(
                    path=str(path),
                    line=line,
                    rule=FRAMEWORK_RULE,
                    message=(
                        f"lint-ignore names unknown rule(s) "
                        f"{', '.join(unknown)}"
                    ),
                )
            )
            continue
        if not reason:
            findings.append(
                Finding(
                    path=str(path),
                    line=line,
                    rule=FRAMEWORK_RULE,
                    message=(
                        f"lint-ignore[{','.join(rule_ids)}] has no reason; "
                        "suppressions must justify themselves: "
                        "'# repro: lint-ignore[R###] -- reason'"
                    ),
                )
            )
            continue
        prefix = token.line[: token.start[1]]
        standalone = prefix.strip() == ""
        if standalone:
            # A comment-only directive covers the next *code* line: skip the
            # rest of its own comment block and any blank lines, so a
            # multi-line justification still lands on the statement below.
            lines = source.splitlines()
            target = line + 1
            while target <= len(lines):
                stripped = lines[target - 1].strip()
                if stripped and not stripped.startswith("#"):
                    break
                target += 1
            covered = (target,)
        else:
            covered = (line,)
        suppressions.append(
            Suppression(
                path=str(path),
                line=line,
                rules=rule_ids,
                reason=reason,
                covered_lines=covered,
            )
        )
    return suppressions, findings


# -- the runner -----------------------------------------------------------

@dataclass
class LintResult:
    """Outcome of one lint run (pre-rendering)."""

    #: Unsuppressed findings (after baseline filtering), sorted.
    findings: List[Finding] = field(default_factory=list)
    #: Stale-suppression reports (``R000``); fail the run only under
    #: ``report_stale``.
    stale: List[Finding] = field(default_factory=list)
    #: Findings silenced by a well-formed suppression.
    suppressed: List[Finding] = field(default_factory=list)
    #: Findings silenced by the baseline file.
    baselined: List[Finding] = field(default_factory=list)
    files: int = 0
    rules: List[str] = field(default_factory=list)
    report_stale: bool = False

    @property
    def failures(self) -> List[Finding]:
        """Findings that make the run exit 1 (stale ones only when asked)."""
        return self.findings + (self.stale if self.report_stale else [])

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": 1,
            "rules": self.rules,
            "files": self.files,
            "findings": [item.to_json() for item in self.findings],
            "stale_suppressions": [item.to_json() for item in self.stale],
            "summary": {
                "findings": len(self.findings),
                "stale": len(self.stale),
                "suppressed": len(self.suppressed),
                "baselined": len(self.baselined),
                "passed": not self.failures,
            },
        }


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Every ``*.py`` file under ``paths`` (files pass through), sorted."""
    found: Set[Path] = set()
    for path in paths:
        if path.is_file():
            found.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if "__pycache__" in candidate.parts:
                    continue
                found.add(candidate)
        else:
            raise LintError(f"no such file or directory: {path}")
    return sorted(found)


def _baseline_path(path: str) -> str:
    """Normalise a finding path for baseline matching.

    Reports written by ``--write-baseline`` store cwd-relative paths while
    in-flight findings carry whatever the caller passed (often absolute);
    resolving both against the cwd makes the match spelling-insensitive.
    """
    resolved = Path(path).resolve()
    base = Path.cwd().resolve()
    try:
        return resolved.relative_to(base).as_posix()
    except ValueError:
        return resolved.as_posix()


def load_baseline(path: Path) -> Set[Tuple[str, str, str]]:
    """Accepted-findings baseline: the ``findings`` array of a JSON report."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise LintError(f"cannot read baseline {path}: {exc}") from exc
    records = payload.get("findings", payload) if isinstance(payload, dict) else payload
    if not isinstance(records, list):
        raise LintError(f"baseline {path} is not a findings list")
    keys: Set[Tuple[str, str, str]] = set()
    for record in records:
        try:
            keys.add((_baseline_path(record["path"]), record["rule"], record["message"]))
        except (TypeError, KeyError) as exc:
            raise LintError(f"baseline {path} has a malformed record: {record!r}") from exc
    return keys


def run_lint(
    paths: Sequence[Path],
    rule_ids: Optional[Sequence[str]] = None,
    report_stale: bool = False,
    baseline: Optional[Set[Tuple[str, str, str]]] = None,
) -> LintResult:
    """Lint every Python file under ``paths`` with the selected rules."""
    rules = select_rules(rule_ids)
    result = LintResult(
        rules=[rule.rule_id for rule in rules], report_stale=report_stale
    )
    files = iter_python_files(paths)
    result.files = len(files)

    modules: List[ModuleContext] = []
    raw: List[Finding] = []
    framework: List[Finding] = []
    suppression_index: Dict[str, List[Suppression]] = {}

    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            framework.append(
                Finding(str(path), 1, FRAMEWORK_RULE, f"cannot read file: {exc}")
            )
            continue
        suppressions, malformed = parse_suppressions(path, source)
        framework.extend(malformed)
        suppression_index[str(path.resolve())] = suppressions
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            framework.append(
                Finding(
                    str(path),
                    exc.lineno or 1,
                    FRAMEWORK_RULE,
                    f"cannot parse file: {exc.msg}",
                )
            )
            continue
        module = ModuleContext(path, source, tree)
        modules.append(module)
        for rule in rules:
            if isinstance(rule, ProjectRule):
                continue
            raw.extend(rule.check(module))

    for rule in rules:
        if isinstance(rule, ProjectRule):
            raw.extend(rule.check_project(modules))

    # -- apply suppressions ----------------------------------------------
    active_rules = set(result.rules)
    used: Dict[Tuple[str, int, str], bool] = {}
    baselined_rules: Set[Tuple[str, str]] = set()
    for finding in raw:
        resolved = str(Path(finding.path).resolve())
        silenced = False
        for suppression in suppression_index.get(resolved, ()):
            if (
                finding.line in suppression.covered_lines
                and finding.rule in suppression.rules
            ):
                used[(suppression.path, suppression.line, finding.rule)] = True
                silenced = True
        if silenced:
            result.suppressed.append(finding)
        elif baseline and (
            (_baseline_path(finding.path), finding.rule, finding.message) in baseline
        ):
            result.baselined.append(finding)
            baselined_rules.add((resolved, finding.rule))
        else:
            result.findings.append(finding)

    # -- stale suppressions ----------------------------------------------
    for suppressions in suppression_index.values():
        for suppression in suppressions:
            for rule_id in suppression.rules:
                if rule_id not in active_rules:
                    continue  # rule not in this run: cannot judge staleness
                if not used.get((suppression.path, suppression.line, rule_id)):
                    resolved = str(Path(suppression.path).resolve())
                    if (resolved, rule_id) in baselined_rules:
                        # The rule still fires in this file but the finding
                        # was absorbed by the baseline (it drifted off the
                        # covered line).  One underlying issue must yield one
                        # report, not one per mechanism: the baseline already
                        # accounts for it, so the directive is not stale.
                        continue
                    result.stale.append(
                        Finding(
                            path=suppression.path,
                            line=suppression.line,
                            rule=FRAMEWORK_RULE,
                            message=(
                                f"stale suppression: {rule_id} does not fire "
                                f"on the covered line(s) "
                                f"{', '.join(map(str, suppression.covered_lines))}"
                            ),
                        )
                    )

    result.findings.extend(framework)
    result.findings.sort(key=Finding.sort_key)
    result.stale.sort(key=Finding.sort_key)
    result.suppressed.sort(key=Finding.sort_key)
    return result


def relativize(result: LintResult, root: Optional[Path] = None) -> LintResult:
    """A copy of ``result`` with paths rewritten relative to ``root``/cwd."""
    base = (root or Path.cwd()).resolve()

    def rewrite(finding: Finding) -> Finding:
        try:
            relative = Path(finding.path).resolve().relative_to(base)
        except ValueError:
            return finding
        return dataclasses.replace(finding, path=relative.as_posix())

    return dataclasses.replace(
        result,
        findings=[rewrite(item) for item in result.findings],
        stale=[rewrite(item) for item in result.stale],
        suppressed=[rewrite(item) for item in result.suppressed],
        baselined=[rewrite(item) for item in result.baselined],
    )
