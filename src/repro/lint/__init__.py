"""``repro.lint`` — the invariant linter (``repro lint``).

An AST-based rule engine that turns the repository's load-bearing
conventions into a machine-checked gate: seeded-by-default RNG (R001),
scipy contained behind :mod:`repro.engine.deps` (R002), backend dispatch
through the kernel registry instead of ``isinstance(Frozen*)`` (R003),
content-derived cache keys (R004), shared-memory segments that always get
unlinked (R005), and a coherent kernel registry (R006).

See ``docs/architecture.md`` ("Invariant catalog") for the rule-by-rule
story and how to add a rule; :mod:`repro.lint.core` for the framework;
:mod:`repro.lint.rules` for the catalog.
"""

from .core import (
    FRAMEWORK_RULE,
    Finding,
    LintError,
    LintResult,
    ModuleContext,
    ProjectRule,
    Rule,
    Suppression,
    UnknownRuleError,
    all_rules,
    iter_python_files,
    load_baseline,
    parse_suppressions,
    register_rule,
    relativize,
    run_lint,
    select_rules,
)
from .reporters import render_json, render_text
from .rules import check_registry, load_full_registry

__all__ = [
    "FRAMEWORK_RULE",
    "Finding",
    "LintError",
    "LintResult",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "Suppression",
    "UnknownRuleError",
    "all_rules",
    "check_registry",
    "iter_python_files",
    "load_baseline",
    "load_full_registry",
    "parse_suppressions",
    "register_rule",
    "relativize",
    "render_json",
    "render_text",
    "run_lint",
    "select_rules",
]
