"""The invariant catalog: concrete rules R001-R006.

Each rule encodes one load-bearing convention of this repository (the PR
that introduced it is named in ``docs/architecture.md``'s invariant
catalog).  Rules are deliberately narrow: they resolve imported names to
canonical dotted paths (``np.random.seed`` -> ``numpy.random.seed``) instead
of pattern-matching source text, so docstrings, comments, and local
variables that merely *mention* a pattern never fire.
"""

from __future__ import annotations

import ast
import inspect
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .core import Finding, ModuleContext, ProjectRule, Rule, register_rule

# -- R001: no unseeded RNG -------------------------------------------------

#: RNG factories that are fine *when seeded*: flagged only when called with
#: no arguments (or an explicit ``None``), which opts into system entropy.
_SEEDED_FACTORIES = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "random.Random",
}

#: ``numpy.random`` attributes that are not the legacy global-state API.
_NUMPY_RANDOM_ALLOWED = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.BitGenerator",
    "numpy.random.RandomState",
    "numpy.random.PCG64",
    "numpy.random.Philox",
    "numpy.random.MT19937",
    "numpy.random.SFC64",
}

#: Module-level functions of :mod:`random` that draw from the hidden global
#: generator.
_GLOBAL_RANDOM_FNS = {
    f"random.{name}"
    for name in (
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    )
}


def _is_unseeded_call(node: ast.Call) -> bool:
    """No positional seed and no keyword seed (``None`` counts as unseeded)."""
    for arg in node.args:
        if not (isinstance(arg, ast.Constant) and arg.value is None):
            return False
    for keyword in node.keywords:
        if keyword.arg is None:  # **kwargs: assume the caller seeds
            return False
        if not (
            isinstance(keyword.value, ast.Constant) and keyword.value.value is None
        ):
            return False
    return True


@register_rule
class NoUnseededRng(Rule):
    """Every RNG must be constructed from an explicit seed (PR 3-5).

    The repository's determinism story — same seed, bit-identical artifacts,
    content-addressed caches — dies the moment a code path draws from system
    entropy or the hidden module-level generators.
    """

    rule_id = "R001"
    name = "no-unseeded-rng"
    description = (
        "RNGs must be explicitly seeded: no np.random.default_rng()/"
        "random.Random() without a seed, no legacy np.random.* or "
        "module-level random.* global-state calls"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.resolve_dotted(node.func)
            if dotted is None:
                continue
            if dotted in _SEEDED_FACTORIES:
                if _is_unseeded_call(node):
                    yield self.finding(
                        module,
                        node,
                        f"{dotted}() without an explicit seed draws from "
                        "system entropy; pass a seed (library defaults "
                        "should name one, e.g. DEFAULT_FIGURE_SEED)",
                    )
            elif (
                dotted.startswith("numpy.random.")
                and dotted not in _NUMPY_RANDOM_ALLOWED
            ):
                yield self.finding(
                    module,
                    node,
                    f"legacy global-state RNG call {dotted}(); use a seeded "
                    "numpy.random.default_rng(seed) generator instead",
                )
            elif dotted in _GLOBAL_RANDOM_FNS:
                yield self.finding(
                    module,
                    node,
                    f"module-level {dotted}() draws from the hidden global "
                    "generator; thread a seeded random.Random through "
                    "repro.utils.rng.ensure_rng instead",
                )


# -- R002: scipy containment ----------------------------------------------

#: The one module allowed to import scipy (the lazy/guarded boundary).
_SCIPY_BOUNDARY = "engine/deps.py"

#: Names whose presence in an enclosing ``if`` test marks a scipy import as
#: guarded by the deps probe.
_SCIPY_PROBES = {"have_scipy", "scipy_sparse", "scipy_csgraph"}


def _guarded_by_probe(module: ModuleContext, node: ast.AST) -> bool:
    """Inside a function *and* under an ``if`` consulting the deps probe."""
    in_function = False
    probed = False
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            in_function = True
        elif isinstance(ancestor, ast.If):
            for name in ast.walk(ancestor.test):
                if isinstance(name, ast.Name) and name.id in _SCIPY_PROBES:
                    probed = True
                elif isinstance(name, ast.Attribute) and name.attr in _SCIPY_PROBES:
                    probed = True
    return in_function and probed


@register_rule
class ScipyContainment(Rule):
    """scipy stays behind :mod:`repro.engine.deps` (PR 2).

    Importing :mod:`repro` must never import scipy eagerly, and
    ``REPRO_NO_SCIPY`` must be able to force the numpy fallbacks at dispatch
    time — both only hold while every scipy access goes through the deps
    probe (``scipy_sparse()``/``scipy_csgraph()``).
    """

    rule_id = "R002"
    name = "scipy-containment"
    description = (
        "scipy may only be imported in engine/deps.py; elsewhere use the "
        "lazy accessors (deps.scipy_sparse()/scipy_csgraph()) or guard a "
        "function-local import behind the deps probe"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        if module.package_relpath == _SCIPY_BOUNDARY:
            return
        for node in ast.walk(module.tree):
            target: Optional[str] = None
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "scipy" or alias.name.startswith("scipy."):
                        target = alias.name
                        break
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module and (
                    node.module == "scipy" or node.module.startswith("scipy.")
                ):
                    target = node.module
            elif isinstance(node, ast.Call):
                dotted = module.resolve_dotted(node.func)
                if dotted in ("importlib.import_module", "__import__") and node.args:
                    head = node.args[0]
                    if (
                        isinstance(head, ast.Constant)
                        and isinstance(head.value, str)
                        and head.value.split(".")[0] == "scipy"
                    ):
                        target = head.value
            if target is None:
                continue
            if _guarded_by_probe(module, node):
                continue
            yield self.finding(
                module,
                node,
                f"direct import of {target!r} outside engine/deps.py; go "
                "through repro.engine.deps (scipy_sparse()/scipy_csgraph()) "
                "or guard a lazy import behind deps.have_scipy()",
            )


# -- R003: no backend isinstance dispatch ---------------------------------

#: Layers allowed to inspect concrete backend classes.
_BACKEND_LAYERS = ("engine/", "graph/")


@register_rule
class NoBackendIsinstance(Rule):
    """Backend dispatch goes through the kernel registry (PR 2).

    ``isinstance(x, Frozen*)`` branches outside the engine and graph layers
    reintroduce the scattered PR-1 idiom the registry replaced; they bypass
    priority shadowing, requirement gating, and the parallel tier.
    """

    rule_id = "R003"
    name = "no-backend-isinstance"
    description = (
        "no isinstance/issubclass dispatch on Frozen* backend classes "
        "outside engine/ and graph/; register a kernel instead"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        if module.package_relpath.startswith(_BACKEND_LAYERS):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (
                isinstance(node.func, ast.Name)
                and node.func.id in ("isinstance", "issubclass")
            ):
                continue
            if len(node.args) < 2:
                continue
            classinfo = node.args[1]
            candidates = (
                classinfo.elts if isinstance(classinfo, ast.Tuple) else [classinfo]
            )
            for candidate in candidates:
                name = None
                if isinstance(candidate, ast.Name):
                    name = candidate.id
                elif isinstance(candidate, ast.Attribute):
                    name = candidate.attr
                if name is not None and name.startswith("Frozen"):
                    yield self.finding(
                        module,
                        node,
                        f"{node.func.id}(..., {name}) dispatches on a "
                        "backend class outside engine//graph/; add a kernel "
                        "via repro.engine (dispatchable/kernel) instead",
                    )
                    break


# -- R004: no wall clock in cached paths ----------------------------------

#: Canonical dotted paths of wall-clock reads.
_WALLCLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Decorators that mark a function as a kernel body, artifact builder, or
#: registered experiment stage.
_CACHED_PATH_DECORATORS = {
    "kernel",
    "dispatchable",
    "artifact",
    "register_artifact",
    "experiment",
}

#: Modules where *every* function participates in content-addressed caching
#: (the artifact store + builders).  Wall-clock telemetry there needs an
#: explicit, justified suppression.
_CACHED_PATH_MODULES = {"experiments/artifacts.py"}


def _decorator_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _in_cached_path(module: ModuleContext, node: ast.AST) -> Optional[str]:
    """Why ``node`` is inside a content-derived code path (or ``None``)."""
    if module.package_relpath in _CACHED_PATH_MODULES:
        return f"module {module.package_relpath}"
    for function in module.enclosing_functions(node):
        for decorator in function.decorator_list:
            name = _decorator_name(decorator)
            if name in _CACHED_PATH_DECORATORS:
                return f"@{name} function {function.name!r}"
        lowered = function.name.lower()
        if "cache_token" in lowered or "cache_key" in lowered:
            return f"cache-token function {function.name!r}"
    return None


@register_rule
class NoWallclockInCachedPaths(Rule):
    """Cache keys and kernel outputs are content-derived (PR 5).

    A wall-clock read inside a kernel body, an artifact builder, or
    cache-token code makes artifacts non-reproducible and silently defeats
    the content-addressed store (cold/warm byte-identity, ``builds == 0``
    warm gates).
    """

    rule_id = "R004"
    name = "no-wallclock-in-cached-paths"
    description = (
        "no time.time/perf_counter/datetime.now inside @kernel/@dispatchable/"
        "@artifact/@experiment bodies, cache-token code, or "
        "experiments/artifacts.py; cache keys must be content-derived"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.resolve_dotted(node.func)
            if dotted not in _WALLCLOCK:
                continue
            scope = _in_cached_path(module, node)
            if scope is None:
                continue
            yield self.finding(
                module,
                node,
                f"wall-clock read {dotted}() in {scope}: cached paths must "
                "be content-derived (derive identity from inputs, or move "
                "timing out of the builder)",
            )


# -- R005: shared-memory lifecycle ----------------------------------------

@register_rule
class ShmLifecycle(Rule):
    """Every created shared-memory segment must be unlinked (PR 7).

    A ``SharedMemory(create=True)`` site without a ``weakref.finalize``/
    ``atexit`` unlink in the same module leaks ``/dev/shm`` segments under
    load — exactly the failure mode the parallel tier's ``_LIVE_SEGMENTS``
    bookkeeping exists to prevent.
    """

    rule_id = "R005"
    name = "shm-lifecycle"
    description = (
        "a module calling SharedMemory(create=True) must pair it with an "
        "unlink via weakref.finalize/atexit.register in the same module"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        create_sites: List[ast.Call] = []
        has_finalizer = False
        has_unlink = False
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                dotted = module.resolve_dotted(node.func)
                name = dotted.rsplit(".", 1)[-1] if dotted else None
                if name is None and isinstance(node.func, ast.Attribute):
                    name = node.func.attr
                if name == "SharedMemory" and any(
                    keyword.arg == "create"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                    for keyword in node.keywords
                ):
                    create_sites.append(node)
                if dotted in ("weakref.finalize", "atexit.register"):
                    has_finalizer = True
            if isinstance(node, ast.Attribute) and node.attr == "unlink":
                has_unlink = True
        if not create_sites:
            return
        missing = []
        if not has_finalizer:
            missing.append("a weakref.finalize/atexit.register hook")
        if not has_unlink:
            missing.append("an unlink() call")
        if not missing:
            return
        for site in create_sites:
            yield self.finding(
                module,
                site,
                "SharedMemory(create=True) without "
                + " or ".join(missing)
                + " in this module; segments must always be unlinked "
                "(see repro.engine.parallel)",
            )


# -- R006: registry coherence ---------------------------------------------

#: Backends with special meaning to the coherence checks.
_MUTABLE, _FROZEN, _PARALLEL = "mutable", "frozen", "parallel"


def _kernel_location(fn: Any) -> Tuple[str, int]:
    """(file, line) of a registered kernel function, best effort."""
    try:
        target = inspect.unwrap(fn)
        path = inspect.getsourcefile(target)
        line = inspect.getsourcelines(target)[1]
        if path:
            return path, line
    except (TypeError, OSError):
        pass
    return "<registry>", 1


def check_registry(registry: Mapping[str, Mapping[str, Sequence[Any]]]) -> List[Finding]:
    """Pure coherence checks over a registry mapping (op -> backend -> kernels).

    Kernels only need ``fn`` and ``priority`` attributes, so tests can feed
    synthetic registries.  Three invariants:

    * every operation with a ``frozen``/``parallel`` kernel also registers a
      portable (``mutable``) body — the fallback :func:`repro.engine.registry.
      resolve` relies on;
    * a parallel kernel outranks the frozen tier it shadows (and has a frozen
      counterpart to be bit-identical to);
    * no two kernels share ``(operation, backend, priority)`` — equal
      priority makes shadowing an accident of registration order.
    """
    findings: List[Finding] = []

    def finding(fn: Any, message: str) -> Finding:
        path, line = _kernel_location(fn)
        return Finding(path=path, line=line, rule="R006", message=message)

    for op in sorted(registry):
        backends = registry[op]
        frozen = list(backends.get(_FROZEN, ()))
        parallel = list(backends.get(_PARALLEL, ()))
        mutable = list(backends.get(_MUTABLE, ()))
        if (frozen or parallel) and not mutable:
            anchor = (frozen + parallel)[0]
            findings.append(
                finding(
                    anchor.fn,
                    f"operation {op!r} registers "
                    f"{'frozen' if frozen else 'parallel'} kernels but no "
                    "portable (mutable) body; frozen inputs would have no "
                    "fallback",
                )
            )
        if parallel:
            if not frozen:
                findings.append(
                    finding(
                        parallel[0].fn,
                        f"operation {op!r} has a parallel kernel but no "
                        "frozen counterpart to be bit-identical to",
                    )
                )
            else:
                best_parallel = max(entry.priority for entry in parallel)
                best_frozen = max(entry.priority for entry in frozen)
                if best_parallel <= best_frozen:
                    findings.append(
                        finding(
                            parallel[0].fn,
                            f"operation {op!r}: parallel tier priority "
                            f"({best_parallel}) must exceed the frozen tier's "
                            f"({best_frozen}) so threshold selection is "
                            "meaningful",
                        )
                    )
        for backend in sorted(backends):
            seen: Dict[int, Any] = {}
            for entry in backends[backend]:
                clash = seen.get(entry.priority)
                if clash is not None and clash is not entry.fn:
                    findings.append(
                        finding(
                            entry.fn,
                            f"duplicate registration for ({op!r}, "
                            f"{backend!r}) at priority {entry.priority}; "
                            "shadowing at equal priority is order-dependent "
                            "(engine.register raises "
                            "DuplicateKernelError for this)",
                        )
                    )
                else:
                    seen[entry.priority] = entry.fn
    return findings


def load_full_registry() -> Mapping[str, Mapping[str, Sequence[Any]]]:
    """Import every ``repro`` submodule, then return the live registry.

    Kernel registration happens at import time, so the coherence check must
    pull in the whole package (metrics, algorithms, applications, models,
    experiments) before reading ``repro.engine.registry._registry``.

    Only kernels whose function lives in a ``repro`` module are audited:
    R006 guards what the package ships, not registrations a host process
    (a test suite, a downstream extension) may have added to the live
    registry.
    """
    import importlib
    import pkgutil

    import repro

    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name == "repro.__main__":
            continue
        importlib.import_module(info.name)
    from repro.engine import registry as engine_registry

    def _shipped(kernel: Any) -> bool:
        module = getattr(getattr(kernel, "fn", None), "__module__", "") or ""
        return module == "repro" or module.startswith("repro.")

    filtered: Dict[str, Dict[str, List[Any]]] = {}
    for operation, backends in engine_registry._registry.items():
        kept = {
            backend: [kernel for kernel in kernels if _shipped(kernel)]
            for backend, kernels in backends.items()
        }
        kept = {backend: kernels for backend, kernels in kept.items() if kernels}
        if kept:
            filtered[operation] = kept
    return filtered


@register_rule
class RegistryCoherence(ProjectRule):
    """The kernel registry stays dispatchable (PR 2/7).

    A static+import hybrid: loads the live registry (importing every
    ``repro`` submodule so registration side effects run) and asserts the
    portable-fallback, parallel-outranks-frozen, and no-duplicate
    invariants.  Findings point at the registering function's definition.
    """

    rule_id = "R006"
    name = "registry-coherence"
    description = (
        "every frozen/parallel kernel shadows a registered portable body, "
        "parallel priority exceeds frozen priority, and no (operation, "
        "backend, priority) is registered twice"
    )

    def check_project(self, modules: Sequence[ModuleContext]) -> Iterable[Finding]:
        return check_registry(load_full_registry())
