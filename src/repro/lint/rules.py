"""The invariant catalog: concrete rules R001-R010.

Each rule encodes one load-bearing convention of this repository (the PR
that introduced it is named in ``docs/architecture.md``'s invariant
catalog).  Rules are deliberately narrow: they resolve imported names to
canonical dotted paths (``np.random.seed`` -> ``numpy.random.seed``) instead
of pattern-matching source text, so docstrings, comments, and local
variables that merely *mention* a pattern never fire.
"""

from __future__ import annotations

import ast
import inspect
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .core import Finding, ModuleContext, ProjectRule, Rule, register_rule

# -- R001: no unseeded RNG -------------------------------------------------

#: RNG factories that are fine *when seeded*: flagged only when called with
#: no arguments (or an explicit ``None``), which opts into system entropy.
_SEEDED_FACTORIES = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "random.Random",
}

#: ``numpy.random`` attributes that are not the legacy global-state API.
_NUMPY_RANDOM_ALLOWED = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.BitGenerator",
    "numpy.random.RandomState",
    "numpy.random.PCG64",
    "numpy.random.Philox",
    "numpy.random.MT19937",
    "numpy.random.SFC64",
}

#: Module-level functions of :mod:`random` that draw from the hidden global
#: generator.
_GLOBAL_RANDOM_FNS = {
    f"random.{name}"
    for name in (
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    )
}


def _is_unseeded_call(node: ast.Call) -> bool:
    """No positional seed and no keyword seed (``None`` counts as unseeded)."""
    for arg in node.args:
        if not (isinstance(arg, ast.Constant) and arg.value is None):
            return False
    for keyword in node.keywords:
        if keyword.arg is None:  # **kwargs: assume the caller seeds
            return False
        if not (
            isinstance(keyword.value, ast.Constant) and keyword.value.value is None
        ):
            return False
    return True


@register_rule
class NoUnseededRng(Rule):
    """Every RNG must be constructed from an explicit seed (PR 3-5).

    The repository's determinism story — same seed, bit-identical artifacts,
    content-addressed caches — dies the moment a code path draws from system
    entropy or the hidden module-level generators.
    """

    rule_id = "R001"
    name = "no-unseeded-rng"
    description = (
        "RNGs must be explicitly seeded: no np.random.default_rng()/"
        "random.Random() without a seed, no legacy np.random.* or "
        "module-level random.* global-state calls"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.resolve_dotted(node.func)
            if dotted is None:
                continue
            if dotted in _SEEDED_FACTORIES:
                if _is_unseeded_call(node):
                    yield self.finding(
                        module,
                        node,
                        f"{dotted}() without an explicit seed draws from "
                        "system entropy; pass a seed (library defaults "
                        "should name one, e.g. DEFAULT_FIGURE_SEED)",
                    )
            elif (
                dotted.startswith("numpy.random.")
                and dotted not in _NUMPY_RANDOM_ALLOWED
            ):
                yield self.finding(
                    module,
                    node,
                    f"legacy global-state RNG call {dotted}(); use a seeded "
                    "numpy.random.default_rng(seed) generator instead",
                )
            elif dotted in _GLOBAL_RANDOM_FNS:
                yield self.finding(
                    module,
                    node,
                    f"module-level {dotted}() draws from the hidden global "
                    "generator; thread a seeded random.Random through "
                    "repro.utils.rng.ensure_rng instead",
                )


# -- R002: scipy containment ----------------------------------------------

#: The one module allowed to import scipy (the lazy/guarded boundary).
_SCIPY_BOUNDARY = "engine/deps.py"

#: Names whose presence in an enclosing ``if`` test marks a scipy import as
#: guarded by the deps probe.
_SCIPY_PROBES = {"have_scipy", "scipy_sparse", "scipy_csgraph"}


def _guarded_by_probe(module: ModuleContext, node: ast.AST) -> bool:
    """Inside a function *and* under an ``if`` consulting the deps probe."""
    in_function = False
    probed = False
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            in_function = True
        elif isinstance(ancestor, ast.If):
            for name in ast.walk(ancestor.test):
                if isinstance(name, ast.Name) and name.id in _SCIPY_PROBES:
                    probed = True
                elif isinstance(name, ast.Attribute) and name.attr in _SCIPY_PROBES:
                    probed = True
    return in_function and probed


@register_rule
class ScipyContainment(Rule):
    """scipy stays behind :mod:`repro.engine.deps` (PR 2).

    Importing :mod:`repro` must never import scipy eagerly, and
    ``REPRO_NO_SCIPY`` must be able to force the numpy fallbacks at dispatch
    time — both only hold while every scipy access goes through the deps
    probe (``scipy_sparse()``/``scipy_csgraph()``).
    """

    rule_id = "R002"
    name = "scipy-containment"
    description = (
        "scipy may only be imported in engine/deps.py; elsewhere use the "
        "lazy accessors (deps.scipy_sparse()/scipy_csgraph()) or guard a "
        "function-local import behind the deps probe"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        if module.package_relpath == _SCIPY_BOUNDARY:
            return
        for node in ast.walk(module.tree):
            target: Optional[str] = None
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "scipy" or alias.name.startswith("scipy."):
                        target = alias.name
                        break
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module and (
                    node.module == "scipy" or node.module.startswith("scipy.")
                ):
                    target = node.module
            elif isinstance(node, ast.Call):
                dotted = module.resolve_dotted(node.func)
                if dotted in ("importlib.import_module", "__import__") and node.args:
                    head = node.args[0]
                    if (
                        isinstance(head, ast.Constant)
                        and isinstance(head.value, str)
                        and head.value.split(".")[0] == "scipy"
                    ):
                        target = head.value
            if target is None:
                continue
            if _guarded_by_probe(module, node):
                continue
            yield self.finding(
                module,
                node,
                f"direct import of {target!r} outside engine/deps.py; go "
                "through repro.engine.deps (scipy_sparse()/scipy_csgraph()) "
                "or guard a lazy import behind deps.have_scipy()",
            )


# -- R003: no backend isinstance dispatch ---------------------------------

#: Layers allowed to inspect concrete backend classes.
_BACKEND_LAYERS = ("engine/", "graph/")


@register_rule
class NoBackendIsinstance(Rule):
    """Backend dispatch goes through the kernel registry (PR 2).

    ``isinstance(x, Frozen*)`` branches outside the engine and graph layers
    reintroduce the scattered PR-1 idiom the registry replaced; they bypass
    priority shadowing, requirement gating, and the parallel tier.
    """

    rule_id = "R003"
    name = "no-backend-isinstance"
    description = (
        "no isinstance/issubclass dispatch on Frozen* backend classes "
        "outside engine/ and graph/; register a kernel instead"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        if module.package_relpath.startswith(_BACKEND_LAYERS):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (
                isinstance(node.func, ast.Name)
                and node.func.id in ("isinstance", "issubclass")
            ):
                continue
            if len(node.args) < 2:
                continue
            classinfo = node.args[1]
            candidates = (
                classinfo.elts if isinstance(classinfo, ast.Tuple) else [classinfo]
            )
            for candidate in candidates:
                name = None
                if isinstance(candidate, ast.Name):
                    name = candidate.id
                elif isinstance(candidate, ast.Attribute):
                    name = candidate.attr
                if name is not None and name.startswith("Frozen"):
                    yield self.finding(
                        module,
                        node,
                        f"{node.func.id}(..., {name}) dispatches on a "
                        "backend class outside engine//graph/; add a kernel "
                        "via repro.engine (dispatchable/kernel) instead",
                    )
                    break


# -- R004: no wall clock in cached paths ----------------------------------

#: Canonical dotted paths of wall-clock reads.
_WALLCLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Decorators that mark a function as a kernel body, artifact builder, or
#: registered experiment stage.
_CACHED_PATH_DECORATORS = {
    "kernel",
    "dispatchable",
    "artifact",
    "register_artifact",
    "experiment",
}

#: Modules where *every* function participates in content-addressed caching
#: (the artifact store + builders).  Wall-clock telemetry there needs an
#: explicit, justified suppression.
_CACHED_PATH_MODULES = {"experiments/artifacts.py"}


def _decorator_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _in_cached_path(module: ModuleContext, node: ast.AST) -> Optional[str]:
    """Why ``node`` is inside a content-derived code path (or ``None``)."""
    if module.package_relpath in _CACHED_PATH_MODULES:
        return f"module {module.package_relpath}"
    for function in module.enclosing_functions(node):
        for decorator in function.decorator_list:
            name = _decorator_name(decorator)
            if name in _CACHED_PATH_DECORATORS:
                return f"@{name} function {function.name!r}"
        lowered = function.name.lower()
        if "cache_token" in lowered or "cache_key" in lowered:
            return f"cache-token function {function.name!r}"
    return None


@register_rule
class NoWallclockInCachedPaths(Rule):
    """Cache keys and kernel outputs are content-derived (PR 5).

    A wall-clock read inside a kernel body, an artifact builder, or
    cache-token code makes artifacts non-reproducible and silently defeats
    the content-addressed store (cold/warm byte-identity, ``builds == 0``
    warm gates).
    """

    rule_id = "R004"
    name = "no-wallclock-in-cached-paths"
    description = (
        "no time.time/perf_counter/datetime.now inside @kernel/@dispatchable/"
        "@artifact/@experiment bodies, cache-token code, or "
        "experiments/artifacts.py; cache keys must be content-derived"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.resolve_dotted(node.func)
            if dotted not in _WALLCLOCK:
                continue
            scope = _in_cached_path(module, node)
            if scope is None:
                continue
            yield self.finding(
                module,
                node,
                f"wall-clock read {dotted}() in {scope}: cached paths must "
                "be content-derived (derive identity from inputs, or move "
                "timing out of the builder)",
            )


# -- R005: shared-memory lifecycle ----------------------------------------

@register_rule
class ShmLifecycle(Rule):
    """Every created shared-memory segment must be unlinked (PR 7).

    A ``SharedMemory(create=True)`` site without a ``weakref.finalize``/
    ``atexit`` unlink in the same module leaks ``/dev/shm`` segments under
    load — exactly the failure mode the parallel tier's ``_LIVE_SEGMENTS``
    bookkeeping exists to prevent.
    """

    rule_id = "R005"
    name = "shm-lifecycle"
    description = (
        "a module calling SharedMemory(create=True) must pair it with an "
        "unlink via weakref.finalize/atexit.register in the same module"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        create_sites: List[ast.Call] = []
        has_finalizer = False
        has_unlink = False
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                dotted = module.resolve_dotted(node.func)
                name = dotted.rsplit(".", 1)[-1] if dotted else None
                if name is None and isinstance(node.func, ast.Attribute):
                    name = node.func.attr
                if name == "SharedMemory" and any(
                    keyword.arg == "create"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                    for keyword in node.keywords
                ):
                    create_sites.append(node)
                if dotted in ("weakref.finalize", "atexit.register"):
                    has_finalizer = True
            if isinstance(node, ast.Attribute) and node.attr == "unlink":
                has_unlink = True
        if not create_sites:
            return
        missing = []
        if not has_finalizer:
            missing.append("a weakref.finalize/atexit.register hook")
        if not has_unlink:
            missing.append("an unlink() call")
        if not missing:
            return
        for site in create_sites:
            yield self.finding(
                module,
                site,
                "SharedMemory(create=True) without "
                + " or ".join(missing)
                + " in this module; segments must always be unlinked "
                "(see repro.engine.parallel)",
            )


# -- R006: registry coherence ---------------------------------------------

#: Backends with special meaning to the coherence checks.
_MUTABLE, _FROZEN, _PARALLEL = "mutable", "frozen", "parallel"


def _kernel_location(fn: Any) -> Tuple[str, int]:
    """(file, line) of a registered kernel function, best effort."""
    try:
        target = inspect.unwrap(fn)
        path = inspect.getsourcefile(target)
        line = inspect.getsourcelines(target)[1]
        if path:
            return path, line
    except (TypeError, OSError):
        pass
    return "<registry>", 1


def check_registry(registry: Mapping[str, Mapping[str, Sequence[Any]]]) -> List[Finding]:
    """Pure coherence checks over a registry mapping (op -> backend -> kernels).

    Kernels only need ``fn`` and ``priority`` attributes, so tests can feed
    synthetic registries.  Three invariants:

    * every operation with a ``frozen``/``parallel`` kernel also registers a
      portable (``mutable``) body — the fallback :func:`repro.engine.registry.
      resolve` relies on;
    * a parallel kernel outranks the frozen tier it shadows (and has a frozen
      counterpart to be bit-identical to);
    * no two kernels share ``(operation, backend, priority)`` — equal
      priority makes shadowing an accident of registration order.
    """
    findings: List[Finding] = []

    def finding(fn: Any, message: str) -> Finding:
        path, line = _kernel_location(fn)
        return Finding(path=path, line=line, rule="R006", message=message)

    for op in sorted(registry):
        backends = registry[op]
        frozen = list(backends.get(_FROZEN, ()))
        parallel = list(backends.get(_PARALLEL, ()))
        mutable = list(backends.get(_MUTABLE, ()))
        if (frozen or parallel) and not mutable:
            anchor = (frozen + parallel)[0]
            findings.append(
                finding(
                    anchor.fn,
                    f"operation {op!r} registers "
                    f"{'frozen' if frozen else 'parallel'} kernels but no "
                    "portable (mutable) body; frozen inputs would have no "
                    "fallback",
                )
            )
        if parallel:
            if not frozen:
                findings.append(
                    finding(
                        parallel[0].fn,
                        f"operation {op!r} has a parallel kernel but no "
                        "frozen counterpart to be bit-identical to",
                    )
                )
            else:
                best_parallel = max(entry.priority for entry in parallel)
                best_frozen = max(entry.priority for entry in frozen)
                if best_parallel <= best_frozen:
                    findings.append(
                        finding(
                            parallel[0].fn,
                            f"operation {op!r}: parallel tier priority "
                            f"({best_parallel}) must exceed the frozen tier's "
                            f"({best_frozen}) so threshold selection is "
                            "meaningful",
                        )
                    )
        for backend in sorted(backends):
            seen: Dict[int, Any] = {}
            for entry in backends[backend]:
                clash = seen.get(entry.priority)
                if clash is not None and clash is not entry.fn:
                    findings.append(
                        finding(
                            entry.fn,
                            f"duplicate registration for ({op!r}, "
                            f"{backend!r}) at priority {entry.priority}; "
                            "shadowing at equal priority is order-dependent "
                            "(engine.register raises "
                            "DuplicateKernelError for this)",
                        )
                    )
                else:
                    seen[entry.priority] = entry.fn
    return findings


def load_full_registry() -> Mapping[str, Mapping[str, Sequence[Any]]]:
    """Import every ``repro`` submodule, then return the live registry.

    Kernel registration happens at import time, so the coherence check must
    pull in the whole package (metrics, algorithms, applications, models,
    experiments) before reading ``repro.engine.registry._registry``.

    Only kernels whose function lives in a ``repro`` module are audited:
    R006 guards what the package ships, not registrations a host process
    (a test suite, a downstream extension) may have added to the live
    registry.
    """
    import importlib
    import pkgutil

    import repro

    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name == "repro.__main__":
            continue
        importlib.import_module(info.name)
    from repro.engine import registry as engine_registry

    def _shipped(kernel: Any) -> bool:
        module = getattr(getattr(kernel, "fn", None), "__module__", "") or ""
        return module == "repro" or module.startswith("repro.")

    filtered: Dict[str, Dict[str, List[Any]]] = {}
    for operation, backends in engine_registry._registry.items():
        kept = {
            backend: [kernel for kernel in kernels if _shipped(kernel)]
            for backend, kernels in backends.items()
        }
        kept = {backend: kernels for backend, kernels in kept.items() if kernels}
        if kept:
            filtered[operation] = kept
    return filtered


# -- R007: cache-token soundness ------------------------------------------

#: Decorator names that mark a function as an artifact builder.
_ARTIFACT_DECORATORS = {"artifact"}

#: Scenario attributes that are identity/bookkeeping, never cache inputs.
_SCENARIO_NEUTRAL_ATTRS = {"name", "description", "cache_token"}

_RESOLVER_ROLE = "resolver"
_SCENARIO_ROLE = "scenario"


def _local_parent_map(root: ast.AST) -> Dict[ast.AST, ast.AST]:
    table: Dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(root):
        for child in ast.iter_child_nodes(parent):
            table[child] = parent
    return table


def _method_table(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    return {
        node.name: node
        for node in cls.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _self_field_reads(
    methods: Mapping[str, ast.FunctionDef],
    method_name: str,
    visited: Optional[set] = None,
) -> set:
    """``self.<field>`` reads reachable from a method through sibling calls."""
    if visited is None:
        visited = set()
    if method_name in visited or method_name not in methods:
        return set()
    visited.add(method_name)
    method = methods[method_name]
    positional = method.args.args
    if not positional:
        return set()
    self_name = positional[0].arg
    parents = _local_parent_map(method)
    reads: set = set()
    for node in ast.walk(method):
        if not (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == self_name
        ):
            continue
        enclosing = parents.get(node)
        is_call = isinstance(enclosing, ast.Call) and enclosing.func is node
        if is_call and node.attr in methods:
            reads |= _self_field_reads(methods, node.attr, visited)
        else:
            reads.add(node.attr)
    return reads


def _cache_token_model(
    modules: Sequence[ModuleContext],
) -> Tuple[Optional[set], Dict[str, set]]:
    """(covered fields, method -> transitive field reads) across the run.

    Unions every class defining ``cache_token`` in the linted module set;
    returns ``(None, {})`` when no such class exists (the rule cannot judge
    and stays silent).
    """
    covered: Optional[set] = None
    method_reads: Dict[str, set] = {}
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = _method_table(node)
            if "cache_token" not in methods:
                continue
            if covered is None:
                covered = set()
            covered |= _self_field_reads(methods, "cache_token")
            for name in methods:
                method_reads.setdefault(name, set()).update(
                    _self_field_reads(methods, name)
                )
    return covered, method_reads


def _role_of(expr: ast.AST, env: Mapping[str, str]) -> Optional[str]:
    """Dataflow role of an expression: resolver, scenario, or neither."""
    if isinstance(expr, ast.Name):
        return env.get(expr.id)
    if isinstance(expr, ast.Attribute):
        if _role_of(expr.value, env) == _RESOLVER_ROLE and expr.attr == "scenario":
            return _SCENARIO_ROLE
        return None
    return None


def _role_env(fn: ast.AST, seed_roles: Mapping[str, str]) -> Dict[str, str]:
    """Parameter roles plus simple-alias propagation, to a fixpoint."""
    env = dict(seed_roles)
    changed = True
    while changed:
        changed = False
        for node in ast.walk(fn):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                continue
            role = _role_of(node.value, env)
            target = node.targets[0].id
            if role is not None and env.get(target) != role:
                env[target] = role
                changed = True
    return env


@register_rule
class CacheTokenSoundness(ProjectRule):
    """Builders read only cache-token-covered scenario fields (PR 5).

    For every ``@artifact`` builder, the set of scenario attribute reads
    reachable from its body — through ``resolver.scenario`` aliases,
    intra-module helper calls, and scenario *methods* — must be a subset of
    the ``self.<field>`` reads inside ``cache_token()``.  A field a builder
    consumes but the token omits is an under-keyed cache: two scenarios
    differing only in that field share a key and silently serve each other's
    artifacts.
    """

    rule_id = "R007"
    name = "cache-token-soundness"
    description = (
        "every scenario field an @artifact builder reads (transitively "
        "through aliases, intra-module helpers, and scenario methods) must "
        "be folded into cache_token(); under-keyed caches serve stale "
        "artifacts"
    )

    def check_project(self, modules: Sequence[ModuleContext]) -> Iterable[Finding]:
        covered, method_reads = _cache_token_model(modules)
        if covered is None:
            return []
        findings: List[Finding] = []
        for module in modules:
            module_defs = {
                node.name: node
                for node in module.tree.body
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for node in module.tree.body:
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if not any(
                    _decorator_name(decorator) in _ARTIFACT_DECORATORS
                    for decorator in node.decorator_list
                ):
                    continue
                positional = node.args.args
                if not positional:
                    continue
                self._scan(
                    module,
                    node,
                    {positional[0].arg: _RESOLVER_ROLE},
                    node.name,
                    covered,
                    method_reads,
                    module_defs,
                    {node.name},
                    findings,
                )
        return findings

    def _scan(
        self,
        module: ModuleContext,
        fn: ast.AST,
        seed_roles: Mapping[str, str],
        builder: str,
        covered: set,
        method_reads: Mapping[str, set],
        module_defs: Mapping[str, ast.AST],
        visited: set,
        findings: List[Finding],
    ) -> None:
        env = _role_env(fn, seed_roles)
        for node in ast.walk(fn):
            if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                if _role_of(node.value, env) != _SCENARIO_ROLE:
                    continue
                attr = node.attr
                if attr in _SCENARIO_NEUTRAL_ATTRS:
                    continue
                parent = module.parents.get(node)
                is_call = isinstance(parent, ast.Call) and parent.func is node
                if is_call and attr in method_reads:
                    for field in sorted(method_reads[attr] - covered):
                        findings.append(
                            self.finding(
                                module,
                                node,
                                f"@artifact builder {builder!r} reads scenario "
                                f"field {field!r} (via {attr}()) that "
                                "cache_token() does not cover; an under-keyed "
                                "cache serves stale artifacts — fold the field "
                                "into cache_token() or hoist the read out of "
                                "the builder",
                            )
                        )
                elif attr not in covered:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"@artifact builder {builder!r} reads scenario "
                            f"field {attr!r} that cache_token() does not "
                            "cover; an under-keyed cache serves stale "
                            "artifacts — fold the field into cache_token() "
                            "or hoist the read out of the builder",
                        )
                    )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                callee = module_defs.get(node.func.id)
                if callee is None or node.func.id in visited:
                    continue
                parameters = [arg.arg for arg in callee.args.args]
                roles: Dict[str, str] = {}
                for index, arg in enumerate(node.args):
                    role = _role_of(arg, env)
                    if role is not None and index < len(parameters):
                        roles[parameters[index]] = role
                for keyword in node.keywords:
                    role = _role_of(keyword.value, env)
                    if role is not None and keyword.arg:
                        roles[keyword.arg] = role
                if roles:
                    self._scan(
                        module,
                        callee,
                        roles,
                        builder,
                        covered,
                        method_reads,
                        module_defs,
                        visited | {node.func.id},
                        findings,
                    )


# -- R008: parallel-worker purity -----------------------------------------

#: Roles of the shared-view taint analysis.
_VIEWS_DICT = "views-dict"
_VIEWS_ARRAY = "views-array"


def _is_attach_call(module: ModuleContext, node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    dotted = module.resolve_dotted(node.func)
    if dotted is not None:
        return dotted.rsplit(".", 1)[-1] == "attach_views"
    return isinstance(node.func, ast.Attribute) and node.func.attr == "attach_views"


def _view_role(module: ModuleContext, expr: ast.AST, env: Mapping[str, str]) -> Optional[str]:
    """Shared-view taint of an expression.

    ``attach_views(...)`` yields the views dict; subscripting it yields an
    array; slicing a tainted array yields another view of the same shared
    buffer.  Any other call (``.copy()``, ``np.asarray``...) breaks the
    taint — it produces private memory.
    """
    if isinstance(expr, ast.Name):
        return env.get(expr.id)
    if _is_attach_call(module, expr):
        return _VIEWS_DICT
    if isinstance(expr, ast.Subscript):
        base = _view_role(module, expr.value, env)
        if base in (_VIEWS_DICT, _VIEWS_ARRAY):
            return _VIEWS_ARRAY
    return None


def _view_env(module: ModuleContext, fn: ast.AST) -> Dict[str, str]:
    """Name -> taint role inside one function body, to a fixpoint."""
    env: Dict[str, str] = {}
    changed = True
    while changed:
        changed = False

        def bind(name: str, role: Optional[str]) -> None:
            nonlocal changed
            if role is not None and env.get(name) != role:
                env[name] = role
                changed = True

        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if isinstance(target, ast.Name):
                bind(target.id, _view_role(module, node.value, env))
            elif (
                isinstance(target, ast.Tuple)
                and isinstance(node.value, ast.Tuple)
                and len(target.elts) == len(node.value.elts)
            ):
                for element, value in zip(target.elts, node.value.elts):
                    if isinstance(element, ast.Name):
                        bind(element.id, _view_role(module, value, env))
    return env


def _module_level_bindings(module: ModuleContext) -> set:
    names: set = set()
    for node in module.tree.body:
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, ast.Tuple):
                names.update(
                    element.id
                    for element in target.elts
                    if isinstance(element, ast.Name)
                )
    return names


def _root_name(expr: ast.AST) -> Optional[str]:
    while isinstance(expr, (ast.Subscript, ast.Attribute)):
        expr = expr.value
    return expr.id if isinstance(expr, ast.Name) else None


@register_rule
class ParallelWorkerPurity(Rule):
    """Functions submitted to the shared-memory pool stay pure (PR 7).

    A worker that writes to a module global loses the write silently (fork
    isolation) or races (threads); a worker that writes through a shared
    *input* view corrupts sibling chunks; a lambda/nested function captures
    a closure the pool cannot pickle reliably.  Output buffers are the one
    sanctioned mutation and must be attached explicitly via
    ``attach_output_views``.
    """

    rule_id = "R008"
    name = "parallel-worker-purity"
    description = (
        "workers passed to engine.parallel.run_chunks must be module-level "
        "functions that never write module globals or arrays attached via "
        "attach_views (output buffers go through attach_output_views)"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        module_defs = {
            node.name: node
            for node in module.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        module_globals = _module_level_bindings(module)
        findings: List[Finding] = []
        analyzed: set = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.resolve_dotted(node.func)
            if dotted is None or dotted.rsplit(".", 1)[-1] != "run_chunks":
                continue
            if "parallel" not in dotted:
                continue
            worker = node.args[0] if node.args else None
            if worker is None:
                for keyword in node.keywords:
                    if keyword.arg == "fn":
                        worker = keyword.value
            if worker is None:
                continue
            if isinstance(worker, ast.Lambda):
                findings.append(
                    self.finding(
                        module,
                        worker,
                        "lambda submitted to run_chunks captures its closure; "
                        "pool workers must be module-level functions (fork "
                        "inherits them, spawn pickles them by reference)",
                    )
                )
                continue
            if not isinstance(worker, ast.Name):
                continue
            definition = module_defs.get(worker.id)
            if definition is not None:
                if worker.id not in analyzed:
                    analyzed.add(worker.id)
                    self._check_worker(
                        module, definition, module_defs, module_globals, findings
                    )
            elif worker.id not in module.imports and self._is_nested_def(
                module, worker.id
            ):
                findings.append(
                    self.finding(
                        module,
                        worker,
                        f"nested function {worker.id!r} submitted to "
                        "run_chunks captures its enclosing scope; hoist the "
                        "worker to module level",
                    )
                )
        return findings

    def _is_nested_def(self, module: ModuleContext, name: str) -> bool:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == name
            ):
                return True
        return False

    def _check_worker(
        self,
        module: ModuleContext,
        worker: ast.AST,
        module_defs: Mapping[str, ast.AST],
        module_globals: set,
        findings: List[Finding],
    ) -> None:
        queue = [worker]
        visited = {worker.name}
        while queue:
            fn = queue.pop()
            locals_here = {arg.arg for arg in fn.args.args}
            locals_here.update(
                node.id
                for node in ast.walk(fn)
                if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store)
            )
            env = _view_env(module, fn)
            for node in ast.walk(fn):
                if isinstance(node, ast.Global):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"pool worker {worker.name!r} declares "
                            f"global {', '.join(node.names)}; worker-side "
                            "global writes are lost to fork isolation — "
                            "return results instead",
                        )
                    )
                    continue
                targets: List[ast.AST] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, ast.AugAssign):
                    targets = [node.target]
                for target in targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        base = (
                            target.value
                            if isinstance(target, (ast.Subscript, ast.Attribute))
                            else target
                        )
                        if isinstance(target, ast.Subscript) and _view_role(
                            module, target.value, env
                        ) in (_VIEWS_DICT, _VIEWS_ARRAY):
                            findings.append(
                                self.finding(
                                    module,
                                    node,
                                    f"pool worker {worker.name!r} writes "
                                    "through a shared view attached with "
                                    "attach_views(); input views are "
                                    "read-only — attach intentional output "
                                    "buffers via attach_output_views()",
                                )
                            )
                            continue
                        root = _root_name(base)
                        if (
                            root is not None
                            and root in module_globals
                            and root not in locals_here
                        ):
                            findings.append(
                                self.finding(
                                    module,
                                    node,
                                    f"pool worker {worker.name!r} mutates "
                                    f"module-level state {root!r}; the write "
                                    "is invisible to the parent and to "
                                    "sibling workers — return results "
                                    "instead",
                                )
                            )
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                    callee = module_defs.get(node.func.id)
                    if callee is not None and node.func.id not in visited:
                        visited.add(node.func.id)
                        queue.append(callee)


# -- R010: storage hygiene -------------------------------------------------

#: The one module allowed to serialize raw graph arrays (the versioned,
#: aligned, endianness-tagged columnar writer).
_COLUMNAR_BOUNDARY = "graph/columnar.py"

#: Canonical dotted paths of ad-hoc numpy array serialization.
_NUMPY_SAVERS = {
    "numpy.save",
    "numpy.savez",
    "numpy.savez_compressed",
    "numpy.lib.format.write_array",
}


@register_rule
class StorageHygiene(Rule):
    """Graph arrays persist only through the columnar format (PR 10).

    An ad-hoc ``array.tofile()`` / ``np.save()`` of CSR arrays writes a
    headerless (or ``.npy``-headered) blob with no magic, no format version,
    no section alignment, and no endianness tag — unreadable by
    ``open_columnar``, invisible to the artifact store's integrity hashing,
    and a fork of the on-disk format the first time its layout drifts.
    """

    rule_id = "R010"
    name = "storage-hygiene"
    description = (
        "no ad-hoc array serialization (ndarray.tofile, numpy.save/savez) "
        "outside graph/columnar.py; frozen-graph arrays persist through "
        "save_columnar()/open_columnar() so every file carries the "
        "versioned, aligned, endianness-tagged header"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        if module.package_relpath == _COLUMNAR_BOUNDARY:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.resolve_dotted(node.func)
            if dotted in _NUMPY_SAVERS:
                yield self.finding(
                    module,
                    node,
                    f"{dotted}() writes an ad-hoc array file outside "
                    "graph/columnar.py; persist graph arrays via "
                    "save_columnar() so the file carries the versioned "
                    "columnar header",
                )
            elif (
                dotted is None
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "tofile"
            ):
                yield self.finding(
                    module,
                    node,
                    "tofile() writes a raw headerless array dump outside "
                    "graph/columnar.py; persist graph arrays via "
                    "save_columnar() (versioned header, 64-byte alignment, "
                    "little-endian on disk)",
                )


# -- R009: seed-stream discipline -----------------------------------------

#: Seeded RNG constructors whose seed argument the rule inspects.
_SEED_SINKS = {
    "numpy.random.default_rng",
    "numpy.random.SeedSequence",
    "numpy.random.RandomState",
    "numpy.random.PCG64",
    "numpy.random.Philox",
    "random.Random",
}

_ARITHMETIC_OPS = (
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.Div,
    ast.FloorDiv,
    ast.Mod,
    ast.Pow,
    ast.LShift,
    ast.RShift,
    ast.BitOr,
    ast.BitXor,
    ast.BitAnd,
)


def _contains_nonconstant_arithmetic(expr: ast.AST) -> bool:
    """A BinOp over anything non-constant anywhere inside ``expr``."""
    for node in ast.walk(expr):
        if isinstance(node, ast.BinOp) and isinstance(node.op, _ARITHMETIC_OPS):
            if any(
                isinstance(leaf, (ast.Name, ast.Attribute, ast.Call))
                for leaf in ast.walk(node)
            ):
                return True
    return False


@register_rule
class SeedStreamDiscipline(Rule):
    """Chunked RNG streams compose seeds, never add them (PR 3/7).

    ``default_rng(base + i)`` collides across streams: chunk ``i`` seeded
    with ``base + 1`` *is* chunk ``i+1``'s stream, and two base seeds one
    apart overlap wholesale.  numpy's ``SeedSequence`` spawning — written
    ``default_rng([base, index])`` — mixes the pair through a hash, so
    every (base, index) combination is an independent stream.  This is the
    derivation the frozen/parallel walk kernels rely on for bit-identity.
    """

    rule_id = "R009"
    name = "seed-stream-discipline"
    description = (
        "chunked RNG seeds must be derived by sequence composition "
        "(default_rng([base, index])), never arithmetic like base + i, "
        "which collides across streams"
    )

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.resolve_dotted(node.func)
            if dotted not in _SEED_SINKS:
                continue
            seed: Optional[ast.AST] = node.args[0] if node.args else None
            if seed is None:
                for keyword in node.keywords:
                    if keyword.arg == "seed":
                        seed = keyword.value
            if seed is None:
                continue
            if _contains_nonconstant_arithmetic(seed):
                yield self.finding(
                    module,
                    node,
                    f"seed of {dotted}() is derived by arithmetic; "
                    "arithmetic seed derivation collides across chunk "
                    "streams (base+1 of stream i is stream i+1's base) — "
                    "compose a sequence instead: "
                    f"{dotted.rsplit('.', 1)[-1]}([base, index])",
                )


@register_rule
class RegistryCoherence(ProjectRule):
    """The kernel registry stays dispatchable (PR 2/7).

    A static+import hybrid: loads the live registry (importing every
    ``repro`` submodule so registration side effects run) and asserts the
    portable-fallback, parallel-outranks-frozen, and no-duplicate
    invariants.  Findings point at the registering function's definition.
    """

    rule_id = "R006"
    name = "registry-coherence"
    description = (
        "every frozen/parallel kernel shadows a registered portable body, "
        "parallel priority exceeds frozen priority, and no (operation, "
        "backend, priority) is registered twice"
    )

    def check_project(self, modules: Sequence[ModuleContext]) -> Iterable[Finding]:
        return check_registry(load_full_registry())
