"""Render a :class:`~repro.lint.core.LintResult` as text or JSON.

Text is for humans at a terminal (one ``path:line: RULE message`` row per
finding, grep-friendly); JSON is the machine surface CI uploads as an
artifact and ``--baseline`` consumes.
"""

from __future__ import annotations

import json

from .core import LintResult


def render_text(result: LintResult) -> str:
    """Human-readable report: findings, stale suppressions, summary line."""
    lines = []
    for finding in result.findings:
        lines.append(f"{finding.path}:{finding.line}: {finding.rule} {finding.message}")
    if result.report_stale and result.stale:
        lines.append("stale suppressions:")
        for finding in result.stale:
            lines.append(
                f"{finding.path}:{finding.line}: {finding.rule} {finding.message}"
            )
    summary = (
        f"{len(result.findings)} finding(s) in {result.files} file(s)"
        f" [rules: {', '.join(result.rules)}]"
    )
    extras = []
    if result.suppressed:
        extras.append(f"{len(result.suppressed)} suppressed")
    if result.baselined:
        extras.append(f"{len(result.baselined)} baselined")
    if result.report_stale:
        extras.append(f"{len(result.stale)} stale suppression(s)")
    if extras:
        summary += " (" + ", ".join(extras) + ")"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The JSON report (stable schema, ``version`` field for evolution)."""
    return json.dumps(result.to_json(), indent=2, sort_keys=True) + "\n"
