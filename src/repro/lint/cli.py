"""The ``repro lint`` subcommand: argument surface and exit-code policy.

Exit codes follow the usual linter contract: ``0`` clean, ``1`` findings
(or stale suppressions under ``--report-stale``), ``2`` usage errors
(unknown rule ids, unreadable paths/baselines).  The argparse wiring lives
in :func:`add_parser` so :mod:`repro.cli` stays a thin dispatcher.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .core import LintError, all_rules, load_baseline, relativize, run_lint
from .reporters import render_json, render_text


def default_target() -> Path:
    """Lint target when no paths are given: the installed ``repro`` package."""
    import repro

    return Path(repro.__file__).parent


def add_parser(subparsers: argparse._SubParsersAction) -> argparse.ArgumentParser:
    """Attach the ``lint`` subcommand to the main ``repro`` parser."""
    lint_help = (
        "run the invariant linter (rules R001-R010: seeded RNG, scipy "
        "containment, registry dispatch, content-derived caches, "
        "shared-memory hygiene, cache-token soundness, parallel-worker "
        "purity, seed-stream discipline, storage hygiene) over src/repro "
        "or the given paths"
    )
    parser = subparsers.add_parser("lint", help=lint_help, description=lint_help)
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files/directories to lint (default: the repro package source)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: the full catalog)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json is the schema CI uploads and "
        "--baseline consumes)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="JSON findings report whose entries are accepted (not failed); "
        "matched by (path, rule, message), line-insensitive",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        help="write the current findings as a baseline JSON and exit 0",
    )
    parser.add_argument(
        "--report-stale",
        action="store_true",
        help="also fail on suppressions whose rule no longer fires on the "
        "covered line",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="also write the rendered report to this file (written even "
        "when findings fail the run, for CI artifact upload)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def run(args: argparse.Namespace) -> int:
    """Execute ``repro lint`` for parsed ``args``; returns the exit code."""
    if args.list_rules:
        for rule_id, rule in sorted(all_rules().items()):
            print(f"{rule_id}  {rule.name:<30} {rule.description}")
        return 0

    rule_ids: Optional[List[str]] = None
    if args.rules:
        rule_ids = [part for part in args.rules.split(",") if part.strip()]

    paths = [Path(item) for item in args.paths] if args.paths else [default_target()]

    try:
        baseline = load_baseline(Path(args.baseline)) if args.baseline else None
        result = run_lint(
            paths,
            rule_ids=rule_ids,
            report_stale=args.report_stale,
            baseline=baseline,
        )
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    result = relativize(result)

    if args.write_baseline:
        payload = render_json(result)
        Path(args.write_baseline).write_text(payload, encoding="utf-8")
        print(
            f"wrote baseline {args.write_baseline} "
            f"({len(result.findings)} finding(s))"
        )
        return 0

    rendered = render_json(result) if args.format == "json" else render_text(result)
    print(rendered, end="" if rendered.endswith("\n") else "\n")
    if args.out:
        out_path = Path(args.out)
        if out_path.parent != Path(""):
            out_path.parent.mkdir(parents=True, exist_ok=True)
        text = rendered if rendered.endswith("\n") else rendered + "\n"
        out_path.write_text(text, encoding="utf-8")
    return 1 if result.failures else 0
