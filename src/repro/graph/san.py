"""The Social-Attribute Network (SAN) container.

A SAN, following Gong et al. (IMC 2012), is the 4-tuple
``(V_s, V_a, E_s, E_a)``:

* ``V_s`` — social nodes (users),
* ``V_a`` — attribute nodes (e.g. a specific employer or city),
* ``E_s`` — *directed* social links between social nodes,
* ``E_a`` — *undirected* attribute links between a social node and an
  attribute node.

This module combines :class:`repro.graph.digraph.DiGraph` (the social layer)
with :class:`repro.graph.bipartite.BipartiteAttributeGraph` (the attribute
layer) and exposes the neighborhood notation used throughout the paper:

* ``social_out_neighbors(u)``  — :math:`\\Gamma_{s,out}(u)`
* ``social_in_neighbors(u)``   — :math:`\\Gamma_{s,in}(u)`
* ``social_neighbors(u)``      — :math:`\\Gamma_s(u)` (union over both link sets)
* ``attribute_neighbors(u)``   — :math:`\\Gamma_a(u)`

``SAN`` is the *mutable* backend the simulators, crawlers and generative
models build incrementally.  For measurement, :meth:`SAN.freeze` compacts the
network into a read-only :class:`repro.graph.frozen.FrozenSAN` whose
adjacency lives in CSR numpy arrays; the hot-path metrics (degrees,
reciprocity, joint degree, clustering, attribute metrics) detect the frozen
backend and switch to vectorized kernels.  Both backends satisfy the
read-only :class:`repro.graph.protocol.SANView` protocol, and
``FrozenSAN.thaw()`` converts back to a mutable ``SAN``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Set, Tuple

from .bipartite import AttributeInfo, BipartiteAttributeGraph
from .digraph import DiGraph
from .errors import InvalidNodeKindError, NodeNotFoundError

SocialNode = Hashable
AttributeNode = Hashable


class SAN:
    """A directed social graph augmented with undirected attribute links.

    Social nodes and attribute nodes live in disjoint namespaces; the library
    convention is integer ids for social nodes and strings of the form
    ``"type:value"`` (e.g. ``"employer:Google"``) for attribute nodes, but any
    hashable values are accepted as long as the two sets do not overlap.

    Examples
    --------
    >>> san = SAN()
    >>> san.add_social_edge(1, 2)
    True
    >>> san.add_attribute_edge(1, "employer:Google", attr_type="employer")
    True
    >>> san.add_attribute_edge(2, "employer:Google", attr_type="employer")
    True
    >>> sorted(san.common_attributes(1, 2))
    ['employer:Google']
    """

    __slots__ = ("social", "attributes", "__weakref__")

    def __init__(self) -> None:
        self.social = DiGraph()
        self.attributes = BipartiteAttributeGraph()

    def version(self) -> int:
        """Mutation counter over both layers (see :meth:`DiGraph.version`)."""
        return self.social.version() + self.attributes.version()

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def add_social_node(self, node: SocialNode) -> None:
        """Add a social node to both layers (idempotent)."""
        if self.attributes.has_attribute_node(node):
            raise InvalidNodeKindError(node, "social")
        self.social.add_node(node)
        self.attributes.add_social_node(node)

    def add_attribute_node(
        self, node: AttributeNode, attr_type: str = "generic", value: str | None = None
    ) -> None:
        """Register an attribute node with its type metadata (idempotent)."""
        if self.social.has_node(node):
            raise InvalidNodeKindError(node, "attribute")
        self.attributes.add_attribute_node(node, attr_type=attr_type, value=value)

    def is_social_node(self, node: Hashable) -> bool:
        return self.social.has_node(node)

    def is_attribute_node(self, node: Hashable) -> bool:
        return self.attributes.has_attribute_node(node)

    def social_nodes(self) -> Iterator[SocialNode]:
        return self.social.nodes()

    def attribute_nodes(self) -> Iterator[AttributeNode]:
        return self.attributes.attribute_nodes()

    def number_of_social_nodes(self) -> int:
        return self.social.number_of_nodes()

    def number_of_attribute_nodes(self) -> int:
        return self.attributes.number_of_attribute_nodes()

    # ------------------------------------------------------------------
    # Edge management
    # ------------------------------------------------------------------
    def add_social_edge(self, source: SocialNode, target: SocialNode) -> bool:
        """Add the directed social link ``source -> target``."""
        self.add_social_node(source)
        self.add_social_node(target)
        return self.social.add_edge(source, target)

    def add_attribute_edge(
        self,
        social: SocialNode,
        attribute: AttributeNode,
        attr_type: str = "generic",
        value: str | None = None,
    ) -> bool:
        """Add the undirected attribute link ``(social, attribute)``."""
        self.add_social_node(social)
        self.add_attribute_node(attribute, attr_type=attr_type, value=value)
        return self.attributes.add_link(social, attribute)

    def remove_social_edge(self, source: SocialNode, target: SocialNode) -> None:
        """Remove the directed social link ``source -> target`` (churn)."""
        self.social.remove_edge(source, target)

    def remove_attribute_edge(self, social: SocialNode, attribute: AttributeNode) -> None:
        """Remove the attribute link ``(social, attribute)`` (churn).

        The attribute node itself stays, even when its last member leaves —
        matching the append-only node pools of the frozen snapshot views.
        """
        self.attributes.remove_link(social, attribute)

    def has_social_edge(self, source: SocialNode, target: SocialNode) -> bool:
        return self.social.has_edge(source, target)

    def has_attribute_edge(self, social: SocialNode, attribute: AttributeNode) -> bool:
        return self.attributes.has_link(social, attribute)

    def social_edges(self) -> Iterator[Tuple[SocialNode, SocialNode]]:
        return self.social.edges()

    def attribute_edges(self) -> Iterator[Tuple[SocialNode, AttributeNode]]:
        return self.attributes.links()

    def number_of_social_edges(self) -> int:
        return self.social.number_of_edges()

    def number_of_attribute_edges(self) -> int:
        return self.attributes.number_of_links()

    # ------------------------------------------------------------------
    # Neighborhoods (paper notation)
    # ------------------------------------------------------------------
    def social_out_neighbors(self, node: SocialNode) -> Set[SocialNode]:
        """:math:`\\Gamma_{s,out}(u)`."""
        return self.social.successors(node)

    def social_in_neighbors(self, node: SocialNode) -> Set[SocialNode]:
        """:math:`\\Gamma_{s,in}(u)`."""
        return self.social.predecessors(node)

    def social_neighbors(self, node: Hashable) -> Set[SocialNode]:
        """:math:`\\Gamma_s(u)` — social neighbors through either layer.

        For a social node this is the union of its in- and out-neighbors.
        For an attribute node it is the set of users holding the attribute.
        """
        if self.social.has_node(node):
            return self.social.neighbors(node)
        if self.attributes.has_attribute_node(node):
            return set(self.attributes.members_of(node))
        raise NodeNotFoundError(node)

    def attribute_neighbors(self, node: SocialNode) -> Set[AttributeNode]:
        """:math:`\\Gamma_a(u)` — attributes held by a social node."""
        return self.attributes.attributes_of(node)

    def common_attributes(
        self, first: SocialNode, second: SocialNode
    ) -> Set[AttributeNode]:
        """Attributes shared by two social nodes (``a(u, v)`` in the paper)."""
        return self.attributes.common_attributes(first, second)

    def common_social_neighbors(
        self, first: SocialNode, second: SocialNode
    ) -> Set[SocialNode]:
        """Social neighbors (undirected view) shared by two social nodes."""
        return self.social.neighbors(first) & self.social.neighbors(second)

    # ------------------------------------------------------------------
    # Degrees
    # ------------------------------------------------------------------
    def social_out_degree(self, node: SocialNode) -> int:
        return self.social.out_degree(node)

    def social_in_degree(self, node: SocialNode) -> int:
        return self.social.in_degree(node)

    def attribute_degree(self, node: SocialNode) -> int:
        """Number of attributes declared by a social node."""
        return self.attributes.attribute_degree(node)

    def attribute_social_degree(self, attribute: AttributeNode) -> int:
        """Number of social nodes holding ``attribute``."""
        return self.attributes.social_degree(attribute)

    def attribute_type(self, attribute: AttributeNode) -> str:
        return self.attributes.attribute_type(attribute)

    def attribute_info(self, attribute: AttributeNode) -> AttributeInfo:
        return self.attributes.attribute_info(attribute)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def densities(self) -> Tuple[float, float]:
        """Return ``(social_density, attribute_density)``: |Es|/|Vs| and |Ea|/|Va|."""
        social_nodes = self.number_of_social_nodes()
        attribute_nodes = self.number_of_attribute_nodes()
        social_density = (
            self.number_of_social_edges() / social_nodes if social_nodes else 0.0
        )
        attribute_density = (
            self.number_of_attribute_edges() / attribute_nodes
            if attribute_nodes
            else 0.0
        )
        return social_density, attribute_density

    def social_subgraph(self, nodes: Iterable[SocialNode]) -> "SAN":
        """Induced SAN on a subset of social nodes.

        Attribute nodes are kept only if at least one retained social node
        still links to them.
        """
        keep = {node for node in nodes if self.social.has_node(node)}
        sub = SAN()
        for node in keep:
            sub.add_social_node(node)
        for source in keep:
            for target in self.social.successors(source):
                if target in keep:
                    sub.add_social_edge(source, target)
        for node in keep:
            for attribute in self.attributes.attributes_of(node):
                info = self.attributes.attribute_info(attribute)
                sub.add_attribute_edge(
                    node, attribute, attr_type=info.attr_type, value=info.value
                )
        return sub

    def copy(self) -> "SAN":
        clone = SAN()
        clone.social = self.social.copy()
        clone.attributes = self.attributes.copy()
        return clone

    def freeze(self) -> "FrozenSAN":
        """Compact this SAN into a read-only, CSR-backed snapshot.

        The returned :class:`repro.graph.frozen.FrozenSAN` shares one compact
        social-id space across the social and attribute layers, answers the
        whole read-only :class:`repro.graph.protocol.SANView` surface, and is
        the backend on which the metrics layer runs its vectorized numpy
        kernels.  Subsequent mutation of ``self`` does not affect the
        snapshot; use ``thaw()`` on the result to get a mutable copy back.

        Examples
        --------
        >>> san = SAN()
        >>> san.add_social_edge(1, 2)
        True
        >>> frozen = san.freeze()
        >>> frozen.has_social_edge(1, 2)
        True
        >>> frozen.thaw().summary() == san.summary()
        True
        """
        from .frozen import FrozenSAN

        return FrozenSAN.from_san(self)

    def summary(self) -> Dict[str, float]:
        """Compact size summary used by the evolution drivers and reports."""
        social_density, attribute_density = self.densities()
        return {
            "social_nodes": self.number_of_social_nodes(),
            "attribute_nodes": self.number_of_attribute_nodes(),
            "social_edges": self.number_of_social_edges(),
            "attribute_edges": self.number_of_attribute_edges(),
            "social_density": social_density,
            "attribute_density": attribute_density,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SAN(social_nodes={self.number_of_social_nodes()}, "
            f"attribute_nodes={self.number_of_attribute_nodes()}, "
            f"social_edges={self.number_of_social_edges()}, "
            f"attribute_edges={self.number_of_attribute_edges()})"
        )
