"""Persistence of SANs to simple text formats.

Two formats are supported:

* **TSV pair**: a social edge file with one ``source<TAB>target`` line per
  directed link plus an attribute file with ``social<TAB>attr_type<TAB>value``
  lines.  This mirrors the format of publicly released Google+ crawls.
* **JSON**: one self-contained document, convenient for small fixtures.

Both the mutable :class:`~repro.graph.san.SAN` and the frozen
:class:`~repro.graph.frozen.FrozenSAN` backend can be saved (the writers only
touch the shared read-only surface), and both loaders accept ``frozen=True``
to return the loaded network already compacted to CSR form — so a frozen SAN
round-trips through disk without an intermediate manual ``freeze()`` call.
"""

from __future__ import annotations

import json
from array import array
from pathlib import Path
from typing import TYPE_CHECKING, Tuple, Union

import numpy as np

from .bipartite import AttributeInfo
from .builders import attribute_node_id
from .errors import InvalidNodeKindError, SerializationError
from .san import SAN

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .frozen import FrozenSAN

PathLike = Union[str, Path]
SANLike = Union[SAN, "FrozenSAN"]


def save_san_tsv(
    san: SANLike, social_path: PathLike, attribute_path: PathLike
) -> None:
    """Write ``san`` (mutable or frozen) to a pair of TSV files."""
    social_path = Path(social_path)
    attribute_path = Path(attribute_path)
    with social_path.open("w", encoding="utf-8") as handle:
        for source, target in sorted(san.social_edges(), key=_edge_sort_key):
            handle.write(f"{source}\t{target}\n")
    with attribute_path.open("w", encoding="utf-8") as handle:
        for social, attribute in sorted(san.attribute_edges(), key=_edge_sort_key):
            info = san.attribute_info(attribute)
            handle.write(f"{social}\t{info.attr_type}\t{info.value}\n")


def load_san_tsv(
    social_path: PathLike, attribute_path: PathLike, frozen: bool = False
) -> SANLike:
    """Load a SAN from the TSV pair written by :func:`save_san_tsv`.

    Social node ids are parsed back to integers when possible so a round trip
    through disk preserves the library's integer-id convention.  With
    ``frozen=True`` the result is returned as a read-only CSR-backed
    :class:`~repro.graph.frozen.FrozenSAN`, built by streaming the TSV
    straight into compact-id edge arrays — the mutable dict-of-sets
    intermediate is only constructed when mutability is actually requested.
    """
    if frozen:
        from .columnar import maybe_spill

        return maybe_spill(_stream_frozen_san_tsv(Path(social_path), Path(attribute_path)))
    san = SAN()
    social_path = Path(social_path)
    attribute_path = Path(attribute_path)
    with social_path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 2:
                raise SerializationError(
                    f"{social_path}:{line_number}: expected 2 fields, got {len(parts)}"
                )
            san.add_social_edge(_parse_node(parts[0]), _parse_node(parts[1]))
    with attribute_path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise SerializationError(
                    f"{attribute_path}:{line_number}: expected 3 fields, got {len(parts)}"
                )
            social, attr_type, value = parts
            san.add_attribute_edge(
                _parse_node(social),
                attribute_node_id(attr_type, value),
                attr_type=attr_type,
                value=value,
            )
    return san


def _dedup_edge_arrays(
    src: np.ndarray, dst: np.ndarray, dst_space: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Drop duplicate ``(src, dst)`` pairs; output order is irrelevant because
    the CSR builder re-sorts every row."""
    if src.size == 0:
        return src, dst
    stride = max(dst_space, 1)
    keys = np.unique(src * stride + dst)
    return keys // stride, keys % stride


def _stream_frozen_san_tsv(social_path: Path, attribute_path: Path) -> "FrozenSAN":
    """Stream a TSV pair directly into a :class:`FrozenSAN`.

    Produces the same network as ``load_san_tsv(..., frozen=False).freeze()``
    — identical node interning order (first appearance in file order),
    duplicate-edge collapsing, and first-seen-wins attribute metadata — but
    the adjacency only ever exists as growable int64 edge arrays that are
    packed into CSR form with vectorized sorts, never as Python dicts of
    sets.
    """
    from .frozen import (
        FrozenBipartiteAttributeGraph,
        FrozenDiGraph,
        FrozenSAN,
        csr_from_edge_arrays,
    )

    social_index: dict = {}
    social_labels: list = []
    attr_index: dict = {}
    attr_labels: list = []
    attr_info: list = []

    def intern_social(label) -> int:
        i = social_index.get(label)
        if i is None:
            if label in attr_index:
                raise InvalidNodeKindError(label, "social")
            i = len(social_labels)
            social_index[label] = i
            social_labels.append(label)
        return i

    def intern_attr(label, attr_type: str, value: str) -> int:
        i = attr_index.get(label)
        if i is None:
            if label in social_index:
                raise InvalidNodeKindError(label, "attribute")
            i = len(attr_labels)
            attr_index[label] = i
            attr_labels.append(label)
            attr_info.append(AttributeInfo(attr_type=attr_type, value=value))
        return i

    social_src = array("q")
    social_dst = array("q")
    with social_path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 2:
                raise SerializationError(
                    f"{social_path}:{line_number}: expected 2 fields, got {len(parts)}"
                )
            social_src.append(intern_social(_parse_node(parts[0])))
            social_dst.append(intern_social(_parse_node(parts[1])))

    link_social = array("q")
    link_attr = array("q")
    with attribute_path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise SerializationError(
                    f"{attribute_path}:{line_number}: expected 3 fields, got {len(parts)}"
                )
            social, attr_type, value = parts
            link_social.append(intern_social(_parse_node(social)))
            link_attr.append(
                intern_attr(attribute_node_id(attr_type, value), attr_type, value)
            )

    num_social = len(social_labels)
    num_attrs = len(attr_labels)
    src, dst = _dedup_edge_arrays(
        np.frombuffer(social_src, dtype=np.int64),
        np.frombuffer(social_dst, dtype=np.int64),
        num_social,
    )
    ls, la = _dedup_edge_arrays(
        np.frombuffer(link_social, dtype=np.int64),
        np.frombuffer(link_attr, dtype=np.int64),
        num_attrs,
    )

    out_indptr, out_indices = csr_from_edge_arrays(src, dst, num_social)
    in_indptr, in_indices = csr_from_edge_arrays(dst, src, num_social)
    social = FrozenDiGraph(
        social_labels, out_indptr, out_indices, in_indptr, in_indices,
        index=social_index,
    )
    sa_indptr, sa_indices = csr_from_edge_arrays(ls, la, num_social)
    as_indptr, as_indices = csr_from_edge_arrays(la, ls, num_attrs)
    attributes = FrozenBipartiteAttributeGraph(
        social.labels(),
        social_index,
        attr_labels,
        attr_info,
        sa_indptr,
        sa_indices,
        as_indptr,
        as_indices,
        attr_index=attr_index,
    )
    return FrozenSAN(social, attributes)


def save_san_json(san: SANLike, path: PathLike) -> None:
    """Write ``san`` (mutable or frozen) to a single JSON document."""
    document = {
        "social_nodes": [_node_to_json(node) for node in san.social_nodes()],
        "social_edges": [
            [_node_to_json(source), _node_to_json(target)]
            for source, target in san.social_edges()
        ],
        "attribute_edges": [
            {
                "social": _node_to_json(social),
                "attribute": attribute,
                "type": san.attribute_info(attribute).attr_type,
                "value": san.attribute_info(attribute).value,
            }
            for social, attribute in san.attribute_edges()
        ],
    }
    Path(path).write_text(json.dumps(document, indent=2), encoding="utf-8")


def load_san_json(path: PathLike, frozen: bool = False) -> SANLike:
    """Load a SAN from the JSON document written by :func:`save_san_json`.

    With ``frozen=True`` the result is returned as a read-only CSR-backed
    :class:`~repro.graph.frozen.FrozenSAN`.
    """
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid SAN JSON in {path}: {exc}") from exc
    san = SAN()
    for node in document.get("social_nodes", []):
        san.add_social_node(node)
    for source, target in document.get("social_edges", []):
        san.add_social_edge(source, target)
    for record in document.get("attribute_edges", []):
        san.add_attribute_edge(
            record["social"],
            record["attribute"],
            attr_type=record.get("type", "generic"),
            value=record.get("value"),
        )
    if frozen:
        from .columnar import maybe_spill

        return maybe_spill(san.freeze())
    return san


def _parse_node(token: str):
    """Interpret a TSV token as an int when possible, otherwise a string."""
    try:
        return int(token)
    except ValueError:
        return token


def _node_to_json(node):
    """JSON only supports a subset of hashables; stringify anything exotic."""
    if isinstance(node, (int, float, str, bool)) or node is None:
        return node
    return str(node)


def _edge_sort_key(edge):
    return tuple(str(part) for part in edge)
