"""Persistence of SANs to simple text formats.

Two formats are supported:

* **TSV pair**: a social edge file with one ``source<TAB>target`` line per
  directed link plus an attribute file with ``social<TAB>attr_type<TAB>value``
  lines.  This mirrors the format of publicly released Google+ crawls.
* **JSON**: one self-contained document, convenient for small fixtures.

Both the mutable :class:`~repro.graph.san.SAN` and the frozen
:class:`~repro.graph.frozen.FrozenSAN` backend can be saved (the writers only
touch the shared read-only surface), and both loaders accept ``frozen=True``
to return the loaded network already compacted to CSR form — so a frozen SAN
round-trips through disk without an intermediate manual ``freeze()`` call.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Union

from .builders import attribute_node_id
from .errors import SerializationError
from .san import SAN

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .frozen import FrozenSAN

PathLike = Union[str, Path]
SANLike = Union[SAN, "FrozenSAN"]


def save_san_tsv(
    san: SANLike, social_path: PathLike, attribute_path: PathLike
) -> None:
    """Write ``san`` (mutable or frozen) to a pair of TSV files."""
    social_path = Path(social_path)
    attribute_path = Path(attribute_path)
    with social_path.open("w", encoding="utf-8") as handle:
        for source, target in sorted(san.social_edges(), key=_edge_sort_key):
            handle.write(f"{source}\t{target}\n")
    with attribute_path.open("w", encoding="utf-8") as handle:
        for social, attribute in sorted(san.attribute_edges(), key=_edge_sort_key):
            info = san.attribute_info(attribute)
            handle.write(f"{social}\t{info.attr_type}\t{info.value}\n")


def load_san_tsv(
    social_path: PathLike, attribute_path: PathLike, frozen: bool = False
) -> SANLike:
    """Load a SAN from the TSV pair written by :func:`save_san_tsv`.

    Social node ids are parsed back to integers when possible so a round trip
    through disk preserves the library's integer-id convention.  With
    ``frozen=True`` the result is returned as a read-only CSR-backed
    :class:`~repro.graph.frozen.FrozenSAN`.
    """
    san = SAN()
    social_path = Path(social_path)
    attribute_path = Path(attribute_path)
    with social_path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 2:
                raise SerializationError(
                    f"{social_path}:{line_number}: expected 2 fields, got {len(parts)}"
                )
            san.add_social_edge(_parse_node(parts[0]), _parse_node(parts[1]))
    with attribute_path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise SerializationError(
                    f"{attribute_path}:{line_number}: expected 3 fields, got {len(parts)}"
                )
            social, attr_type, value = parts
            san.add_attribute_edge(
                _parse_node(social),
                attribute_node_id(attr_type, value),
                attr_type=attr_type,
                value=value,
            )
    return san.freeze() if frozen else san


def save_san_json(san: SANLike, path: PathLike) -> None:
    """Write ``san`` (mutable or frozen) to a single JSON document."""
    document = {
        "social_nodes": [_node_to_json(node) for node in san.social_nodes()],
        "social_edges": [
            [_node_to_json(source), _node_to_json(target)]
            for source, target in san.social_edges()
        ],
        "attribute_edges": [
            {
                "social": _node_to_json(social),
                "attribute": attribute,
                "type": san.attribute_info(attribute).attr_type,
                "value": san.attribute_info(attribute).value,
            }
            for social, attribute in san.attribute_edges()
        ],
    }
    Path(path).write_text(json.dumps(document, indent=2), encoding="utf-8")


def load_san_json(path: PathLike, frozen: bool = False) -> SANLike:
    """Load a SAN from the JSON document written by :func:`save_san_json`.

    With ``frozen=True`` the result is returned as a read-only CSR-backed
    :class:`~repro.graph.frozen.FrozenSAN`.
    """
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid SAN JSON in {path}: {exc}") from exc
    san = SAN()
    for node in document.get("social_nodes", []):
        san.add_social_node(node)
    for source, target in document.get("social_edges", []):
        san.add_social_edge(source, target)
    for record in document.get("attribute_edges", []):
        san.add_attribute_edge(
            record["social"],
            record["attribute"],
            attr_type=record.get("type", "generic"),
            value=record.get("value"),
        )
    return san.freeze() if frozen else san


def _parse_node(token: str):
    """Interpret a TSV token as an int when possible, otherwise a string."""
    try:
        return int(token)
    except ValueError:
        return token


def _node_to_json(node):
    """JSON only supports a subset of hashables; stringify anything exotic."""
    if isinstance(node, (int, float, str, bool)) or node is None:
        return node
    return str(node)


def _edge_sort_key(edge):
    return tuple(str(part) for part in edge)
