"""Helpers for constructing SANs from edge lists, profiles, and seed shapes."""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Sequence, Tuple

from .san import SAN

SocialEdge = Tuple[Hashable, Hashable]
AttributeRecord = Tuple[Hashable, str, str]


def attribute_node_id(attr_type: str, value: str) -> str:
    """Canonical attribute-node identifier: ``"<type>:<value>"``."""
    return f"{attr_type}:{value}"


def san_from_edge_lists(
    social_edges: Iterable[SocialEdge],
    attribute_records: Iterable[AttributeRecord] = (),
) -> SAN:
    """Build a SAN from a directed social edge list and attribute records.

    Parameters
    ----------
    social_edges:
        Iterable of ``(source, target)`` directed social links.
    attribute_records:
        Iterable of ``(social_node, attr_type, value)`` triples; the attribute
        node id is derived with :func:`attribute_node_id`.
    """
    san = SAN()
    for source, target in social_edges:
        san.add_social_edge(source, target)
    for social, attr_type, value in attribute_records:
        san.add_attribute_edge(
            social, attribute_node_id(attr_type, value), attr_type=attr_type, value=value
        )
    return san


def san_from_profiles(
    social_edges: Iterable[SocialEdge],
    profiles: Mapping[Hashable, Mapping[str, Sequence[str]]],
) -> SAN:
    """Build a SAN from an edge list plus per-user profile dictionaries.

    ``profiles`` maps a social node to ``{attr_type: [values, ...]}``, which is
    the natural shape of a crawled user profile (a user can declare several
    schools or employers).
    """
    records = []
    for social, profile in profiles.items():
        for attr_type, values in profile.items():
            for value in values:
                records.append((social, attr_type, value))
    san = san_from_edge_lists(social_edges, records)
    # Ensure users with a profile but no social edges still appear.
    for social in profiles:
        san.add_social_node(social)
    return san


def complete_seed_san(num_social: int = 5, num_attributes: int = 5) -> SAN:
    """The paper's initialization: a complete SAN with a few nodes of each kind.

    Every ordered pair of social nodes is connected in both directions and every
    social node holds every attribute.  Used to seed the generative model
    (Section 5.3, "Initialization").
    """
    san = SAN()
    social_nodes = list(range(num_social))
    attribute_nodes = [attribute_node_id("seed", str(i)) for i in range(num_attributes)]
    for node in social_nodes:
        san.add_social_node(node)
    for source in social_nodes:
        for target in social_nodes:
            if source != target:
                san.add_social_edge(source, target)
    for social in social_nodes:
        for index, attribute in enumerate(attribute_nodes):
            san.add_attribute_edge(
                social, attribute, attr_type="seed", value=str(index)
            )
    return san


def directed_graph_edges_from_undirected(
    undirected_edges: Iterable[SocialEdge],
) -> Iterable[SocialEdge]:
    """Expand undirected edges to both directed orientations.

    Used when adapting undirected baseline models (e.g. the original Zheleva
    et al. model) to the directed SAN setting.
    """
    for first, second in undirected_edges:
        yield (first, second)
        yield (second, first)


def merge_sans(base: SAN, other: SAN) -> SAN:
    """Union of two SANs (node/edge sets merged); neither input is modified."""
    merged = base.copy()
    for source, target in other.social_edges():
        merged.add_social_edge(source, target)
    for node in other.social_nodes():
        merged.add_social_node(node)
    for social, attribute in other.attribute_edges():
        info = other.attribute_info(attribute)
        merged.add_attribute_edge(
            social, attribute, attr_type=info.attr_type, value=info.value
        )
    return merged


def relabel_social_nodes(san: SAN, mapping: Dict[Hashable, Hashable]) -> SAN:
    """Return a copy of ``san`` with social node ids replaced via ``mapping``.

    Nodes absent from ``mapping`` keep their identity.  Attribute node ids are
    preserved.
    """
    relabeled = SAN()
    for node in san.social_nodes():
        relabeled.add_social_node(mapping.get(node, node))
    for source, target in san.social_edges():
        relabeled.add_social_edge(mapping.get(source, source), mapping.get(target, target))
    for social, attribute in san.attribute_edges():
        info = san.attribute_info(attribute)
        relabeled.add_attribute_edge(
            mapping.get(social, social),
            attribute,
            attr_type=info.attr_type,
            value=info.value,
        )
    return relabeled
