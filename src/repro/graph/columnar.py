"""Versioned binary columnar storage for frozen graphs.

This is the out-of-core backbone promised by ROADMAP item 1: a frozen graph
(:class:`~repro.graph.frozen.FrozenSAN` or
:class:`~repro.graph.frozen.FrozenDiGraph`) is laid out on disk as a small
self-describing header followed by 64-byte-aligned little-endian array
sections — one per CSR array, label table, and attribute-membership column —
so :func:`open_columnar` can hand every kernel an ``np.memmap`` view of the
file instead of re-parsing text into RAM.

File layout (version 1)::

    offset  0   magic            8 bytes  b"RPROCOL\\x00"
    offset  8   format version   u32 LE
    offset 12   byte-order mark  u32      0x01020304 stored little-endian
    offset 16   header length    u64 LE   (JSON bytes, directly after)
    offset 24   data start       u64 LE   (64-byte aligned)
    offset 32   header JSON      utf-8    {"kind", "sections", "meta"}
    data_start  sections         each 64-byte aligned, little-endian

``sections`` maps section name to ``[relative_offset, shape, dtype]`` with
offsets relative to ``data_start``, so the header can be serialized before
the absolute layout is known.  Node labels are stored in one of three
encodings chosen by the writer: ``identity`` (labels are exactly ``0..n-1``;
no section at all — the reader substitutes
:class:`~repro.graph.frozen.IdentityLabels`), ``int64`` (a plain array
section), or ``table`` (an interned string table: per-label kind codes, a
``uint8`` blob, and an offsets array).  Attribute values use the same table
encoding; attribute types are interned into ``meta["attr_type_names"]`` with
one small-int code per attribute node.

Version policy: the reader accepts files with ``version <= FORMAT_VERSION``
and raises :class:`~repro.graph.errors.ColumnarVersionError` for anything
newer; any layout change that an old reader would misinterpret must bump
``FORMAT_VERSION``.  All multi-byte values are little-endian on disk; the
byte-order mark exists so a file written without conversion on a big-endian
machine fails loudly (:class:`~repro.graph.errors.ColumnarEndiannessError`)
instead of decoding garbage.

The arrays returned by :func:`open_columnar` are bit-identical to the ones
the in-RAM freeze produces, so every engine kernel, the parallel tier's
``SharedCSR`` export, and the sanitizer's parity checks work unchanged on an
mmap-backed graph.

``REPRO_MMAP=1`` (see :func:`mmap_forced` / :func:`maybe_spill`) reroutes the
frozen-graph producers through a spill-to-columnar round trip, forcing every
frozen graph in the process to be mmap-backed — the tier-1 CI leg uses this
to prove the whole suite runs out-of-core.
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import weakref
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from .bipartite import AttributeInfo
from .digraph import DiGraph
from .errors import (
    ColumnarEndiannessError,
    ColumnarFormatError,
    ColumnarMagicError,
    ColumnarTruncatedError,
    ColumnarVersionError,
)
from .frozen import (
    FrozenBipartiteAttributeGraph,
    FrozenDiGraph,
    FrozenSAN,
    IdentityLabels,
    identity_labels_if_trivial,
)
from .san import SAN

MAGIC = b"RPROCOL\x00"
FORMAT_VERSION = 1
SECTION_ALIGNMENT = 64
MMAP_ENV = "REPRO_MMAP"

_PREAMBLE = struct.Struct("<8sIIQQ")  # magic, version, byte-order mark, header len, data start
_BOM_LITTLE = struct.pack("<I", 0x01020304)
_BOM_BIG = struct.pack(">I", 0x01020304)

# Kind codes of the interned object table (labels / attribute values).
_KIND_INT = 0
_KIND_STR = 1
_KIND_FLOAT = 2
_KIND_BOOL = 3
_KIND_NONE = 4

GraphLike = Union[FrozenSAN, FrozenDiGraph, SAN, DiGraph]


def _align(offset: int) -> int:
    remainder = offset % SECTION_ALIGNMENT
    return offset if remainder == 0 else offset + (SECTION_ALIGNMENT - remainder)


# ----------------------------------------------------------------------
# Interned object table (labels and attribute values)
# ----------------------------------------------------------------------
def _encode_object_table(
    values: List[object],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pack arbitrary scalar labels into ``(kinds, offsets, blob)`` arrays."""
    kinds = np.empty(len(values), dtype=np.uint8)
    offsets = np.empty(len(values) + 1, dtype=np.int64)
    offsets[0] = 0
    blob = bytearray()
    for i, value in enumerate(values):
        if value is None:
            kind, data = _KIND_NONE, b""
        elif type(value) is bool:
            kind, data = _KIND_BOOL, (b"1" if value else b"0")
        elif type(value) is int:
            kind, data = _KIND_INT, str(value).encode("ascii")
        elif type(value) is float:
            kind, data = _KIND_FLOAT, repr(value).encode("ascii")
        elif isinstance(value, str):
            kind, data = _KIND_STR, value.encode("utf-8")
        else:
            raise TypeError(
                f"label/value {value!r} of type {type(value).__name__} cannot "
                f"be stored in a columnar file (supported: int, str, float, "
                f"bool, None)"
            )
        kinds[i] = kind
        blob += data
        offsets[i + 1] = len(blob)
    return kinds, offsets, np.frombuffer(bytes(blob), dtype=np.uint8)


def _decode_object_table(
    path: object, kinds: np.ndarray, offsets: np.ndarray, blob: np.ndarray
) -> List[object]:
    # Bulk-materialize the three sections up front: per-element indexing on
    # an np.memmap is a syscall-free but slow scalar read, and this loop
    # touches every offset twice.
    raw = blob.tobytes()
    bounds = offsets.tolist()
    out: List[object] = []
    for i, kind in enumerate(kinds.tolist()):
        data = raw[bounds[i] : bounds[i + 1]]
        if kind == _KIND_INT:
            out.append(int(data))
        elif kind == _KIND_STR:
            out.append(data.decode("utf-8"))
        elif kind == _KIND_FLOAT:
            out.append(float(data))
        elif kind == _KIND_BOOL:
            out.append(data == b"1")
        elif kind == _KIND_NONE:
            out.append(None)
        else:
            raise ColumnarFormatError(path, f"unknown object-table kind code {kind}")
    return out


def _label_sections(
    prefix: str, labels
) -> Tuple[str, Dict[str, np.ndarray]]:
    """Choose a label encoding; return ``(encoding, {section_name: array})``."""
    labels = identity_labels_if_trivial(labels)
    if isinstance(labels, IdentityLabels):
        return "identity", {}
    values = list(labels)
    if values and all(type(v) is int for v in values):
        return "int64", {f"{prefix}_i64": np.asarray(values, dtype=np.int64)}
    kinds, offsets, blob = _encode_object_table(values)
    return "table", {
        f"{prefix}_kinds": kinds,
        f"{prefix}_offsets": offsets,
        f"{prefix}_blob": blob,
    }


def _decode_labels(
    path: object,
    encoding: str,
    count: int,
    prefix: str,
    arrays: Dict[str, np.ndarray],
):
    if encoding == "identity":
        return IdentityLabels(count)
    if encoding == "int64":
        return arrays[f"{prefix}_i64"].tolist()
    if encoding == "table":
        return _decode_object_table(
            path,
            arrays[f"{prefix}_kinds"],
            arrays[f"{prefix}_offsets"],
            arrays[f"{prefix}_blob"],
        )
    raise ColumnarFormatError(path, f"unknown label encoding {encoding!r}")


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
def _collect_sections(
    graph: Union[FrozenSAN, FrozenDiGraph], extras: Optional[Dict[str, np.ndarray]]
) -> Tuple[str, Dict[str, np.ndarray], Dict[str, object]]:
    """Flatten ``graph`` into ``(kind, {section: array}, meta)``."""
    sections: Dict[str, np.ndarray] = {}
    meta: Dict[str, object] = {}
    if isinstance(graph, FrozenSAN):
        kind = "san"
        social = graph.social
        attrs = graph.attributes
        out_indptr, out_indices = social.out_csr()
        in_indptr, in_indices = social.in_csr()
        sa_indptr, sa_indices = attrs.social_to_attr_csr()
        as_indptr, as_indices = attrs.attr_to_social_csr()
        sections.update(
            {
                "social_out_indptr": out_indptr,
                "social_out_indices": out_indices,
                "social_in_indptr": in_indptr,
                "social_in_indices": in_indices,
                "sa_indptr": sa_indptr,
                "sa_indices": sa_indices,
                "as_indptr": as_indptr,
                "as_indices": as_indices,
            }
        )
        encoding, label_sections = _label_sections("social_labels", social.labels())
        sections.update(label_sections)
        meta["social_labels"] = {
            "encoding": encoding,
            "count": social.number_of_nodes(),
        }
        attr_labels = attrs.attribute_labels()
        encoding, label_sections = _label_sections("attr_labels", attr_labels)
        sections.update(label_sections)
        meta["attr_labels"] = {
            "encoding": encoding,
            "count": attrs.number_of_attribute_nodes(),
        }
        infos = [attrs.attribute_info(label) for label in attr_labels]
        type_names = sorted({info.attr_type for info in infos})
        code_of = {name: code for code, name in enumerate(type_names)}
        sections["attr_type_codes"] = np.fromiter(
            (code_of[info.attr_type] for info in infos),
            dtype=np.int32,
            count=len(infos),
        )
        kinds, offsets, blob = _encode_object_table([info.value for info in infos])
        sections.update(
            {
                "attr_value_kinds": kinds,
                "attr_value_offsets": offsets,
                "attr_value_blob": blob,
            }
        )
        meta["attr_type_names"] = type_names
        meta["counts"] = {
            "social_nodes": social.number_of_nodes(),
            "social_edges": social.number_of_edges(),
            "attribute_nodes": attrs.number_of_attribute_nodes(),
            "attribute_edges": attrs.number_of_links(),
        }
    elif isinstance(graph, FrozenDiGraph):
        kind = "digraph"
        out_indptr, out_indices = graph.out_csr()
        in_indptr, in_indices = graph.in_csr()
        sections.update(
            {
                "out_indptr": out_indptr,
                "out_indices": out_indices,
                "in_indptr": in_indptr,
                "in_indices": in_indices,
            }
        )
        encoding, label_sections = _label_sections("labels", graph.labels())
        sections.update(label_sections)
        meta["labels"] = {"encoding": encoding, "count": graph.number_of_nodes()}
        meta["counts"] = {
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
        }
    else:  # pragma: no cover - guarded by save_columnar
        raise TypeError(f"cannot serialize {type(graph).__name__}")
    if extras:
        extra_names = []
        for name, array in extras.items():
            if ":" in name:
                raise ValueError(f"extra section name {name!r} may not contain ':'")
            sections[f"extra:{name}"] = np.asarray(array)
            extra_names.append(name)
        meta["extras"] = extra_names
    return kind, sections, meta


def save_columnar(
    graph: GraphLike,
    path,
    extras: Optional[Dict[str, np.ndarray]] = None,
) -> None:
    """Write ``graph`` to ``path`` in the versioned columnar format.

    Mutable graphs are frozen first.  ``extras`` attaches named auxiliary
    arrays (edge timestamps, day columns, …) as additional aligned sections
    retrievable via :func:`load_columnar_extras`.  The write is atomic: data
    goes to a sibling temp file that is ``os.replace``d into place, so a
    crashed writer never leaves a half-written file under the final name.
    """
    if isinstance(graph, (SAN, DiGraph)):
        graph = graph.freeze()
    if not isinstance(graph, (FrozenSAN, FrozenDiGraph)):
        raise TypeError(
            f"save_columnar expects a (Frozen)SAN or (Frozen)DiGraph, "
            f"got {type(graph).__name__}"
        )
    kind, sections, meta = _collect_sections(graph, extras)

    layout: Dict[str, List[object]] = {}
    cursor = 0
    prepared: List[Tuple[str, np.ndarray]] = []
    for name, array in sections.items():
        array = np.ascontiguousarray(array)
        le_dtype = array.dtype.newbyteorder("<")
        array = array.astype(le_dtype, copy=False)
        cursor = _align(cursor)
        layout[name] = [cursor, list(array.shape), le_dtype.str]
        cursor += array.nbytes
        prepared.append((name, array))
    header = json.dumps(
        {"kind": kind, "sections": layout, "meta": meta},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    data_start = _align(_PREAMBLE.size + len(header))

    path = os.fspath(path)
    tmp_path = f"{path}.tmp-{os.getpid()}"
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(
                _PREAMBLE.pack(
                    MAGIC,
                    FORMAT_VERSION,
                    struct.unpack("<I", _BOM_LITTLE)[0],
                    len(header),
                    data_start,
                )
            )
            handle.write(header)
            for name, array in prepared:
                target = data_start + layout[name][0]
                handle.write(b"\x00" * (target - handle.tell()))
                array.tofile(handle)
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------
def _read_header(path) -> Dict[str, object]:
    path = os.fspath(path)
    file_size = os.path.getsize(path)
    with open(path, "rb") as handle:
        preamble = handle.read(_PREAMBLE.size)
        if len(preamble) < _PREAMBLE.size:
            raise ColumnarTruncatedError(
                path, f"file is {len(preamble)} bytes, shorter than the preamble"
            )
        magic = preamble[:8]
        if magic != MAGIC:
            raise ColumnarMagicError(path, f"bad magic {magic!r} (expected {MAGIC!r})")
        bom = preamble[12:16]
        if bom != _BOM_LITTLE:
            if bom == _BOM_BIG:
                raise ColumnarEndiannessError(
                    path, "byte-order mark is big-endian; file was written "
                    "without little-endian conversion"
                )
            raise ColumnarFormatError(path, f"unrecognized byte-order mark {bom!r}")
        version = struct.unpack("<I", preamble[8:12])[0]
        if version < 1 or version > FORMAT_VERSION:
            raise ColumnarVersionError(path, version, FORMAT_VERSION)
        header_len, data_start = struct.unpack("<QQ", preamble[16:32])
        if file_size < _PREAMBLE.size + header_len:
            raise ColumnarTruncatedError(
                path, "file ends inside the header JSON"
            )
        raw_header = handle.read(header_len)
    try:
        header = json.loads(raw_header.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ColumnarFormatError(path, f"header JSON is invalid: {exc}") from exc
    if not isinstance(header, dict) or "kind" not in header or "sections" not in header:
        raise ColumnarFormatError(path, "header JSON is missing kind/sections")
    header["data_start"] = data_start
    header["version"] = version
    header["file_size"] = file_size
    for name, (rel_offset, shape, dtype_str) in header["sections"].items():
        nbytes = int(np.dtype(dtype_str).itemsize) * int(np.prod(shape, dtype=np.int64))
        if data_start + rel_offset + nbytes > file_size:
            raise ColumnarTruncatedError(
                path, f"section {name!r} extends past end of file"
            )
    return header


def _load_sections(
    path, header: Dict[str, object], mmap_mode: Optional[str]
) -> Dict[str, np.ndarray]:
    if mmap_mode not in (None, "r"):
        raise ValueError(f"mmap_mode must be 'r' or None, got {mmap_mode!r}")
    data_start = header["data_start"]
    arrays: Dict[str, np.ndarray] = {}
    if mmap_mode == "r":
        for name, (rel_offset, shape, dtype_str) in header["sections"].items():
            shape = tuple(shape)
            dtype = np.dtype(dtype_str)
            if int(np.prod(shape, dtype=np.int64)) == 0:
                arrays[name] = np.empty(shape, dtype=dtype)
            else:
                arrays[name] = np.memmap(
                    path, dtype=dtype, mode="r",
                    offset=data_start + rel_offset, shape=shape,
                )
        return arrays
    with open(path, "rb") as handle:
        for name, (rel_offset, shape, dtype_str) in header["sections"].items():
            shape = tuple(shape)
            dtype = np.dtype(dtype_str)
            count = int(np.prod(shape, dtype=np.int64))
            handle.seek(data_start + rel_offset)
            arrays[name] = np.fromfile(handle, dtype=dtype, count=count).reshape(shape)
    return arrays


def open_columnar(
    path, mmap_mode: Optional[str] = "r"
) -> Union[FrozenSAN, FrozenDiGraph]:
    """Open a columnar file as a frozen graph.

    With the default ``mmap_mode="r"`` every CSR array is a read-only
    ``np.memmap`` view of the file — opening is O(header + labels), not
    O(edges), and the kernel pages adjacency in on demand.  With
    ``mmap_mode=None`` the arrays are read fully into RAM (bit-identical
    either way).
    """
    path = os.fspath(path)
    header = _read_header(path)
    arrays = _load_sections(path, header, mmap_mode)
    meta = header.get("meta", {})
    kind = header["kind"]
    if kind == "san":
        social_spec = meta["social_labels"]
        social_labels = _decode_labels(
            path, social_spec["encoding"], social_spec["count"], "social_labels", arrays
        )
        social = FrozenDiGraph(
            social_labels,
            arrays["social_out_indptr"],
            arrays["social_out_indices"],
            arrays["social_in_indptr"],
            arrays["social_in_indices"],
        )
        attr_spec = meta["attr_labels"]
        attr_labels = _decode_labels(
            path, attr_spec["encoding"], attr_spec["count"], "attr_labels", arrays
        )
        type_names = meta["attr_type_names"]
        values = _decode_object_table(
            path,
            arrays["attr_value_kinds"],
            arrays["attr_value_offsets"],
            arrays["attr_value_blob"],
        )
        try:
            attr_info = [
                AttributeInfo(type_names[code], value)
                for code, value in zip(arrays["attr_type_codes"].tolist(), values)
            ]
        except IndexError:
            raise ColumnarFormatError(
                path, "attribute type code out of range"
            ) from None
        attributes = FrozenBipartiteAttributeGraph(
            social.labels(),
            social._index,
            attr_labels,
            attr_info,
            arrays["sa_indptr"],
            arrays["sa_indices"],
            arrays["as_indptr"],
            arrays["as_indices"],
        )
        return FrozenSAN(social, attributes)
    if kind == "digraph":
        label_spec = meta["labels"]
        labels = _decode_labels(
            path, label_spec["encoding"], label_spec["count"], "labels", arrays
        )
        return FrozenDiGraph(
            labels,
            arrays["out_indptr"],
            arrays["out_indices"],
            arrays["in_indptr"],
            arrays["in_indices"],
        )
    raise ColumnarFormatError(path, f"unknown graph kind {kind!r}")


def load_columnar_extras(
    path, mmap_mode: Optional[str] = "r"
) -> Dict[str, np.ndarray]:
    """Load the auxiliary arrays attached via ``save_columnar(extras=...)``."""
    path = os.fspath(path)
    header = _read_header(path)
    names = header.get("meta", {}).get("extras", [])
    sections = {
        f"extra:{name}": header["sections"][f"extra:{name}"] for name in names
    }
    trimmed = dict(header)
    trimmed["sections"] = sections
    arrays = _load_sections(path, trimmed, mmap_mode)
    return {name: arrays[f"extra:{name}"] for name in names}


def columnar_info(path) -> Dict[str, object]:
    """Validated header summary of a columnar file (for tooling and tests)."""
    header = _read_header(path)
    return {
        "kind": header["kind"],
        "version": header["version"],
        "file_size": header["file_size"],
        "data_start": header["data_start"],
        "sections": {
            name: {"offset": spec[0], "shape": spec[1], "dtype": spec[2]}
            for name, spec in header["sections"].items()
        },
        "meta": header.get("meta", {}),
    }


# ----------------------------------------------------------------------
# Spill helpers (the REPRO_MMAP escape hatch)
# ----------------------------------------------------------------------
def mmap_forced() -> bool:
    """Whether ``REPRO_MMAP`` requests mmap-backed frozen graphs.

    Read per call (same contract as :func:`repro.engine.deps.env_flag`) so
    tests can flip the environment without cache invalidation concerns.
    """
    return os.environ.get(MMAP_ENV, "").strip().lower() in {"1", "true", "yes", "on"}


def spill_to_mmap(
    graph: GraphLike, directory: Optional[str] = None
) -> Union[FrozenSAN, FrozenDiGraph]:
    """Round-trip ``graph`` through a columnar temp file, returning mmap views.

    On POSIX the temp file is unlinked immediately after opening — the open
    file descriptor keeps the pages readable, so spilled graphs need no
    cleanup bookkeeping and cannot leak named files.  Elsewhere the unlink is
    deferred to a ``weakref.finalize`` on the returned graph.
    """
    fd, tmp_path = tempfile.mkstemp(
        prefix="repro-columnar-", suffix=".col", dir=directory
    )
    os.close(fd)
    try:
        save_columnar(graph, tmp_path)
        reopened = open_columnar(tmp_path, mmap_mode="r")
    except BaseException:
        os.unlink(tmp_path)
        raise
    try:
        os.unlink(tmp_path)
    except OSError:  # pragma: no cover - non-POSIX fallback
        weakref.finalize(reopened, _unlink_quietly, tmp_path)
    return reopened


def _unlink_quietly(path: str) -> None:  # pragma: no cover - non-POSIX fallback
    try:
        os.unlink(path)
    except OSError:
        pass


def maybe_spill(graph: GraphLike) -> GraphLike:
    """Spill ``graph`` to an mmap-backed columnar temp file under ``REPRO_MMAP``.

    The identity function when the knob is off — producers wrap their return
    value in this so the whole pipeline can be forced out-of-core without
    touching call sites.
    """
    if mmap_forced() and isinstance(graph, (FrozenSAN, FrozenDiGraph)):
        return spill_to_mmap(graph)
    return graph


def is_mmap_backed(graph: Union[FrozenSAN, FrozenDiGraph]) -> bool:
    """Whether ``graph``'s primary adjacency array is an ``np.memmap`` view."""
    if isinstance(graph, FrozenSAN):
        graph = graph.social
    _, indices = graph.out_csr()
    return isinstance(indices, np.memmap)
