"""Undirected bipartite layer linking social nodes to attribute nodes.

In the paper's SAN formulation, attribute links :math:`E_a` are undirected
links between a social node ``u`` and an attribute node ``a`` meaning "user u
has attribute a".  Attribute nodes carry an *attribute type* (School, Major,
Employer, City in the Google+ dataset) and a value; the bipartite layer stores
both directions of the incidence so that the paper's attribute metrics
(attribute degree of social nodes, social degree of attribute nodes) are
constant-time lookups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, Set, Tuple

from .errors import NodeNotFoundError

SocialNode = Hashable
AttributeNode = Hashable


@dataclass(frozen=True)
class AttributeInfo:
    """Metadata describing an attribute node.

    Attributes
    ----------
    attr_type:
        The attribute category, e.g. ``"employer"`` or ``"city"``.
    value:
        The concrete attribute value, e.g. ``"Google Inc."``.
    """

    attr_type: str
    value: str


class BipartiteAttributeGraph:
    """Undirected bipartite graph between social nodes and attribute nodes."""

    __slots__ = (
        "_social_to_attrs",
        "_attr_to_socials",
        "_attr_info",
        "_num_links",
        "_version",
        "__weakref__",
    )

    def __init__(self) -> None:
        self._social_to_attrs: Dict[SocialNode, Set[AttributeNode]] = {}
        self._attr_to_socials: Dict[AttributeNode, Set[SocialNode]] = {}
        self._attr_info: Dict[AttributeNode, AttributeInfo] = {}
        self._num_links = 0
        self._version = 0

    def version(self) -> int:
        """Mutation counter: bumped by every state-changing call."""
        return self._version

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def add_social_node(self, node: SocialNode) -> None:
        if node not in self._social_to_attrs:
            self._social_to_attrs[node] = set()
            self._version += 1

    def add_attribute_node(
        self,
        node: AttributeNode,
        attr_type: str = "generic",
        value: str | None = None,
    ) -> None:
        if node not in self._attr_to_socials:
            self._attr_to_socials[node] = set()
            self._attr_info[node] = AttributeInfo(
                attr_type=attr_type, value=str(node) if value is None else value
            )
            self._version += 1

    def has_social_node(self, node: SocialNode) -> bool:
        return node in self._social_to_attrs

    def has_attribute_node(self, node: AttributeNode) -> bool:
        return node in self._attr_to_socials

    def social_nodes(self) -> Iterator[SocialNode]:
        return iter(self._social_to_attrs)

    def attribute_nodes(self) -> Iterator[AttributeNode]:
        return iter(self._attr_to_socials)

    def number_of_social_nodes(self) -> int:
        return len(self._social_to_attrs)

    def number_of_attribute_nodes(self) -> int:
        return len(self._attr_to_socials)

    def attribute_info(self, node: AttributeNode) -> AttributeInfo:
        try:
            return self._attr_info[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def attribute_type(self, node: AttributeNode) -> str:
        return self.attribute_info(node).attr_type

    def remove_social_node(self, node: SocialNode) -> None:
        """Remove a social node and its incident attribute links."""
        if node not in self._social_to_attrs:
            raise NodeNotFoundError(node)
        for attr in self._social_to_attrs[node]:
            self._attr_to_socials[attr].discard(node)
        self._num_links -= len(self._social_to_attrs[node])
        del self._social_to_attrs[node]
        self._version += 1

    # ------------------------------------------------------------------
    # Link management
    # ------------------------------------------------------------------
    def add_link(self, social: SocialNode, attribute: AttributeNode) -> bool:
        """Add the undirected attribute link ``(social, attribute)``.

        Both endpoints are created if missing (the attribute node with the
        ``"generic"`` type).  Returns ``True`` when the link is new.
        """
        self.add_social_node(social)
        self.add_attribute_node(attribute)
        if attribute in self._social_to_attrs[social]:
            return False
        self._social_to_attrs[social].add(attribute)
        self._attr_to_socials[attribute].add(social)
        self._num_links += 1
        self._version += 1
        return True

    def remove_link(self, social: SocialNode, attribute: AttributeNode) -> None:
        if (
            social not in self._social_to_attrs
            or attribute not in self._social_to_attrs[social]
        ):
            from .errors import EdgeNotFoundError

            raise EdgeNotFoundError(social, attribute)
        self._social_to_attrs[social].discard(attribute)
        self._attr_to_socials[attribute].discard(social)
        self._num_links -= 1
        self._version += 1

    def has_link(self, social: SocialNode, attribute: AttributeNode) -> bool:
        attrs = self._social_to_attrs.get(social)
        return attrs is not None and attribute in attrs

    def links(self) -> Iterator[Tuple[SocialNode, AttributeNode]]:
        for social, attrs in self._social_to_attrs.items():
            for attribute in attrs:
                yield (social, attribute)

    def number_of_links(self) -> int:
        return self._num_links

    # ------------------------------------------------------------------
    # Neighborhood accessors
    # ------------------------------------------------------------------
    def attributes_of(self, social: SocialNode) -> Set[AttributeNode]:
        """The paper's :math:`\\Gamma_a(u)`: attribute neighbors of a social node."""
        attrs = self._social_to_attrs.get(social)
        return attrs if attrs is not None else set()

    def members_of(self, attribute: AttributeNode) -> Set[SocialNode]:
        """Social neighbors of an attribute node (users holding the attribute)."""
        try:
            return self._attr_to_socials[attribute]
        except KeyError:
            raise NodeNotFoundError(attribute) from None

    def attribute_degree(self, social: SocialNode) -> int:
        """Number of attributes declared by ``social`` (attribute degree)."""
        return len(self.attributes_of(social))

    def social_degree(self, attribute: AttributeNode) -> int:
        """Number of users holding ``attribute`` (social degree of an attribute node)."""
        return len(self.members_of(attribute))

    def common_attributes(
        self, first: SocialNode, second: SocialNode
    ) -> Set[AttributeNode]:
        """Attributes shared by two social nodes (the paper's ``a(u, v)``)."""
        return self.attributes_of(first) & self.attributes_of(second)

    def attribute_nodes_of_type(self, attr_type: str) -> Iterator[AttributeNode]:
        for node, info in self._attr_info.items():
            if info.attr_type == attr_type:
                yield node

    def attribute_types(self) -> Set[str]:
        return {info.attr_type for info in self._attr_info.values()}

    # ------------------------------------------------------------------
    # Whole-graph helpers
    # ------------------------------------------------------------------
    def copy(self) -> "BipartiteAttributeGraph":
        clone = BipartiteAttributeGraph()
        clone._social_to_attrs = {
            node: set(attrs) for node, attrs in self._social_to_attrs.items()
        }
        clone._attr_to_socials = {
            node: set(socials) for node, socials in self._attr_to_socials.items()
        }
        clone._attr_info = dict(self._attr_info)
        clone._num_links = self._num_links
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BipartiteAttributeGraph(social={self.number_of_social_nodes()}, "
            f"attributes={self.number_of_attribute_nodes()}, "
            f"links={self.number_of_links()})"
        )
