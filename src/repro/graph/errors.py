"""Exception types raised by the graph substrate.

All graph-layer errors derive from :class:`GraphError` so callers can catch a
single base class when they do not care about the specific failure mode.
"""

from __future__ import annotations


class GraphError(Exception):
    """Base class for every error raised by :mod:`repro.graph`."""


class NodeNotFoundError(GraphError, KeyError):
    """A node referenced by an operation does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """An edge referenced by an operation does not exist in the graph."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"edge ({source!r}, {target!r}) is not in the graph")
        self.source = source
        self.target = target


class DuplicateNodeError(GraphError, ValueError):
    """A node was added twice where duplicates are not permitted."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} already exists")
        self.node = node


class InvalidNodeKindError(GraphError, TypeError):
    """A social-node operation received an attribute node, or vice versa."""

    def __init__(self, node: object, expected: str) -> None:
        super().__init__(f"node {node!r} is not a {expected} node")
        self.node = node
        self.expected = expected


class SerializationError(GraphError, ValueError):
    """A SAN file could not be parsed or written."""


class ColumnarFormatError(GraphError, ValueError):
    """A columnar graph file is malformed or cannot be interpreted.

    Base class for the named failure modes below so callers can catch one
    exception for "this file is not usable" while tests and the CLI can
    distinguish the specific cause.
    """

    def __init__(self, path: object, reason: str) -> None:
        super().__init__(f"{path}: {reason}")
        self.path = path
        self.reason = reason


class ColumnarMagicError(ColumnarFormatError):
    """The file does not start with the columnar magic bytes."""


class ColumnarVersionError(ColumnarFormatError):
    """The file's format version is not supported by this reader."""

    def __init__(self, path: object, found: int, supported: int) -> None:
        super().__init__(
            path,
            f"format version {found} is not supported (reader supports <= {supported})",
        )
        self.found = found
        self.supported = supported


class ColumnarTruncatedError(ColumnarFormatError):
    """The file is shorter than its header or declared sections require."""


class ColumnarEndiannessError(ColumnarFormatError):
    """The file's byte-order sentinel does not decode as little-endian."""


class FrozenGraphError(GraphError, TypeError):
    """A mutating operation was attempted on a frozen (read-only) graph."""

    def __init__(self, operation: str, type_name: str) -> None:
        super().__init__(
            f"{type_name} is immutable: {operation}() is not supported; "
            f"call thaw() to obtain a mutable copy first"
        )
        self.operation = operation
        self.type_name = type_name
