"""A directed graph tailored to social-network measurement workloads.

The class keeps both out-adjacency and in-adjacency as dictionaries of sets so
that the metrics used throughout the paper (reciprocity, in/out degree,
knn, triangle closure) are all O(1) or O(degree) operations.  Nodes may be any
hashable object; the library conventionally uses integers for social nodes.

``DiGraph`` is the *mutable* backend, optimised for incremental construction
(simulators, crawlers, generative models).  Once a graph stops changing, call
:meth:`DiGraph.freeze` to obtain a :class:`repro.graph.frozen.FrozenDiGraph`
— a read-only, CSR-array-backed snapshot of the same graph on which the
metrics layer runs vectorized numpy kernels.  Both backends satisfy the
read-only :class:`repro.graph.protocol.DiGraphView` protocol, so any code
written against that surface accepts either; ``FrozenDiGraph.thaw()``
converts back when mutation is needed again.

Only the features required by the reproduction are implemented — this is a
purpose-built substrate, not a general graph library.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Set, Tuple

from .errors import NodeNotFoundError

Node = Hashable
Edge = Tuple[Node, Node]


class DiGraph:
    """Directed graph with O(1) edge queries and both adjacency directions.

    Examples
    --------
    >>> g = DiGraph()
    >>> g.add_edge(1, 2)
    True
    >>> g.add_edge(2, 1)
    True
    >>> g.has_edge(1, 2), g.is_reciprocal(1, 2)
    (True, True)
    >>> g.out_degree(1), g.in_degree(1)
    (1, 1)
    """

    __slots__ = ("_succ", "_pred", "_num_edges", "_version", "__weakref__")

    def __init__(self, edges: Iterable[Edge] | None = None) -> None:
        self._succ: Dict[Node, Set[Node]] = {}
        self._pred: Dict[Node, Set[Node]] = {}
        self._num_edges = 0
        self._version = 0
        if edges is not None:
            for source, target in edges:
                self.add_edge(source, target)

    def version(self) -> int:
        """Mutation counter: bumped by every state-changing call.

        Lets caches of derived products (e.g. the dispatch engine's
        frozen-view cache) validate that the graph has not changed since the
        product was built.
        """
        return self._version

    # ------------------------------------------------------------------
    # Node operations
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add ``node`` if it is not already present (idempotent)."""
        if node not in self._succ:
            self._succ[node] = set()
            self._pred[node] = set()
            self._version += 1

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and every incident edge."""
        if node not in self._succ:
            raise NodeNotFoundError(node)
        removed = len(self._succ[node]) + len(self._pred[node])
        if node in self._succ[node]:
            removed -= 1  # a self-loop is one edge but appears in both sets
        for target in self._succ[node]:
            self._pred[target].discard(node)
        for source in self._pred[node]:
            if source in self._succ:
                self._succ[source].discard(node)
        self._num_edges -= removed
        del self._succ[node]
        del self._pred[node]
        self._version += 1

    def has_node(self, node: Node) -> bool:
        return node in self._succ

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes (insertion order)."""
        return iter(self._succ)

    def number_of_nodes(self) -> int:
        return len(self._succ)

    def __len__(self) -> int:
        return len(self._succ)

    # ------------------------------------------------------------------
    # Edge operations
    # ------------------------------------------------------------------
    def add_edge(self, source: Node, target: Node) -> bool:
        """Add the directed edge ``source -> target``.

        Returns ``True`` if the edge was newly inserted, ``False`` if it was
        already present.  Self-loops are permitted but never created by the
        library's own generators.
        """
        self.add_node(source)
        self.add_node(target)
        if target in self._succ[source]:
            return False
        self._succ[source].add(target)
        self._pred[target].add(source)
        self._num_edges += 1
        self._version += 1
        return True

    def remove_edge(self, source: Node, target: Node) -> None:
        if source not in self._succ or target not in self._succ[source]:
            from .errors import EdgeNotFoundError

            raise EdgeNotFoundError(source, target)
        self._succ[source].discard(target)
        self._pred[target].discard(source)
        self._num_edges -= 1
        self._version += 1

    def has_edge(self, source: Node, target: Node) -> bool:
        succ = self._succ.get(source)
        return succ is not None and target in succ

    def is_reciprocal(self, source: Node, target: Node) -> bool:
        """Return ``True`` when both directed edges exist between the pair."""
        return self.has_edge(source, target) and self.has_edge(target, source)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all directed edges as ``(source, target)`` tuples."""
        for source, targets in self._succ.items():
            for target in targets:
                yield (source, target)

    def number_of_edges(self) -> int:
        return self._num_edges

    # ------------------------------------------------------------------
    # Neighborhood accessors
    # ------------------------------------------------------------------
    def successors(self, node: Node) -> Set[Node]:
        """Out-neighbors of ``node`` (the paper's :math:`\\Gamma_{s,out}`)."""
        try:
            return self._succ[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def predecessors(self, node: Node) -> Set[Node]:
        """In-neighbors of ``node`` (the paper's :math:`\\Gamma_{s,in}`)."""
        try:
            return self._pred[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def neighbors(self, node: Node) -> Set[Node]:
        """Union of in- and out-neighbors, excluding ``node`` itself."""
        union = self.successors(node) | self.predecessors(node)
        union.discard(node)
        return union

    def out_degree(self, node: Node) -> int:
        return len(self.successors(node))

    def in_degree(self, node: Node) -> int:
        return len(self.predecessors(node))

    def degree(self, node: Node) -> int:
        """Number of distinct neighbors (undirected view)."""
        return len(self.neighbors(node))

    # ------------------------------------------------------------------
    # Convenience / whole-graph views
    # ------------------------------------------------------------------
    def copy(self) -> "DiGraph":
        clone = DiGraph()
        clone._succ = {node: set(targets) for node, targets in self._succ.items()}
        clone._pred = {node: set(sources) for node, sources in self._pred.items()}
        clone._num_edges = self._num_edges
        return clone

    def subgraph(self, nodes: Iterable[Node]) -> "DiGraph":
        """Return the induced subgraph on ``nodes`` (edges with both ends inside)."""
        keep = set(nodes)
        sub = DiGraph()
        for node in keep:
            if node in self._succ:
                sub.add_node(node)
        for node in keep:
            if node not in self._succ:
                continue
            for target in self._succ[node]:
                if target in keep:
                    sub.add_edge(node, target)
        return sub

    def to_undirected_adjacency(self) -> Dict[Node, Set[Node]]:
        """Adjacency map of the undirected projection (used by WCC / diameter)."""
        adjacency: Dict[Node, Set[Node]] = {node: set() for node in self._succ}
        for source, targets in self._succ.items():
            for target in targets:
                adjacency[source].add(target)
                adjacency[target].add(source)
        return adjacency

    def reverse(self) -> "DiGraph":
        """Return a new graph with every edge direction flipped."""
        rev = DiGraph()
        rev._succ = {node: set(sources) for node, sources in self._pred.items()}
        rev._pred = {node: set(targets) for node, targets in self._succ.items()}
        rev._num_edges = self._num_edges
        return rev

    def freeze(self) -> "FrozenDiGraph":
        """Compact this graph into a read-only, CSR-backed snapshot.

        The returned :class:`repro.graph.frozen.FrozenDiGraph` preserves node
        insertion order, answers the whole read-only
        :class:`repro.graph.protocol.DiGraphView` surface, and additionally
        exposes numpy adjacency arrays that the metrics layer uses for
        vectorized kernels.  Subsequent mutation of ``self`` does not affect
        the snapshot.

        Examples
        --------
        >>> g = DiGraph([(1, 2), (2, 1)])
        >>> frozen = g.freeze()
        >>> frozen.is_reciprocal(1, 2)
        True
        >>> frozen.add_edge(2, 3)
        Traceback (most recent call last):
            ...
        repro.graph.errors.FrozenGraphError: FrozenDiGraph is immutable: \
add_edge() is not supported; call thaw() to obtain a mutable copy first
        """
        from .frozen import FrozenDiGraph

        return FrozenDiGraph.from_digraph(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiGraph(nodes={self.number_of_nodes()}, "
            f"edges={self.number_of_edges()})"
        )
