"""Read-only graph protocols shared by the mutable and frozen backends.

Every measurement in the library consumes graphs through a small read-only
surface: node/edge membership, iteration, neighborhoods, and degrees.  This
module names that surface explicitly so that code can be written against *any*
backend — the mutable dict-of-sets :class:`repro.graph.digraph.DiGraph` /
:class:`repro.graph.san.SAN`, or the CSR-backed
:class:`repro.graph.frozen.FrozenDiGraph` / :class:`repro.graph.frozen.FrozenSAN`.

The protocols are ``runtime_checkable`` so backends can be validated with
``isinstance``; structural typing means a backend never needs to inherit from
them:

>>> from repro.graph import SAN, DiGraph
>>> from repro.graph.protocol import DiGraphView, SANView
>>> isinstance(DiGraph(), DiGraphView)
True
>>> isinstance(SAN(), SANView)
True
>>> isinstance(SAN().freeze(), SANView)
True

Metric functions dispatch on the *concrete* frozen types when they have a
vectorized kernel for them and otherwise fall back to per-node code that only
touches the protocol methods below — so any object satisfying the protocol is
a valid metrics input.
"""

from __future__ import annotations

from typing import (
    Dict,
    Hashable,
    Iterator,
    Protocol,
    Set,
    Tuple,
    runtime_checkable,
)

Node = Hashable
Edge = Tuple[Node, Node]


@runtime_checkable
class DiGraphView(Protocol):
    """The read-only surface of a directed social graph backend."""

    # -- node queries --------------------------------------------------
    def has_node(self, node: Node) -> bool: ...

    def nodes(self) -> Iterator[Node]: ...

    def number_of_nodes(self) -> int: ...

    # -- edge queries --------------------------------------------------
    def has_edge(self, source: Node, target: Node) -> bool: ...

    def is_reciprocal(self, source: Node, target: Node) -> bool: ...

    def edges(self) -> Iterator[Edge]: ...

    def number_of_edges(self) -> int: ...

    # -- neighborhoods -------------------------------------------------
    def successors(self, node: Node) -> Set[Node]: ...

    def predecessors(self, node: Node) -> Set[Node]: ...

    def neighbors(self, node: Node) -> Set[Node]: ...

    def out_degree(self, node: Node) -> int: ...

    def in_degree(self, node: Node) -> int: ...

    def degree(self, node: Node) -> int: ...

    def to_undirected_adjacency(self) -> Dict[Node, Set[Node]]: ...


@runtime_checkable
class SANView(Protocol):
    """The read-only surface of a Social-Attribute Network backend.

    Backends additionally expose a ``social`` attribute satisfying
    :class:`DiGraphView` and an ``attributes`` attribute holding the bipartite
    layer; protocols cannot express attribute types structurally at runtime,
    so only the methods are listed here.
    """

    # -- node queries --------------------------------------------------
    def is_social_node(self, node: Node) -> bool: ...

    def is_attribute_node(self, node: Node) -> bool: ...

    def social_nodes(self) -> Iterator[Node]: ...

    def attribute_nodes(self) -> Iterator[Node]: ...

    def number_of_social_nodes(self) -> int: ...

    def number_of_attribute_nodes(self) -> int: ...

    # -- edge queries --------------------------------------------------
    def has_social_edge(self, source: Node, target: Node) -> bool: ...

    def has_attribute_edge(self, social: Node, attribute: Node) -> bool: ...

    def social_edges(self) -> Iterator[Edge]: ...

    def attribute_edges(self) -> Iterator[Edge]: ...

    def number_of_social_edges(self) -> int: ...

    def number_of_attribute_edges(self) -> int: ...

    # -- neighborhoods (paper notation) --------------------------------
    def social_out_neighbors(self, node: Node) -> Set[Node]: ...

    def social_in_neighbors(self, node: Node) -> Set[Node]: ...

    def social_neighbors(self, node: Node) -> Set[Node]: ...

    def attribute_neighbors(self, node: Node) -> Set[Node]: ...

    def common_attributes(self, first: Node, second: Node) -> Set[Node]: ...

    def common_social_neighbors(self, first: Node, second: Node) -> Set[Node]: ...

    # -- degrees -------------------------------------------------------
    def social_out_degree(self, node: Node) -> int: ...

    def social_in_degree(self, node: Node) -> int: ...

    def attribute_degree(self, node: Node) -> int: ...

    def attribute_social_degree(self, attribute: Node) -> int: ...

    # -- whole-graph views ---------------------------------------------
    def densities(self) -> Tuple[float, float]: ...

    def summary(self) -> Dict[str, float]: ...
