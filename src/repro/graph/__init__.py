"""Graph substrate: social DiGraph, bipartite attribute layer, SAN — each in
mutable (dict-of-sets) and frozen (read-only CSR numpy) backends."""

from .bipartite import AttributeInfo, BipartiteAttributeGraph
from .builders import (
    attribute_node_id,
    complete_seed_san,
    merge_sans,
    relabel_social_nodes,
    san_from_edge_lists,
    san_from_profiles,
)
from .columnar import (
    FORMAT_VERSION,
    columnar_info,
    is_mmap_backed,
    load_columnar_extras,
    maybe_spill,
    mmap_forced,
    open_columnar,
    save_columnar,
    spill_to_mmap,
)
from .digraph import DiGraph
from .errors import (
    ColumnarEndiannessError,
    ColumnarFormatError,
    ColumnarMagicError,
    ColumnarTruncatedError,
    ColumnarVersionError,
    DuplicateNodeError,
    EdgeNotFoundError,
    FrozenGraphError,
    GraphError,
    InvalidNodeKindError,
    NodeNotFoundError,
    SerializationError,
)
from .frozen import (
    FrozenBipartiteAttributeGraph,
    FrozenDiGraph,
    FrozenSAN,
    IdentityLabels,
)
from .protocol import DiGraphView, SANView
from .san import SAN
from .serialization import load_san_json, load_san_tsv, save_san_json, save_san_tsv

__all__ = [
    "AttributeInfo",
    "BipartiteAttributeGraph",
    "DiGraph",
    "SAN",
    "FrozenBipartiteAttributeGraph",
    "FrozenDiGraph",
    "FrozenSAN",
    "IdentityLabels",
    "DiGraphView",
    "SANView",
    "FORMAT_VERSION",
    "save_columnar",
    "open_columnar",
    "load_columnar_extras",
    "columnar_info",
    "maybe_spill",
    "spill_to_mmap",
    "mmap_forced",
    "is_mmap_backed",
    "attribute_node_id",
    "complete_seed_san",
    "merge_sans",
    "relabel_social_nodes",
    "san_from_edge_lists",
    "san_from_profiles",
    "load_san_json",
    "load_san_tsv",
    "save_san_json",
    "save_san_tsv",
    "GraphError",
    "NodeNotFoundError",
    "EdgeNotFoundError",
    "DuplicateNodeError",
    "InvalidNodeKindError",
    "SerializationError",
    "FrozenGraphError",
    "ColumnarFormatError",
    "ColumnarMagicError",
    "ColumnarVersionError",
    "ColumnarTruncatedError",
    "ColumnarEndiannessError",
]
