"""Graph substrate: directed social graph, bipartite attribute layer, SAN."""

from .bipartite import AttributeInfo, BipartiteAttributeGraph
from .builders import (
    attribute_node_id,
    complete_seed_san,
    merge_sans,
    relabel_social_nodes,
    san_from_edge_lists,
    san_from_profiles,
)
from .digraph import DiGraph
from .errors import (
    DuplicateNodeError,
    EdgeNotFoundError,
    GraphError,
    InvalidNodeKindError,
    NodeNotFoundError,
    SerializationError,
)
from .san import SAN
from .serialization import load_san_json, load_san_tsv, save_san_json, save_san_tsv

__all__ = [
    "AttributeInfo",
    "BipartiteAttributeGraph",
    "DiGraph",
    "SAN",
    "attribute_node_id",
    "complete_seed_san",
    "merge_sans",
    "relabel_social_nodes",
    "san_from_edge_lists",
    "san_from_profiles",
    "load_san_json",
    "load_san_tsv",
    "save_san_json",
    "save_san_tsv",
    "GraphError",
    "NodeNotFoundError",
    "EdgeNotFoundError",
    "DuplicateNodeError",
    "InvalidNodeKindError",
    "SerializationError",
]
