"""Frozen, CSR-backed read-only graph backends.

The mutable :class:`~repro.graph.digraph.DiGraph` /
:class:`~repro.graph.san.SAN` store adjacency as dictionaries of sets, which
is ideal for incremental construction (simulators, crawlers, generative
models) but wasteful for whole-graph measurement: every metric pays Python
dict/set overhead per node and per edge.

This module provides the measurement-time counterparts:

* :class:`FrozenDiGraph` — node labels compacted to ``0..n-1`` with out- and
  in-adjacency stored in CSR form (``indptr`` / ``indices`` numpy arrays,
  per-row sorted), plus a lazily built undirected CSR projection;
* :class:`FrozenBipartiteAttributeGraph` — both directions of the
  social-attribute incidence in CSR form, with attribute types encoded as an
  integer code array for vectorized per-type aggregation;
* :class:`FrozenSAN` — the two combined, exposing the same read-only API as
  :class:`~repro.graph.san.SAN` (it satisfies
  :class:`repro.graph.protocol.SANView`).

Construction is via ``DiGraph.freeze()`` / ``SAN.freeze()`` (or the
``from_digraph`` / ``from_san`` classmethods here); ``thaw()`` converts back.
Mutating methods raise :class:`~repro.graph.errors.FrozenGraphError`.

The CSR arrays are exposed through documented accessors (``out_csr()``,
``undirected_csr()``, ``edge_arrays()``, ``*_degree_array()`` …) so the
metrics layer can run vectorized numpy kernels instead of per-node Python
loops.  Backend selection lives in :mod:`repro.engine`: metric modules
register frozen kernels against named operations and the engine dispatches
to them whenever the input graph is one of the frozen classes below.

Examples
--------
>>> from repro.graph import SAN
>>> san = SAN()
>>> san.add_social_edge(1, 2)
True
>>> san.add_social_edge(2, 1)
True
>>> frozen = san.freeze()
>>> frozen.has_social_edge(1, 2), frozen.social.is_reciprocal(1, 2)
(True, True)
>>> frozen.thaw().number_of_social_edges()
2
"""

from __future__ import annotations

import operator
from collections.abc import Mapping, Sequence
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np

from .bipartite import AttributeInfo, BipartiteAttributeGraph
from .digraph import DiGraph
from .errors import FrozenGraphError, NodeNotFoundError
from .san import SAN

Node = Hashable
Edge = Tuple[Node, Node]


# ----------------------------------------------------------------------
# CSR helpers (shared by the frozen backends and the metric kernels)
# ----------------------------------------------------------------------
def build_csr(rows: List[Iterable[int]]) -> Tuple[np.ndarray, np.ndarray]:
    """Pack per-row column-id iterables into sorted-row CSR arrays.

    Returns ``(indptr, indices)`` with ``indptr`` of length ``len(rows)+1``
    and every row segment of ``indices`` sorted ascending — the invariant the
    vectorized kernels rely on for ``searchsorted`` membership tests.
    """
    materialized = [sorted(row) for row in rows]
    counts = np.fromiter(
        (len(row) for row in materialized), dtype=np.int64, count=len(materialized)
    )
    indptr = np.zeros(len(materialized) + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = np.empty(int(indptr[-1]), dtype=np.int64)
    for i, row in enumerate(materialized):
        if row:
            indices[indptr[i] : indptr[i + 1]] = row
    return indptr, indices


def csr_from_edge_arrays(
    src: np.ndarray, dst: np.ndarray, num_rows: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Pack parallel edge arrays into sorted-row CSR form, fully vectorized.

    ``src``/``dst`` list one directed edge per position (duplicates are the
    caller's responsibility — the generative engines emit deduplicated edge
    streams).  Unlike :func:`build_csr` this never loops in Python, so it is
    the builder of choice when the adjacency already lives in numpy arrays
    (delta-snapshot materialization, event-log replays).
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    counts = np.bincount(src, minlength=num_rows).astype(np.int64)
    indptr = np.zeros(num_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    order = np.lexsort((dst, src))
    return indptr, dst[order]


def gather_rows(
    indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate the CSR rows listed in ``rows`` without a Python loop.

    Returns ``(values, counts)`` where ``values`` is the concatenation of the
    selected row segments of ``indices`` and ``counts[i]`` is the length of
    row ``rows[i]`` — so ``np.repeat(rows, counts)`` labels each value with
    its source row.
    """
    counts = indptr[rows + 1] - indptr[rows]
    total = int(counts.sum())
    if total == 0:
        return indices[:0], counts
    nonzero = counts > 0
    starts = indptr[rows][nonzero]
    sizes = counts[nonzero]
    offsets = np.repeat(np.cumsum(sizes) - sizes, sizes)
    flat = np.repeat(starts, sizes) + (np.arange(total, dtype=np.int64) - offsets)
    return indices[flat], counts


def sorted_membership(haystack: np.ndarray, needles: np.ndarray) -> np.ndarray:
    """Boolean mask: which ``needles`` occur in the *sorted* ``haystack``."""
    if haystack.size == 0 or needles.size == 0:
        return np.zeros(needles.size, dtype=bool)
    positions = np.searchsorted(haystack, needles)
    np.minimum(positions, haystack.size - 1, out=positions)
    return haystack[positions] == needles


def restrict_csr(
    indptr: np.ndarray, indices: np.ndarray, keep: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Induce a CSR on the sorted id subset ``keep`` (rows *and* columns).

    Rows are reordered to ``keep`` order and column ids are remapped to
    positions within ``keep``; entries pointing outside ``keep`` are dropped.
    Row sortedness is preserved (filtering keeps order, remapping is
    monotone), so the result upholds the frozen-backend CSR invariant.
    """
    values, counts = gather_rows(indptr, indices, keep)
    mask = sorted_membership(keep, values)
    row_of = np.repeat(np.arange(keep.size, dtype=np.int64), counts)[mask]
    new_counts = np.bincount(row_of, minlength=keep.size).astype(np.int64)
    new_indptr = np.zeros(keep.size + 1, dtype=np.int64)
    np.cumsum(new_counts, out=new_indptr[1:])
    return new_indptr, np.searchsorted(keep, values[mask])


# ----------------------------------------------------------------------
# Lazy identity labels (out-of-core graphs)
# ----------------------------------------------------------------------
class IdentityLabels(Sequence):
    """Read-only stand-in for ``list(range(n))`` without materializing it.

    Graphs produced by the generative engines label nodes with their own
    compact ids, so a 10M-node frozen graph would otherwise carry a 10M-entry
    Python list (plus a 10M-entry index dict) that dwarfs the CSR arrays it
    accompanies.  The columnar loader detects that case and substitutes this
    O(1)-memory sequence; it compares equal to the equivalent list so callers
    that assert ``graph.labels() == list(range(n))`` keep working.
    """

    __slots__ = ("_n",)

    def __init__(self, n: int) -> None:
        self._n = int(n)

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, item):
        if isinstance(item, slice):
            return list(range(self._n))[item]
        i = operator.index(item)
        if i < 0:
            i += self._n
        if not 0 <= i < self._n:
            raise IndexError(item)
        return i

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __contains__(self, item: object) -> bool:
        return isinstance(item, int) and not isinstance(item, bool) and 0 <= item < self._n

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IdentityLabels):
            return self._n == other._n
        if isinstance(other, (list, tuple, range)):
            return len(other) == self._n and all(
                value == i for i, value in enumerate(other)
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("IdentityLabels", self._n))

    def index(self, value, start: int = 0, stop: Optional[int] = None) -> int:
        if value in self:
            stop = self._n if stop is None else stop
            if start <= value < stop:
                return value
        raise ValueError(f"{value!r} is not in labels")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IdentityLabels({self._n})"


class IdentityIndex(Mapping):
    """Read-only stand-in for ``{i: i for i in range(n)}`` (see IdentityLabels)."""

    __slots__ = ("_n",)

    def __init__(self, n: int) -> None:
        self._n = int(n)

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, key):
        if isinstance(key, int) and not isinstance(key, bool) and 0 <= key < self._n:
            return key
        raise KeyError(key)

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __contains__(self, key: object) -> bool:
        return isinstance(key, int) and not isinstance(key, bool) and 0 <= key < self._n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IdentityIndex({self._n})"


def identity_labels_if_trivial(labels) -> object:
    """Return ``IdentityLabels(n)`` when ``labels`` is exactly ``0..n-1``.

    Otherwise return ``labels`` unchanged.  Used by the columnar writer to
    decide whether the label section can be elided entirely.
    """
    if isinstance(labels, IdentityLabels):
        return labels
    n = len(labels)
    if isinstance(labels, range):
        return IdentityLabels(n) if labels == range(n) else labels
    for i, value in enumerate(labels):
        if type(value) is not int or value != i:
            return labels
    return IdentityLabels(n)


# ----------------------------------------------------------------------
# Frozen directed graph
# ----------------------------------------------------------------------
class FrozenDiGraph:
    """Read-only directed graph with compact ids and CSR adjacency.

    Node labels keep the insertion order of the source graph: compact id
    ``i`` maps to ``labels()[i]``, and all iteration methods (``nodes()``,
    degree arrays, …) follow that order so results line up positionally with
    the mutable backend's iteration order.

    Examples
    --------
    >>> from repro.graph import DiGraph
    >>> g = DiGraph([(1, 2), (2, 1), (2, 3)])
    >>> f = g.freeze()
    >>> f.number_of_nodes(), f.number_of_edges()
    (3, 3)
    >>> f.has_edge(1, 2), f.is_reciprocal(1, 2), f.is_reciprocal(2, 3)
    (True, True, False)
    >>> sorted(f.successors(2))
    [1, 3]
    """

    __slots__ = (
        "_labels",
        "_index",
        "_out_indptr",
        "_out_indices",
        "_in_indptr",
        "_in_indices",
        "_num_edges",
        "_und_indptr",
        "_und_indices",
        "_edge_src",
        # Weak-referenceable so the engine's parallel tier can key its
        # shared-memory segment cache on the graph and unlink on its GC.
        "__weakref__",
    )

    def __init__(
        self,
        labels: List[Node],
        out_indptr: np.ndarray,
        out_indices: np.ndarray,
        in_indptr: np.ndarray,
        in_indices: np.ndarray,
        index: Optional[Dict[Node, int]] = None,
    ) -> None:
        # IdentityLabels (out-of-core graphs) are kept as-is so a 10M-node
        # mmap-backed graph does not pay for a 10M-entry list + index dict.
        self._labels = (
            labels if isinstance(labels, IdentityLabels) else list(labels)
        )
        if index is not None:
            self._index = index
        elif isinstance(self._labels, IdentityLabels):
            self._index = IdentityIndex(len(self._labels))
        else:
            self._index = {label: i for i, label in enumerate(self._labels)}
        self._out_indptr = out_indptr
        self._out_indices = out_indices
        self._in_indptr = in_indptr
        self._in_indices = in_indices
        self._num_edges = int(out_indices.size)
        self._und_indptr: Optional[np.ndarray] = None
        self._und_indices: Optional[np.ndarray] = None
        self._edge_src: Optional[np.ndarray] = None

    @classmethod
    def from_digraph(cls, graph: DiGraph) -> "FrozenDiGraph":
        """Compact ``graph`` into CSR form (the body of ``DiGraph.freeze()``)."""
        labels = list(graph.nodes())
        index = {label: i for i, label in enumerate(labels)}
        out_rows = [
            [index[target] for target in graph.successors(label)] for label in labels
        ]
        in_rows = [
            [index[source] for source in graph.predecessors(label)] for label in labels
        ]
        out_indptr, out_indices = build_csr(out_rows)
        in_indptr, in_indices = build_csr(in_rows)
        return cls(labels, out_indptr, out_indices, in_indptr, in_indices, index=index)

    @classmethod
    def from_edge_arrays(
        cls, labels: List[Node], src: np.ndarray, dst: np.ndarray
    ) -> "FrozenDiGraph":
        """Build a frozen graph straight from compact-id edge arrays.

        ``src[k] -> dst[k]`` are the directed edges as ids into ``labels``;
        edges must be unique (no dedup is performed).  Both CSR directions are
        assembled with vectorized sorts — no per-node Python loop — which is
        what makes materializing a snapshot from an append-only edge log cheap.
        """
        num_nodes = len(labels)
        out_indptr, out_indices = csr_from_edge_arrays(src, dst, num_nodes)
        in_indptr, in_indices = csr_from_edge_arrays(dst, src, num_nodes)
        return cls(labels, out_indptr, out_indices, in_indptr, in_indices)

    # ------------------------------------------------------------------
    # Compact-id / array accessors (the vectorized-kernel API)
    # ------------------------------------------------------------------
    def labels(self) -> List[Node]:
        """Node labels in compact-id order (do not mutate the returned list)."""
        return self._labels

    def index_of(self, node: Node) -> int:
        """Compact id of ``node`` (raises :class:`NodeNotFoundError`)."""
        try:
            return self._index[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def label_of(self, index: int) -> Node:
        return self._labels[index]

    def out_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(indptr, indices)`` of the out-adjacency (rows sorted)."""
        return self._out_indptr, self._out_indices

    def in_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(indptr, indices)`` of the in-adjacency (rows sorted)."""
        return self._in_indptr, self._in_indices

    def undirected_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR of the undirected projection, self-loops removed (lazy, cached)."""
        if self._und_indptr is None:
            n = self.number_of_nodes()
            stride = max(n, 1)
            src, dst = self.edge_arrays()
            proper = src != dst
            forward = src[proper]
            backward = dst[proper]
            keys = np.unique(
                np.concatenate(
                    [forward * stride + backward, backward * stride + forward]
                )
            )
            und_src = keys // stride
            und_dst = keys % stride
            counts = np.bincount(und_src, minlength=n).astype(np.int64)
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            self._und_indptr = indptr
            self._und_indices = und_dst
        return self._und_indptr, self._und_indices

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Directed edges as compact-id arrays ``(sources, targets)``.

        Edges are ordered by (source, target) — each CSR row is sorted, so
        the arrays enumerate the edge list in a deterministic order.  Used by
        the undirected-projection build, the assortativity kernels, and the
        self-loop accounting in the reciprocity kernel.
        """
        if self._edge_src is None:
            self._edge_src = np.repeat(
                np.arange(self.number_of_nodes(), dtype=np.int64),
                np.diff(self._out_indptr),
            )
        return self._edge_src, self._out_indices

    def out_degree_array(self) -> np.ndarray:
        """Out-degree of every node, in compact-id order."""
        return np.diff(self._out_indptr)

    def in_degree_array(self) -> np.ndarray:
        """In-degree of every node, in compact-id order."""
        return np.diff(self._in_indptr)

    def undirected_degree_array(self) -> np.ndarray:
        """Distinct-neighbor count of every node, in compact-id order."""
        indptr, _ = self.undirected_csr()
        return np.diff(indptr)

    def out_row(self, index: int) -> np.ndarray:
        """Sorted out-neighbor ids of compact node ``index`` (a view)."""
        return self._out_indices[self._out_indptr[index] : self._out_indptr[index + 1]]

    def in_row(self, index: int) -> np.ndarray:
        return self._in_indices[self._in_indptr[index] : self._in_indptr[index + 1]]

    def undirected_row(self, index: int) -> np.ndarray:
        """Sorted distinct-neighbor ids of compact node ``index`` (a view)."""
        indptr, indices = self.undirected_csr()
        return indices[indptr[index] : indptr[index + 1]]

    # ------------------------------------------------------------------
    # Node operations (read-only surface of DiGraph)
    # ------------------------------------------------------------------
    def has_node(self, node: Node) -> bool:
        return node in self._index

    def __contains__(self, node: Node) -> bool:
        return node in self._index

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes (compact-id / insertion order)."""
        return iter(self._labels)

    def number_of_nodes(self) -> int:
        return len(self._labels)

    def __len__(self) -> int:
        return len(self._labels)

    # ------------------------------------------------------------------
    # Edge operations
    # ------------------------------------------------------------------
    def has_edge(self, source: Node, target: Node) -> bool:
        i = self._index.get(source)
        j = self._index.get(target)
        if i is None or j is None:
            return False
        row = self.out_row(i)
        position = int(np.searchsorted(row, j))
        return position < row.size and int(row[position]) == j

    def is_reciprocal(self, source: Node, target: Node) -> bool:
        """Return ``True`` when both directed edges exist between the pair."""
        return self.has_edge(source, target) and self.has_edge(target, source)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all directed edges as ``(source, target)`` tuples."""
        labels = self._labels
        for i in range(len(labels)):
            source = labels[i]
            for j in self.out_row(i):
                yield (source, labels[j])

    def number_of_edges(self) -> int:
        return self._num_edges

    # ------------------------------------------------------------------
    # Neighborhood accessors
    # ------------------------------------------------------------------
    def successors(self, node: Node) -> Set[Node]:
        """Out-neighbors of ``node`` (the paper's :math:`\\Gamma_{s,out}`)."""
        labels = self._labels
        return {labels[j] for j in self.out_row(self.index_of(node))}

    def predecessors(self, node: Node) -> Set[Node]:
        """In-neighbors of ``node`` (the paper's :math:`\\Gamma_{s,in}`)."""
        labels = self._labels
        return {labels[j] for j in self.in_row(self.index_of(node))}

    def neighbors(self, node: Node) -> Set[Node]:
        """Union of in- and out-neighbors, excluding ``node`` itself."""
        labels = self._labels
        return {labels[j] for j in self.undirected_row(self.index_of(node))}

    def out_degree(self, node: Node) -> int:
        i = self.index_of(node)
        return int(self._out_indptr[i + 1] - self._out_indptr[i])

    def in_degree(self, node: Node) -> int:
        i = self.index_of(node)
        return int(self._in_indptr[i + 1] - self._in_indptr[i])

    def degree(self, node: Node) -> int:
        """Number of distinct neighbors (undirected view)."""
        return int(self.undirected_row(self.index_of(node)).size)

    # ------------------------------------------------------------------
    # Whole-graph views
    # ------------------------------------------------------------------
    def to_undirected_adjacency(self) -> Dict[Node, Set[Node]]:
        """Adjacency map of the undirected projection (used by WCC / diameter)."""
        labels = self._labels
        adjacency: Dict[Node, Set[Node]] = {
            labels[i]: {labels[j] for j in self.undirected_row(i)}
            for i in range(len(labels))
        }
        # The undirected CSR drops self-loops; the mutable backend keeps them.
        src, dst = self.edge_arrays()
        for i in src[src == dst]:
            adjacency[labels[i]].add(labels[i])
        return adjacency

    def reverse(self) -> "FrozenDiGraph":
        """Return a view-sharing frozen graph with every edge flipped (O(1))."""
        return FrozenDiGraph(
            self._labels,
            self._in_indptr,
            self._in_indices,
            self._out_indptr,
            self._out_indices,
            index=self._index,
        )

    def thaw(self) -> DiGraph:
        """Rebuild a mutable :class:`DiGraph` with the same nodes and edges."""
        graph = DiGraph()
        for label in self._labels:
            graph.add_node(label)
        for source, target in self.edges():
            graph.add_edge(source, target)
        return graph

    def subgraph(self, nodes: Iterable[Node]) -> "FrozenDiGraph":
        """Induced subgraph on ``nodes``, returned frozen.

        Extracted directly from the CSR arrays — O(subset + its incident
        edges), never touching the rest of the graph.
        """
        keep = np.array(
            sorted({self._index[node] for node in nodes if node in self._index}),
            dtype=np.int64,
        )
        return self._subgraph_of_ids(keep)

    def _subgraph_of_ids(self, keep: np.ndarray) -> "FrozenDiGraph":
        """Induced subgraph on a *sorted* compact-id array."""
        labels = [self._labels[i] for i in keep]
        out_indptr, out_indices = restrict_csr(
            self._out_indptr, self._out_indices, keep
        )
        in_indptr, in_indices = restrict_csr(self._in_indptr, self._in_indices, keep)
        return FrozenDiGraph(labels, out_indptr, out_indices, in_indptr, in_indices)

    def copy(self) -> "FrozenDiGraph":
        """Frozen graphs are immutable, so ``copy`` returns ``self``."""
        return self

    def freeze(self) -> "FrozenDiGraph":
        """Already frozen; returns ``self`` (idempotence mirror of ``DiGraph.freeze``)."""
        return self

    # ------------------------------------------------------------------
    # Refused mutations
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        raise FrozenGraphError("add_node", "FrozenDiGraph")

    def remove_node(self, node: Node) -> None:
        raise FrozenGraphError("remove_node", "FrozenDiGraph")

    def add_edge(self, source: Node, target: Node) -> bool:
        raise FrozenGraphError("add_edge", "FrozenDiGraph")

    def remove_edge(self, source: Node, target: Node) -> None:
        raise FrozenGraphError("remove_edge", "FrozenDiGraph")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrozenDiGraph(nodes={self.number_of_nodes()}, "
            f"edges={self.number_of_edges()})"
        )


# ----------------------------------------------------------------------
# Frozen bipartite attribute layer
# ----------------------------------------------------------------------
class FrozenBipartiteAttributeGraph:
    """Read-only CSR counterpart of :class:`BipartiteAttributeGraph`.

    Social node ids are shared with the owning :class:`FrozenSAN`'s social
    layer so a compact social id means the same node in both layers.
    Attribute nodes get their own compact ids; attribute types are interned
    into ``type_names()`` with one small-int code per attribute node, which
    makes per-type aggregations a ``bincount``.
    """

    __slots__ = (
        "_social_labels",
        "_social_index",
        "_attr_labels",
        "_attr_index",
        "_attr_info",
        "_sa_indptr",
        "_sa_indices",
        "_as_indptr",
        "_as_indices",
        "_num_links",
        "_type_names",
        "_type_codes",
        "__weakref__",
    )

    def __init__(
        self,
        social_labels: List[Node],
        social_index: Dict[Node, int],
        attr_labels: List[Node],
        attr_info: List[AttributeInfo],
        sa_indptr: np.ndarray,
        sa_indices: np.ndarray,
        as_indptr: np.ndarray,
        as_indices: np.ndarray,
        attr_index: Optional[Dict[Node, int]] = None,
    ) -> None:
        self._social_labels = social_labels
        self._social_index = social_index
        self._attr_labels = list(attr_labels)
        self._attr_index = (
            attr_index
            if attr_index is not None
            else {label: i for i, label in enumerate(self._attr_labels)}
        )
        self._attr_info = list(attr_info)
        self._sa_indptr = sa_indptr
        self._sa_indices = sa_indices
        self._as_indptr = as_indptr
        self._as_indices = as_indices
        self._num_links = int(sa_indices.size)
        self._type_names = sorted({info.attr_type for info in self._attr_info})
        code_of = {name: code for code, name in enumerate(self._type_names)}
        self._type_codes = np.fromiter(
            (code_of[info.attr_type] for info in self._attr_info),
            dtype=np.int64,
            count=len(self._attr_info),
        )

    @classmethod
    def from_bipartite(
        cls,
        bipartite: BipartiteAttributeGraph,
        social_labels: Optional[List[Node]] = None,
        social_index: Optional[Dict[Node, int]] = None,
    ) -> "FrozenBipartiteAttributeGraph":
        """Compact ``bipartite``; social ids may be imposed by the SAN layer."""
        if social_labels is None or social_index is None:
            social_labels = list(bipartite.social_nodes())
            social_index = {label: i for i, label in enumerate(social_labels)}
        attr_labels = list(bipartite.attribute_nodes())
        attr_index = {label: i for i, label in enumerate(attr_labels)}
        attr_info = [bipartite.attribute_info(label) for label in attr_labels]
        sa_rows = [
            [attr_index[attribute] for attribute in bipartite.attributes_of(label)]
            for label in social_labels
        ]
        as_rows = [
            [social_index[member] for member in bipartite.members_of(label)]
            for label in attr_labels
        ]
        sa_indptr, sa_indices = build_csr(sa_rows)
        as_indptr, as_indices = build_csr(as_rows)
        return cls(
            social_labels,
            social_index,
            attr_labels,
            attr_info,
            sa_indptr,
            sa_indices,
            as_indptr,
            as_indices,
            attr_index=attr_index,
        )

    # ------------------------------------------------------------------
    # Compact-id / array accessors (the vectorized-kernel API)
    # ------------------------------------------------------------------
    def attribute_labels(self) -> List[Node]:
        """Attribute labels in compact-id order (do not mutate)."""
        return self._attr_labels

    def attribute_index_of(self, node: Node) -> int:
        try:
            return self._attr_index[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def social_to_attr_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR rows = social ids, columns = attribute ids (rows sorted)."""
        return self._sa_indptr, self._sa_indices

    def attr_to_social_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR rows = attribute ids, columns = social ids (rows sorted)."""
        return self._as_indptr, self._as_indices

    def attribute_degree_array(self) -> np.ndarray:
        """Attribute degree of every social node, in social compact-id order."""
        return np.diff(self._sa_indptr)

    def social_degree_array(self) -> np.ndarray:
        """Member count of every attribute node, in attribute compact-id order."""
        return np.diff(self._as_indptr)

    def attribute_row(self, social_id: int) -> np.ndarray:
        """Sorted attribute ids of compact social node ``social_id`` (a view)."""
        return self._sa_indices[self._sa_indptr[social_id] : self._sa_indptr[social_id + 1]]

    def member_row(self, attr_id: int) -> np.ndarray:
        """Sorted social ids of compact attribute node ``attr_id`` (a view)."""
        return self._as_indices[self._as_indptr[attr_id] : self._as_indptr[attr_id + 1]]

    def member_indices_of(self, attribute: Node) -> np.ndarray:
        """Sorted compact social ids of the members of ``attribute``."""
        return self.member_row(self.attribute_index_of(attribute))

    def type_names(self) -> List[str]:
        """Interned attribute-type names; ``type_codes()`` indexes into this."""
        return self._type_names

    def type_codes(self) -> np.ndarray:
        """Type code of every attribute node, in attribute compact-id order."""
        return self._type_codes

    # ------------------------------------------------------------------
    # Node queries (read-only surface of BipartiteAttributeGraph)
    # ------------------------------------------------------------------
    def has_social_node(self, node: Node) -> bool:
        return node in self._social_index

    def has_attribute_node(self, node: Node) -> bool:
        return node in self._attr_index

    def social_nodes(self) -> Iterator[Node]:
        return iter(self._social_labels)

    def attribute_nodes(self) -> Iterator[Node]:
        return iter(self._attr_labels)

    def number_of_social_nodes(self) -> int:
        return len(self._social_labels)

    def number_of_attribute_nodes(self) -> int:
        return len(self._attr_labels)

    def attribute_info(self, node: Node) -> AttributeInfo:
        return self._attr_info[self.attribute_index_of(node)]

    def attribute_type(self, node: Node) -> str:
        return self.attribute_info(node).attr_type

    # ------------------------------------------------------------------
    # Link queries
    # ------------------------------------------------------------------
    def has_link(self, social: Node, attribute: Node) -> bool:
        i = self._social_index.get(social)
        j = self._attr_index.get(attribute)
        if i is None or j is None:
            return False
        row = self.attribute_row(i)
        position = int(np.searchsorted(row, j))
        return position < row.size and int(row[position]) == j

    def links(self) -> Iterator[Tuple[Node, Node]]:
        labels = self._attr_labels
        for i, social in enumerate(self._social_labels):
            for j in self.attribute_row(i):
                yield (social, labels[j])

    def number_of_links(self) -> int:
        return self._num_links

    # ------------------------------------------------------------------
    # Neighborhood accessors
    # ------------------------------------------------------------------
    def attributes_of(self, social: Node) -> Set[Node]:
        """The paper's :math:`\\Gamma_a(u)`: attribute neighbors of a social node."""
        i = self._social_index.get(social)
        if i is None:
            return set()
        labels = self._attr_labels
        return {labels[j] for j in self.attribute_row(i)}

    def members_of(self, attribute: Node) -> Set[Node]:
        """Social neighbors of an attribute node (users holding the attribute)."""
        labels = self._social_labels
        return {labels[j] for j in self.member_indices_of(attribute)}

    def attribute_degree(self, social: Node) -> int:
        i = self._social_index.get(social)
        if i is None:
            return 0
        return int(self._sa_indptr[i + 1] - self._sa_indptr[i])

    def social_degree(self, attribute: Node) -> int:
        return int(self.member_indices_of(attribute).size)

    def common_attributes(self, first: Node, second: Node) -> Set[Node]:
        """Attributes shared by two social nodes (the paper's ``a(u, v)``)."""
        i = self._social_index.get(first)
        j = self._social_index.get(second)
        if i is None or j is None:
            return set()
        labels = self._attr_labels
        shared = np.intersect1d(
            self.attribute_row(i), self.attribute_row(j), assume_unique=True
        )
        return {labels[k] for k in shared}

    def attribute_nodes_of_type(self, attr_type: str) -> Iterator[Node]:
        for label, info in zip(self._attr_labels, self._attr_info):
            if info.attr_type == attr_type:
                yield label

    def attribute_types(self) -> Set[str]:
        return set(self._type_names)

    # ------------------------------------------------------------------
    # Whole-graph helpers
    # ------------------------------------------------------------------
    def copy(self) -> "FrozenBipartiteAttributeGraph":
        """Frozen layers are immutable, so ``copy`` returns ``self``."""
        return self

    def _restrict_to_social_ids(
        self,
        keep: np.ndarray,
        new_social_labels: List[Node],
        new_social_index: Dict[Node, int],
    ) -> "FrozenBipartiteAttributeGraph":
        """Induced attribute layer on a *sorted* social compact-id subset.

        Attribute nodes are kept only when at least one retained social node
        links to them, mirroring ``SAN.social_subgraph``.
        """
        num_attrs = self.number_of_attribute_nodes()
        attr_of = np.repeat(
            np.arange(num_attrs, dtype=np.int64), np.diff(self._as_indptr)
        )
        members = self._as_indices
        mask = sorted_membership(keep, members)
        attr_of = attr_of[mask]
        members_new = np.searchsorted(keep, members[mask])
        kept_attrs = np.unique(attr_of)
        attr_new = np.searchsorted(kept_attrs, attr_of)

        # attr -> social CSR: rows arrive grouped by attribute and sorted by
        # member (row-major order of the source CSR survives the filter).
        as_counts = np.bincount(attr_new, minlength=kept_attrs.size).astype(np.int64)
        as_indptr = np.zeros(kept_attrs.size + 1, dtype=np.int64)
        np.cumsum(as_counts, out=as_indptr[1:])

        # social -> attr CSR: transpose the surviving link pairs.
        order = np.lexsort((attr_new, members_new))
        sa_counts = np.bincount(
            members_new, minlength=len(new_social_labels)
        ).astype(np.int64)
        sa_indptr = np.zeros(len(new_social_labels) + 1, dtype=np.int64)
        np.cumsum(sa_counts, out=sa_indptr[1:])

        return FrozenBipartiteAttributeGraph(
            new_social_labels,
            new_social_index,
            [self._attr_labels[i] for i in kept_attrs],
            [self._attr_info[i] for i in kept_attrs],
            sa_indptr,
            attr_new[order],
            as_indptr,
            members_new,
        )

    # ------------------------------------------------------------------
    # Refused mutations
    # ------------------------------------------------------------------
    def add_social_node(self, node: Node) -> None:
        raise FrozenGraphError("add_social_node", "FrozenBipartiteAttributeGraph")

    def add_attribute_node(self, node: Node, attr_type: str = "generic", value=None) -> None:
        raise FrozenGraphError("add_attribute_node", "FrozenBipartiteAttributeGraph")

    def remove_social_node(self, node: Node) -> None:
        raise FrozenGraphError("remove_social_node", "FrozenBipartiteAttributeGraph")

    def add_link(self, social: Node, attribute: Node) -> bool:
        raise FrozenGraphError("add_link", "FrozenBipartiteAttributeGraph")

    def remove_link(self, social: Node, attribute: Node) -> None:
        raise FrozenGraphError("remove_link", "FrozenBipartiteAttributeGraph")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrozenBipartiteAttributeGraph(social={self.number_of_social_nodes()}, "
            f"attributes={self.number_of_attribute_nodes()}, "
            f"links={self.number_of_links()})"
        )


# ----------------------------------------------------------------------
# Frozen SAN
# ----------------------------------------------------------------------
class FrozenSAN:
    """Read-only, CSR-backed Social-Attribute Network.

    Combines a :class:`FrozenDiGraph` social layer with a
    :class:`FrozenBipartiteAttributeGraph` attribute layer that share one
    compact social-id space.  Exposes the full read API of
    :class:`~repro.graph.san.SAN` (it satisfies
    :class:`repro.graph.protocol.SANView`), so every metric in the library
    accepts it; the hot-path metrics additionally recognise it and switch to
    vectorized numpy kernels.

    Examples
    --------
    >>> from repro.graph import SAN
    >>> san = SAN()
    >>> san.add_social_edge(1, 2)
    True
    >>> san.add_attribute_edge(1, "employer:Google", attr_type="employer")
    True
    >>> frozen = san.freeze()
    >>> frozen.attribute_degree(1), frozen.is_attribute_node("employer:Google")
    (1, True)
    >>> frozen.summary() == san.summary()
    True
    """

    __slots__ = ("social", "attributes", "_derived", "__weakref__")

    def __init__(
        self, social: FrozenDiGraph, attributes: FrozenBipartiteAttributeGraph
    ) -> None:
        self.social = social
        self.attributes = attributes
        self._derived: Dict[str, object] = {}

    def derived(self, key: str, factory) -> object:
        """Memoize an expensive whole-graph product on this immutable SAN.

        Because a frozen SAN can never change, any value derived purely from
        its content (clustering arrays, sparse matrices, …) stays valid for
        the SAN's lifetime.  ``factory`` receives the SAN and is invoked at
        most once per ``key``; metric kernels use this so that, e.g., a full
        report does not rebuild the same sparse product per metric.
        """
        try:
            return self._derived[key]
        except KeyError:
            value = factory(self)
            self._derived[key] = value
            return value

    def has_derived(self, key: str) -> bool:
        """Whether ``derived(key, ...)`` has already been computed.

        Lets kernels prefer an already-built product (e.g. an existing sparse
        matrix) without forcing its construction for a small workload.
        """
        return key in self._derived

    @classmethod
    def from_san(cls, san: SAN) -> "FrozenSAN":
        """Compact ``san`` into CSR form (the body of ``SAN.freeze()``)."""
        social = FrozenDiGraph.from_digraph(san.social)
        attributes = FrozenBipartiteAttributeGraph.from_bipartite(
            san.attributes,
            social_labels=social.labels(),
            social_index=social._index,  # share, don't rebuild
        )
        return cls(social, attributes)

    @classmethod
    def from_edge_arrays(
        cls,
        social_labels: List[Node],
        social_src: np.ndarray,
        social_dst: np.ndarray,
        attr_labels: List[Node],
        attr_info: List[AttributeInfo],
        link_social: np.ndarray,
        link_attr: np.ndarray,
        *,
        spill: Optional[object] = None,
    ) -> "FrozenSAN":
        """Materialize a FrozenSAN from compact-id edge arrays in one pass.

        ``social_src/social_dst`` are the directed social edges and
        ``link_social/link_attr`` the attribute links, all as ids into
        ``social_labels`` / ``attr_labels``; every edge must be unique.  This
        is the delta-snapshot entry point: the generative engines keep
        append-only edge arrays and call this with array *prefixes* to
        reconstruct the network as of any recorded watermark, instead of
        deep-copying the mutable SAN at every snapshot.

        ``spill`` names a columnar file path: the materialized SAN is written
        there and re-opened mmap-backed, so the CSR arrays live on disk
        instead of RAM (the out-of-core path for ``huge``-scale snapshots).
        """
        social = FrozenDiGraph.from_edge_arrays(social_labels, social_src, social_dst)
        num_attrs = len(attr_labels)
        sa_indptr, sa_indices = csr_from_edge_arrays(
            link_social, link_attr, len(social_labels)
        )
        as_indptr, as_indices = csr_from_edge_arrays(
            link_attr, link_social, num_attrs
        )
        attributes = FrozenBipartiteAttributeGraph(
            social.labels(),
            social._index,
            list(attr_labels),
            list(attr_info),
            sa_indptr,
            sa_indices,
            as_indptr,
            as_indices,
        )
        san = cls(social, attributes)
        if spill is not None:
            from .columnar import save_columnar, open_columnar

            save_columnar(san, spill)
            return open_columnar(spill, mmap_mode="r")
        return san

    # ------------------------------------------------------------------
    # Node queries
    # ------------------------------------------------------------------
    def is_social_node(self, node: Node) -> bool:
        return self.social.has_node(node)

    def is_attribute_node(self, node: Node) -> bool:
        return self.attributes.has_attribute_node(node)

    def social_nodes(self) -> Iterator[Node]:
        return self.social.nodes()

    def attribute_nodes(self) -> Iterator[Node]:
        return self.attributes.attribute_nodes()

    def number_of_social_nodes(self) -> int:
        return self.social.number_of_nodes()

    def number_of_attribute_nodes(self) -> int:
        return self.attributes.number_of_attribute_nodes()

    # ------------------------------------------------------------------
    # Edge queries
    # ------------------------------------------------------------------
    def has_social_edge(self, source: Node, target: Node) -> bool:
        return self.social.has_edge(source, target)

    def has_attribute_edge(self, social: Node, attribute: Node) -> bool:
        return self.attributes.has_link(social, attribute)

    def social_edges(self) -> Iterator[Edge]:
        return self.social.edges()

    def attribute_edges(self) -> Iterator[Tuple[Node, Node]]:
        return self.attributes.links()

    def number_of_social_edges(self) -> int:
        return self.social.number_of_edges()

    def number_of_attribute_edges(self) -> int:
        return self.attributes.number_of_links()

    # ------------------------------------------------------------------
    # Neighborhoods (paper notation)
    # ------------------------------------------------------------------
    def social_out_neighbors(self, node: Node) -> Set[Node]:
        """:math:`\\Gamma_{s,out}(u)`."""
        return self.social.successors(node)

    def social_in_neighbors(self, node: Node) -> Set[Node]:
        """:math:`\\Gamma_{s,in}(u)`."""
        return self.social.predecessors(node)

    def social_neighbors(self, node: Node) -> Set[Node]:
        """:math:`\\Gamma_s(u)` — social neighbors through either layer."""
        if self.social.has_node(node):
            return self.social.neighbors(node)
        if self.attributes.has_attribute_node(node):
            return self.attributes.members_of(node)
        raise NodeNotFoundError(node)

    def attribute_neighbors(self, node: Node) -> Set[Node]:
        """:math:`\\Gamma_a(u)` — attributes held by a social node."""
        return self.attributes.attributes_of(node)

    def common_attributes(self, first: Node, second: Node) -> Set[Node]:
        """Attributes shared by two social nodes (``a(u, v)`` in the paper)."""
        return self.attributes.common_attributes(first, second)

    def common_social_neighbors(self, first: Node, second: Node) -> Set[Node]:
        """Social neighbors (undirected view) shared by two social nodes."""
        i = self.social.index_of(first)
        j = self.social.index_of(second)
        labels = self.social.labels()
        shared = np.intersect1d(
            self.social.undirected_row(i),
            self.social.undirected_row(j),
            assume_unique=True,
        )
        return {labels[k] for k in shared}

    # ------------------------------------------------------------------
    # Degrees
    # ------------------------------------------------------------------
    def social_out_degree(self, node: Node) -> int:
        return self.social.out_degree(node)

    def social_in_degree(self, node: Node) -> int:
        return self.social.in_degree(node)

    def attribute_degree(self, node: Node) -> int:
        """Number of attributes declared by a social node."""
        return self.attributes.attribute_degree(node)

    def attribute_social_degree(self, attribute: Node) -> int:
        """Number of social nodes holding ``attribute``."""
        return self.attributes.social_degree(attribute)

    def attribute_type(self, attribute: Node) -> str:
        return self.attributes.attribute_type(attribute)

    def attribute_info(self, attribute: Node) -> AttributeInfo:
        return self.attributes.attribute_info(attribute)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def densities(self) -> Tuple[float, float]:
        """Return ``(social_density, attribute_density)``: |Es|/|Vs| and |Ea|/|Va|."""
        social_nodes = self.number_of_social_nodes()
        attribute_nodes = self.number_of_attribute_nodes()
        social_density = (
            self.number_of_social_edges() / social_nodes if social_nodes else 0.0
        )
        attribute_density = (
            self.number_of_attribute_edges() / attribute_nodes
            if attribute_nodes
            else 0.0
        )
        return social_density, attribute_density

    def summary(self) -> Dict[str, float]:
        """Compact size summary (same keys as ``SAN.summary``)."""
        social_density, attribute_density = self.densities()
        return {
            "social_nodes": self.number_of_social_nodes(),
            "attribute_nodes": self.number_of_attribute_nodes(),
            "social_edges": self.number_of_social_edges(),
            "attribute_edges": self.number_of_attribute_edges(),
            "social_density": social_density,
            "attribute_density": attribute_density,
        }

    def social_subgraph(self, nodes: Iterable[Node]) -> "FrozenSAN":
        """Induced SAN on a subset of social nodes, returned frozen.

        Attribute nodes are kept only if at least one retained social node
        still links to them (the ``SAN.social_subgraph`` contract).  Both
        layers are extracted directly from the CSR arrays — O(subset + its
        incident links).
        """
        keep = np.array(
            sorted(
                self.social.index_of(node)
                for node in set(nodes)
                if self.social.has_node(node)
            ),
            dtype=np.int64,
        )
        social = self.social._subgraph_of_ids(keep)
        new_index = {label: i for i, label in enumerate(social.labels())}
        attributes = self.attributes._restrict_to_social_ids(
            keep, social.labels(), new_index
        )
        return FrozenSAN(social, attributes)

    def thaw(self) -> SAN:
        """Rebuild a mutable :class:`SAN` with identical content."""
        san = SAN()
        for node in self.social_nodes():
            san.add_social_node(node)
        for source, target in self.social_edges():
            san.add_social_edge(source, target)
        for attribute in self.attribute_nodes():
            info = self.attribute_info(attribute)
            san.add_attribute_node(attribute, attr_type=info.attr_type, value=info.value)
        for social, attribute in self.attribute_edges():
            info = self.attribute_info(attribute)
            san.add_attribute_edge(
                social, attribute, attr_type=info.attr_type, value=info.value
            )
        return san

    def copy(self) -> "FrozenSAN":
        """Frozen SANs are immutable, so ``copy`` returns ``self``."""
        return self

    def freeze(self) -> "FrozenSAN":
        """Already frozen; returns ``self`` (idempotence mirror of ``SAN.freeze``)."""
        return self

    # ------------------------------------------------------------------
    # Refused mutations
    # ------------------------------------------------------------------
    def add_social_node(self, node: Node) -> None:
        raise FrozenGraphError("add_social_node", "FrozenSAN")

    def add_attribute_node(self, node: Node, attr_type: str = "generic", value=None) -> None:
        raise FrozenGraphError("add_attribute_node", "FrozenSAN")

    def add_social_edge(self, source: Node, target: Node) -> bool:
        raise FrozenGraphError("add_social_edge", "FrozenSAN")

    def add_attribute_edge(
        self, social: Node, attribute: Node, attr_type: str = "generic", value=None
    ) -> bool:
        raise FrozenGraphError("add_attribute_edge", "FrozenSAN")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrozenSAN(social_nodes={self.number_of_social_nodes()}, "
            f"attribute_nodes={self.number_of_attribute_nodes()}, "
            f"social_edges={self.number_of_social_edges()}, "
            f"attribute_edges={self.number_of_attribute_edges()})"
        )
