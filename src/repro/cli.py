"""Command-line interface for the SAN reproduction library.

Ten subcommands cover the common workflows without writing any Python:

* ``simulate``  — run the synthetic Google+ evolution and save the final SAN
  (or a chosen day's snapshot) as a TSV pair.
* ``measure``   — load a SAN from a TSV pair and print the paper's headline
  metrics (``--frozen`` compacts to the CSR backend first).
* ``report``    — the freeze-once pipeline: freeze the SAN a single time and
  run the full metric *and* algorithm battery (headline metrics plus exact
  clustering, triangles, and weak-component structure) on the frozen
  backend's vectorized kernels.
* ``estimate``  — estimate the generative-model parameters from a SAN file.
* ``generate``  — run the generative model (optionally with parameters
  estimated from a reference SAN) and save the synthetic SAN.
* ``likelihood`` — the Figure 15 sweep: score PA/PAPA/LAPA attachment models
  against observed link arrivals, either diffed from two SAN snapshots or
  from a freshly generated Algorithm 1 history.
* ``pipeline``  — reproduce the paper's whole evaluation (Figures 2-19 plus
  Sections 2.2/5.2) from one scenario config: every shared artifact is
  materialized exactly once, cached content-addressed on disk, and the
  stages run over the artifact DAG (optionally in parallel).
* ``validate``  — the fidelity regression gate: evaluate a scenario's
  checked-in answer key (``benchmarks/keys/<scenario>.json``) against the
  pipeline's stage payloads and fail loudly, naming each violated
  assertion.  Reuses the pipeline's artifact cache, so a warm rerun
  rebuilds nothing.
* ``convert``   — convert a SAN between the text formats and the versioned
  binary columnar format: a ``.col`` file mmaps open in O(header) time with
  zero parsing, so repeated loads of a large crawl cost nothing.  Also
  inspects existing columnar files (``--info``).
* ``lint``      — the invariant regression gate: run the AST-based rule
  catalog (seeded RNG, scipy containment, registry dispatch,
  content-derived caches, shared-memory hygiene, registry coherence,
  cache-token soundness, parallel-worker purity, seed-stream discipline,
  storage hygiene)
  over the library source and fail on any unsuppressed finding.  The
  runtime counterpart is ``pipeline --sanitize`` (or ``REPRO_SANITIZE=1``
  around any entry point), which checks backend parity, shared-view
  hygiene, NaN/Inf outputs, and artifact integrity on the live run.

Examples
--------
::

    python -m repro simulate --users 2000 --days 98 --out-prefix /tmp/gplus
    python -m repro measure --social /tmp/gplus.social.tsv --attributes /tmp/gplus.attrs.tsv
    python -m repro report --social /tmp/gplus.social.tsv --attributes /tmp/gplus.attrs.tsv
    python -m repro estimate --social /tmp/gplus.social.tsv --attributes /tmp/gplus.attrs.tsv
    python -m repro generate --steps 2000 --out-prefix /tmp/synthetic
    python -m repro likelihood --steps 2000 --max-links 1000
    python -m repro likelihood --before-social day40.social.tsv --before-attributes day40.attrs.tsv \
        --after-social day98.social.tsv --after-attributes day98.attrs.tsv
    repro pipeline --scenario paper-default --jobs 4 --cache-dir ~/.cache/repro --out results/
    repro pipeline --scenario tiny --figures fig04,fig15
    repro validate --scenario churn --cache-dir ~/.cache/repro --out validation/
    repro validate --all --cache-dir ~/.cache/repro
    repro convert --social /tmp/gplus.social.tsv --attributes /tmp/gplus.attrs.tsv \
        --out /tmp/gplus.col
    repro convert --info /tmp/gplus.col
    repro lint
    repro lint --rules R001,R004 --format json --out lint-findings.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .crawler import crawl_evolution
from .graph import SAN, load_san_tsv, save_san_tsv
from .metrics import format_report, frozen_san_report, san_metric_report
from .metrics.evolution import PhaseBoundaries
from .models import (
    DEFAULT_LIKELIHOOD_SEED,
    ArrivalHistory,
    SANModelParameters,
    estimate_parameters,
    figure15_sweep,
    generate_san_fast,
    san_generate,
)
from .synthetic import GooglePlusConfig, build_workload


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Social-Attribute Network measurement and modeling (IMC 2012 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser(
        "simulate", help="simulate a Google+-like evolution and save the crawled SAN"
    )
    simulate.add_argument("--users", type=int, default=2000, help="total users to simulate")
    simulate.add_argument("--days", type=int, default=98, help="number of simulated days")
    simulate.add_argument("--phase-one-end", type=int, default=20)
    simulate.add_argument("--phase-two-end", type=int, default=75)
    simulate.add_argument("--seed", type=int, default=20120835)
    simulate.add_argument("--day", type=int, default=None, help="snapshot day to save (default: last)")
    simulate.add_argument("--out-prefix", required=True, help="output prefix for <prefix>.social.tsv / <prefix>.attrs.tsv")

    measure = subparsers.add_parser("measure", help="print headline metrics of a SAN TSV pair")
    measure.add_argument("--social", required=True, help="social edge TSV (source<TAB>target)")
    measure.add_argument("--attributes", required=True, help="attribute TSV (user<TAB>type<TAB>value)")
    measure.add_argument("--no-diameter", action="store_true", help="skip the effective-diameter estimate")
    measure.add_argument(
        "--frozen",
        action="store_true",
        help="compact the SAN to the CSR-backed frozen backend before measuring "
        "(vectorized metric kernels; recommended for large graphs)",
    )
    measure.add_argument("--seed", type=int, default=0)

    report_help = (
        "freeze the SAN once, then run the full metric/algorithm battery "
        "(headline metrics + exact clustering, triangles, components) on the "
        "frozen backend's vectorized kernels"
    )
    report = subparsers.add_parser("report", help=report_help, description=report_help)
    report.add_argument("--social", required=True, help="social edge TSV (source<TAB>target)")
    report.add_argument("--attributes", required=True, help="attribute TSV (user<TAB>type<TAB>value)")
    report.add_argument("--no-diameter", action="store_true", help="skip the effective-diameter estimate")
    report.add_argument(
        "--out",
        default=None,
        help="also write the rendered report to this file",
    )
    report.add_argument("--seed", type=int, default=0)

    estimate = subparsers.add_parser(
        "estimate", help="estimate generative-model parameters from a SAN TSV pair"
    )
    estimate.add_argument("--social", required=True)
    estimate.add_argument("--attributes", required=True)
    estimate.add_argument("--mean-sleep", type=float, default=2.0)
    estimate.add_argument("--beta", type=float, default=200.0)

    generate = subparsers.add_parser(
        "generate", help="generate a synthetic SAN with the paper's model (Algorithm 1)"
    )
    generate.add_argument("--steps", type=int, default=2000, help="number of new social nodes")
    generate.add_argument("--seed", type=int, default=1)
    generate.add_argument("--reference-social", default=None, help="optional reference SAN to estimate parameters from")
    generate.add_argument("--reference-attributes", default=None)
    generate.add_argument("--no-lapa", action="store_true", help="ablation: classical PA instead of LAPA")
    generate.add_argument("--no-focal-closure", action="store_true", help="ablation: RR instead of RR-SAN")
    generate.add_argument(
        "--engine",
        choices=["auto", "vectorized", "loop"],
        default="auto",
        help="generation engine: the array-backed vectorized engine, the "
        "reference per-node loop, or auto (vectorized whenever its "
        "alpha = 1 requirement holds)",
    )
    generate.add_argument("--out-prefix", required=True)

    likelihood_help = (
        "score PA/PAPA/LAPA attachment models against observed link arrivals "
        "(the Figure 15 sweep): relative log-likelihood improvement over PA"
    )
    likelihood = subparsers.add_parser(
        "likelihood", help=likelihood_help, description=likelihood_help
    )
    likelihood.add_argument(
        "--steps",
        type=int,
        default=None,
        help="generate an Algorithm 1 history of this many steps to score "
        "(alternative to the snapshot-pair inputs below)",
    )
    likelihood.add_argument(
        "--before-social", default=None, help="earlier snapshot: social edge TSV"
    )
    likelihood.add_argument(
        "--before-attributes", default=None, help="earlier snapshot: attribute TSV"
    )
    likelihood.add_argument(
        "--after-social", default=None, help="later snapshot: social edge TSV"
    )
    likelihood.add_argument(
        "--after-attributes", default=None, help="later snapshot: attribute TSV"
    )
    likelihood.add_argument(
        "--engine",
        choices=["auto", "vectorized", "loop"],
        default="auto",
        help="likelihood engine: the array-backed vectorized backend, the "
        "reference replay loop, or auto (vectorized)",
    )
    likelihood.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_LIKELIHOOD_SEED,
        help="seed for the scored-link subsample (and the generated history "
        "with --steps); the default makes repeated runs agree exactly",
    )
    likelihood.add_argument(
        "--max-links",
        type=int,
        default=2000,
        help="number of links to score (uniform subsample); 0 scores all",
    )
    likelihood.add_argument("--smoothing", type=float, default=1.0)
    likelihood.add_argument(
        "--alphas", default="0,0.5,1,1.5,2", help="comma-separated alpha grid"
    )
    likelihood.add_argument(
        "--papa-betas", default="0,2,4,6,8", help="comma-separated PAPA beta grid"
    )
    likelihood.add_argument(
        "--lapa-betas",
        default="0,10,100,200,500",
        help="comma-separated LAPA beta grid",
    )
    likelihood.add_argument(
        "--out", default=None, help="also write the sweep as JSON to this file"
    )

    pipeline_help = (
        "reproduce the full figure suite (Figures 2-19, Sections 2.2/5.2) "
        "from one scenario config over the artifact DAG: shared inputs are "
        "materialized once, cached content-addressed on disk, and independent "
        "stages may run in parallel"
    )
    pipeline = subparsers.add_parser(
        "pipeline", help=pipeline_help, description=pipeline_help
    )
    pipeline.add_argument(
        "--scenario",
        default="paper-default",
        help="scenario preset (see --list for the registry)",
    )
    pipeline.add_argument(
        "--figures",
        default=None,
        help="comma-separated stage names to run (default: the full suite)",
    )
    pipeline.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="concurrent stage executions (stages are independent once the "
        "artifacts are materialized); with a cache dir, N jobs run on N "
        "worker processes, i.e. N cores",
    )
    pipeline.add_argument(
        "--executor",
        choices=("auto", "thread", "process"),
        default="auto",
        help="stage executor: 'process' uses a multi-core worker pool that "
        "rehydrates artifacts from the disk cache, 'thread' the legacy "
        "in-process pool; 'auto' (default) picks processes whenever "
        "--jobs > 1 and --cache-dir is set",
    )
    pipeline.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed artifact cache root; a warm cache reruns "
        "the whole suite without recomputing any artifact",
    )
    pipeline.add_argument(
        "--out",
        default=None,
        help="write manifest.json, report.txt and per-stage renderings here",
    )
    pipeline.add_argument(
        "--sanitize",
        action="store_true",
        help="arm the runtime sanitizer (REPRO_SANITIZE=1) for this run: "
        "dispatch-time backend-parity re-execution, read-only worker "
        "views, NaN/Inf screening, and artifact integrity re-hashing; "
        "roughly doubles kernel time and writes sanitizer_report.json "
        "next to the manifest when --out is set",
    )
    pipeline.add_argument(
        "--list",
        action="store_true",
        help="list the registered scenarios and stages, then exit",
    )

    validate_help = (
        "evaluate a scenario's checked-in answer key against the pipeline's "
        "stage payloads (the fidelity regression gate); exits 1 when any "
        "named assertion is violated"
    )
    validate = subparsers.add_parser(
        "validate", help=validate_help, description=validate_help
    )
    validate.add_argument(
        "--scenario",
        default=None,
        help="scenario preset to validate (see --list for keys on disk)",
    )
    validate.add_argument(
        "--all",
        action="store_true",
        help="validate every scenario that has a checked-in answer key",
    )
    validate.add_argument(
        "--keys-dir",
        default=None,
        help="answer-key directory (default: the repository's benchmarks/keys)",
    )
    validate.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker threads for stage execution",
    )
    validate.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed artifact cache root shared with `repro "
        "pipeline`; a warm cache validates without rebuilding any artifact",
    )
    validate.add_argument(
        "--out",
        default=None,
        help="write validation.json and validation.txt here "
        "(with --all: one subdirectory per scenario)",
    )
    validate.add_argument(
        "--list",
        action="store_true",
        help="list the scenarios with checked-in answer keys, then exit",
    )

    convert_help = (
        "convert a SAN (TSV pair or JSON) to the versioned binary columnar "
        "format, or inspect an existing columnar file; columnar files open "
        "via mmap in O(header) time with zero parsing"
    )
    convert = subparsers.add_parser(
        "convert", help=convert_help, description=convert_help
    )
    convert.add_argument("--social", default=None, help="social edge TSV (source<TAB>target)")
    convert.add_argument("--attributes", default=None, help="attribute TSV (user<TAB>type<TAB>value)")
    convert.add_argument("--json", dest="json_path", default=None, help="SAN JSON document (alternative to the TSV pair)")
    convert.add_argument("--out", default=None, help="columnar output path (conventionally <name>.col)")
    convert.add_argument(
        "--info",
        default=None,
        metavar="FILE",
        help="print the validated header summary of an existing columnar file and exit",
    )
    convert.add_argument(
        "--verify",
        action="store_true",
        help="after writing, reopen the file mmap-backed and check the arrays "
        "are bit-identical to the in-RAM graph",
    )

    from .lint.cli import add_parser as add_lint_parser

    add_lint_parser(subparsers)

    return parser


def _save(san: SAN, prefix: str) -> None:
    save_san_tsv(san, f"{prefix}.social.tsv", f"{prefix}.attrs.tsv")
    print(f"wrote {prefix}.social.tsv ({san.number_of_social_edges()} social links)")
    print(f"wrote {prefix}.attrs.tsv ({san.number_of_attribute_edges()} attribute links)")


def _command_simulate(args: argparse.Namespace) -> int:
    config = GooglePlusConfig(
        total_users=args.users,
        num_days=args.days,
        phases=PhaseBoundaries(args.phase_one_end, args.phase_two_end),
    )
    workload = build_workload(config, rng=args.seed, snapshot_count=14)
    day = args.day if args.day is not None else args.days
    if not 1 <= day <= args.days:
        print(f"error: --day must be in [1, {args.days}]", file=sys.stderr)
        return 2
    series = crawl_evolution(workload.evolution, [day])
    san = series.at(day)
    print(f"simulated {args.users} users over {args.days} days; crawled day {day}: {san!r}")
    _save(san, args.out_prefix)
    return 0


def _command_measure(args: argparse.Namespace) -> int:
    san = load_san_tsv(args.social, args.attributes, frozen=args.frozen)
    report = san_metric_report(
        san, include_diameter=not args.no_diameter, rng=args.seed
    )
    backend = "frozen backend" if args.frozen else "mutable backend"
    print(format_report(report, title=f"SAN metrics ({args.social}, {backend})"))
    return 0


def _command_report(args: argparse.Namespace) -> int:
    # The load itself performs the single freeze of the pipeline;
    # frozen_san_report's freeze() call is then the identity.
    san = load_san_tsv(args.social, args.attributes, frozen=True)
    report = frozen_san_report(
        san, include_diameter=not args.no_diameter, rng=args.seed
    )
    rendered = format_report(
        report, title=f"SAN full report ({args.social}, frozen once)"
    )
    print(rendered)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.out}")
    return 0


def _command_estimate(args: argparse.Namespace) -> int:
    san = load_san_tsv(args.social, args.attributes)
    result = estimate_parameters(san, mean_sleep=args.mean_sleep, beta=args.beta)
    params = result.parameters
    print("Estimated generative-model parameters:")
    print(f"  steps                    {params.steps}")
    print(f"  lifetime.mu              {params.lifetime.mu:.4f}")
    print(f"  lifetime.sigma           {params.lifetime.sigma:.4f}")
    print(f"  lifetime.mean_sleep      {params.lifetime.mean_sleep:.4f}")
    print(f"  attribute_mu             {params.attribute_mu:.4f}")
    print(f"  attribute_sigma          {params.attribute_sigma:.4f}")
    print(f"  new_attribute_probability {params.new_attribute_probability:.4f}")
    print(f"  attachment.alpha         {params.attachment.alpha:.2f}")
    print(f"  attachment.beta          {params.attachment.beta:.2f}")
    print(f"  reciprocation_probability {params.reciprocation_probability:.4f}")
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    from dataclasses import replace

    if args.reference_social and args.reference_attributes:
        reference = load_san_tsv(args.reference_social, args.reference_attributes)
        params = replace(estimate_parameters(reference).parameters, steps=args.steps)
    else:
        params = SANModelParameters(steps=args.steps)
    if args.no_lapa:
        params = replace(params, use_lapa=False)
    if args.no_focal_closure:
        params = replace(params, use_focal_closure=False)
    run = san_generate(params, rng=args.seed, engine=args.engine)
    print(f"generated {run.san!r}")
    _save(run.san, args.out_prefix)
    return 0


def _parse_grid(text: str, flag: str) -> List[float]:
    try:
        return [float(part) for part in text.split(",") if part.strip() != ""]
    except ValueError:
        raise SystemExit(f"error: {flag} expects comma-separated numbers, got {text!r}")


def _command_likelihood(args: argparse.Namespace) -> int:
    snapshot_flags = (
        args.before_social,
        args.before_attributes,
        args.after_social,
        args.after_attributes,
    )
    if args.steps is not None and any(flag is not None for flag in snapshot_flags):
        print(
            "error: --steps and the snapshot TSV flags are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if args.steps is not None:
        run = generate_san_fast(
            SANModelParameters(steps=args.steps), rng=args.seed, record_history=True
        )
        history = run.history()
        source = f"generated history ({args.steps} steps, seed {args.seed})"
    elif all(flag is not None for flag in snapshot_flags):
        earlier = load_san_tsv(args.before_social, args.before_attributes)
        later = load_san_tsv(args.after_social, args.after_attributes)
        history = ArrivalHistory.from_snapshots(earlier, later)
        source = f"snapshot diff ({args.before_social} -> {args.after_social})"
    else:
        print(
            "error: pass either --steps or all four snapshot TSVs "
            "(--before-social/--before-attributes/--after-social/--after-attributes)",
            file=sys.stderr,
        )
        return 2

    max_links = None if args.max_links <= 0 else args.max_links
    sweep = figure15_sweep(
        history,
        alphas=_parse_grid(args.alphas, "--alphas"),
        papa_betas=_parse_grid(args.papa_betas, "--papa-betas"),
        lapa_betas=_parse_grid(args.lapa_betas, "--lapa-betas"),
        smoothing=args.smoothing,
        max_links=max_links,
        rng=args.seed,
        engine=args.engine,
    )

    print(f"Figure 15 attachment-model sweep — {source}")
    print(
        f"engine={args.engine}  seed={args.seed}  "
        f"links scored={sweep['num_links_scored']}"
    )
    print(f"PA improvement over uniform: {sweep['pa_over_uniform']:+.4f}")
    print(f"{'family':<8} {'alpha':>6} {'beta':>8} {'improvement_over_pa':>20}")
    for family in ("papa", "lapa"):
        for (alpha, beta), improvement in sorted(sweep[family].items()):
            print(f"{family:<8} {alpha:>6g} {beta:>8g} {improvement:>+20.6f}")
    if args.out:
        payload = {
            "source": source,
            "engine": args.engine,
            "seed": args.seed,
            "num_links_scored": sweep["num_links_scored"],
            "pa_over_uniform": sweep["pa_over_uniform"],
            "papa": {f"{alpha:g},{beta:g}": value for (alpha, beta), value in sweep["papa"].items()},
            "lapa": {f"{alpha:g},{beta:g}": value for (alpha, beta), value in sweep["lapa"].items()},
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0


def _command_pipeline(args: argparse.Namespace) -> int:
    from .experiments import (
        UnknownArtifactError,
        UnknownExperimentError,
        UnknownScenarioError,
        experiment_stages,
        get_scenario,
        run_pipeline,
        scenario_names,
    )

    if args.list:
        print("scenarios:")
        for name in scenario_names():
            print(f"  {name:<18} {get_scenario(name).description}")
        print("stages:")
        for stage in experiment_stages().values():
            print(f"  {stage.name:<10} {stage.title}  [needs: {', '.join(stage.needs)}]")
        return 0

    if args.sanitize:
        from . import sanitize

        os.environ[sanitize.ENV_VAR] = "1"
        sanitize.reset_report()

    figures = None
    if args.figures:
        figures = [part.strip() for part in args.figures.split(",") if part.strip()]
    try:
        result = run_pipeline(
            args.scenario,
            figures=figures,
            jobs=max(1, args.jobs),
            cache_dir=args.cache_dir,
            out_dir=args.out,
            executor=args.executor,
            strict=False,
        )
    except (UnknownScenarioError, UnknownExperimentError, UnknownArtifactError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    manifest = result.manifest()
    print(
        f"pipeline scenario={result.scenario.name} jobs={result.jobs} "
        f"executor={result.executor} stages={len(result.stages)}"
    )
    print(f"{'artifact':<26} {'status':<8} {'seconds':>9}")
    for event in manifest["artifacts"]:
        status = event["status"] if event["persistent"] else "view"
        print(f"{event['name']:<26} {status:<8} {event['seconds']:>9.3f}")
    print(f"{'stage':<26} {'seconds':>9} {'cpu':>9}")
    for stage in manifest["stages"]:
        print(
            f"{stage['name']:<26} {stage['seconds']:>9.3f} "
            f"{stage['cpu_seconds']:>9.3f}"
        )
    cache = manifest["cache"]
    print(
        f"artifacts: {cache['hits']} cached, {cache['builds']} built, "
        f"{cache['views']} views; artifact time {manifest['artifact_seconds']:.3f}s; "
        f"total {manifest['total_seconds']:.3f}s"
    )
    if result.out_dir is not None:
        print(f"wrote {result.out_dir}/manifest.json and per-stage reports")
    if args.sanitize:
        from pathlib import Path

        from . import sanitize

        report = sanitize.report()
        parity = report["parity"]
        print(
            f"sanitizer: {parity['checked']} parity check(s), "
            f"{sum(parity['skipped'].values())} skipped, "
            f"{len(parity['divergences'])} divergence(s); "
            f"{report['artifacts']['verified']} artifact(s) verified"
        )
        if result.out_dir is not None:
            report_path = Path(result.out_dir) / "sanitizer_report.json"
            sanitize.write_report(report_path)
            print(f"wrote {report_path}")
    failures = result.failures()
    if failures:
        for name, error in sorted(failures.items()):
            print(f"stage failed: {name}: {error}", file=sys.stderr)
        print(
            f"{len(failures)} stage(s) failed; surviving results were written",
            file=sys.stderr,
        )
        return 1
    return 0


def _command_convert(args: argparse.Namespace) -> int:
    from .graph import columnar_info, load_san_json, open_columnar, save_columnar

    if args.info is not None:
        info = columnar_info(args.info)
        print(f"{args.info}: columnar v{info['version']} kind={info['kind']}")
        print(f"  file size   {info['file_size']} bytes (data at {info['data_start']})")
        counts = info["meta"].get("counts")
        if counts:
            print(
                "  counts      "
                + "  ".join(f"{key}={value}" for key, value in sorted(counts.items()))
            )
        print(f"  {'section':<22} {'offset':>10} {'dtype':<8} shape")
        for name, spec in info["sections"].items():
            print(
                f"  {name:<22} {spec['offset']:>10} {spec['dtype']:<8} "
                f"{tuple(spec['shape'])}"
            )
        return 0

    if args.out is None:
        print("error: pass --out <file.col> (or --info <file.col>)", file=sys.stderr)
        return 2
    if args.json_path is not None:
        if args.social or args.attributes:
            print(
                "error: --json and the TSV flags are mutually exclusive",
                file=sys.stderr,
            )
            return 2
        san = load_san_json(args.json_path, frozen=True)
        source = args.json_path
    elif args.social and args.attributes:
        san = load_san_tsv(args.social, args.attributes, frozen=True)
        source = args.social
    else:
        print(
            "error: pass --social/--attributes (TSV pair) or --json",
            file=sys.stderr,
        )
        return 2

    save_columnar(san, args.out)
    size = os.path.getsize(args.out)
    edges = san.number_of_social_edges() + san.number_of_attribute_edges()
    ratio = f" ({size / edges:.1f} bytes/edge)" if edges else ""
    print(f"wrote {args.out}: {size} bytes{ratio} from {source}")
    if args.verify:
        from .graph.columnar import _collect_sections

        import numpy as np

        reopened = open_columnar(args.out, mmap_mode="r")
        _, expected, _ = _collect_sections(san, None)
        _, observed, _ = _collect_sections(reopened, None)
        mismatched = [
            name
            for name in sorted(set(expected) | set(observed))
            if name not in expected
            or name not in observed
            or expected[name].dtype != observed[name].dtype
            or not np.array_equal(expected[name], observed[name])
        ]
        if mismatched:
            print(
                f"error: mmap reopen differs in section(s): {', '.join(mismatched)}",
                file=sys.stderr,
            )
            return 1
        print(f"verified: mmap reopen is bit-identical ({len(expected)} sections)")
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    from .lint.cli import run as lint_run

    return lint_run(args)


def _command_validate(args: argparse.Namespace) -> int:
    from .experiments import (
        AnswerKeyError,
        UnknownArtifactError,
        UnknownExperimentError,
        UnknownScenarioError,
        answer_key_names,
        answer_key_path,
        run_validation,
    )

    if args.list:
        print("scenarios with answer keys:")
        for name in answer_key_names(args.keys_dir):
            print(f"  {name:<18} {answer_key_path(name, args.keys_dir)}")
        return 0

    if args.all:
        names = answer_key_names(args.keys_dir)
        if not names:
            print("error: no answer keys found", file=sys.stderr)
            return 2
    elif args.scenario is not None:
        names = [args.scenario]
    else:
        print("error: pass --scenario <name> or --all", file=sys.stderr)
        return 2

    failures = 0
    for name in names:
        out_dir = args.out
        if out_dir is not None and len(names) > 1:
            out_dir = f"{args.out}/{name}"
        try:
            result = run_validation(
                name,
                keys_dir=args.keys_dir,
                jobs=max(1, args.jobs),
                cache_dir=args.cache_dir,
                out_dir=out_dir,
            )
        except (
            UnknownScenarioError,
            UnknownExperimentError,
            UnknownArtifactError,
            AnswerKeyError,
        ) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(result.rendered())
        if result.out_dir is not None:
            print(f"wrote {result.out_dir}/validation.json")
        if not result.passed:
            failures += 1
            violated = ", ".join(item.assertion.name for item in result.failures())
            print(
                f"error: scenario {name!r} violates answer-key "
                f"assertion(s): {violated}",
                file=sys.stderr,
            )
    return 1 if failures else 0


_COMMANDS = {
    "simulate": _command_simulate,
    "measure": _command_measure,
    "report": _command_report,
    "estimate": _command_estimate,
    "generate": _command_generate,
    "likelihood": _command_likelihood,
    "pipeline": _command_pipeline,
    "validate": _command_validate,
    "convert": _command_convert,
    "lint": _command_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
