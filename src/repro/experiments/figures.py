"""Per-figure experiment drivers.

Each ``figure*`` / ``section*`` function reproduces the computation behind one
figure (or in-text result) of the paper's evaluation and returns plain Python
data (dicts of series / tables) that the benchmark harness prints and
EXPERIMENTS.md records.  Inputs are the crawled snapshot series and the
ground-truth evolution produced by the synthetic Google+ substrate, plus
generated SANs for the model-evaluation figures.

Every driver doubles as a pipeline stage: the :func:`~.registry.experiment`
decorator declares which shared artifacts (:mod:`repro.experiments.artifacts`)
its leading positional arguments are, so ``repro pipeline`` can schedule the
whole suite over one artifact DAG.  Called directly, the functions behave as
before.  Sampled estimators default to the documented
:data:`~repro.experiments.scenarios.DEFAULT_FIGURE_SEED` (instead of system
entropy) so bare reruns are reproducible; pass ``rng=None`` explicitly to
sample from entropy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..applications.anonymity import AnonymityParameters, attack_probability_vs_compromised
from ..applications.sybil import SybilLimitParameters, sybil_identities_vs_compromised
from ..algorithms.sampling import subsample_attributes
from ..algorithms.triangles import classify_closures
from ..crawler.snapshots import SnapshotSeries
from ..fitting.mle import (
    fit_lognormal,
    fit_lognormal_parameters_over_time,
    fit_power_law,
    fit_power_law_exponent_over_time,
)
from ..fitting.model_selection import best_fit_name
from ..graph.san import SAN
from ..metrics.attribute_metrics import (
    attribute_clustering_by_type,
    attribute_clustering_distribution,
    social_clustering_distribution,
)
from ..metrics.degrees import (
    attribute_degrees_of_social_nodes,
    log_binned_degree_distribution,
    social_degrees_of_attribute_nodes,
    social_in_degrees,
    social_out_degrees,
)
from ..metrics.evolution import (
    assortativity_series,
    attribute_density_series,
    clustering_series,
    diameter_series,
    growth_series,
    reciprocity_series,
    social_density_series,
)
from ..metrics.influence import degree_by_top_attribute_values, reciprocity_boost_from_attributes
from ..metrics.joint_degree import attribute_knn, social_knn
from ..metrics.reciprocity import fine_grained_reciprocity
from ..models.history import ArrivalHistory
from ..models.likelihood import DEFAULT_LIKELIHOOD_SEED, figure15_sweep
from ..models.san_model import SANModelRun
from ..models.triangle_closing import evaluate_closure_models
from ..synthetic.gplus import GroundTruthEvolution
from ..utils.rng import RngLike, ensure_rng
from .registry import experiment
from .scenarios import DEFAULT_FIGURE_SEED

Snapshots = Sequence[Tuple[int, SAN]]


# ----------------------------------------------------------------------
# Section 2 / Figures 2-3: growth and crawl coverage
# ----------------------------------------------------------------------
# Growth reads O(1) counters only, so the plain snapshot views suffice —
# no need to materialise frozen CSR rebuilds for this stage.
@experiment("fig02_03", needs=("snapshots",))
def figure2_3_growth(snapshots: Snapshots) -> Dict[str, List[Tuple[int, float]]]:
    """Growth of social/attribute nodes and links over time."""
    return growth_series(snapshots)


@experiment("sec22", needs=("snapshot_series",))
def section22_crawl_coverage(series: SnapshotSeries) -> Dict[int, float]:
    """Crawl coverage per snapshot day (paper: >= 70%)."""
    return dict(series.coverage)


# ----------------------------------------------------------------------
# Figure 4: reciprocity, density, diameter, clustering evolution
# ----------------------------------------------------------------------
@experiment("fig04", needs=("frozen_snapshots",))
def figure4_evolution(
    snapshots: Snapshots,
    clustering_samples: int = 4000,
    diameter_precision: int = 6,
    rng: RngLike = DEFAULT_FIGURE_SEED,
) -> Dict[str, object]:
    """The four Figure 4 panels plus the Section 3.3 distance distribution."""
    generator = ensure_rng(rng)
    diameters = diameter_series(
        snapshots, precision=diameter_precision, num_attribute_pairs=60, rng=generator
    )
    return {
        "reciprocity": reciprocity_series(snapshots),
        "social_density": social_density_series(snapshots),
        "social_diameter": diameters["social"],
        "attribute_diameter": diameters["attribute"],
        "social_clustering": clustering_series(
            snapshots, kind="social", num_samples=clustering_samples, rng=generator
        ),
    }


# ----------------------------------------------------------------------
# Figures 5-6: social degree distributions and their lognormal fits
# ----------------------------------------------------------------------
@experiment("fig05", needs=("frozen_reference",))
def figure5_degree_distributions(san: SAN) -> Dict[str, object]:
    """Out/in-degree distributions with best-fit family and lognormal parameters."""
    result: Dict[str, object] = {}
    for name, degrees in (
        ("outdegree", social_out_degrees(san)),
        ("indegree", social_in_degrees(san)),
    ):
        positive = [d for d in degrees if d >= 1]
        lognormal = fit_lognormal(positive)
        power = fit_power_law(positive)
        result[name] = {
            "distribution": log_binned_degree_distribution(positive),
            "best_fit": best_fit_name(positive),
            "lognormal_mu": lognormal.distribution.mu,
            "lognormal_sigma": lognormal.distribution.sigma,
            "power_law_alpha": power.distribution.alpha,
            "lognormal_log_likelihood": lognormal.log_likelihood,
            "power_law_log_likelihood": power.log_likelihood,
        }
    return result


@experiment("fig06", needs=("frozen_snapshots",))
def figure6_lognormal_parameter_evolution(snapshots: Snapshots) -> Dict[str, List[Tuple[int, float, float]]]:
    """Evolution of the fitted lognormal (mu, sigma) for out/in degrees."""
    out_sequences = [(day, social_out_degrees(san)) for day, san in snapshots]
    in_sequences = [(day, social_in_degrees(san)) for day, san in snapshots]
    return {
        "outdegree": fit_lognormal_parameters_over_time(out_sequences),
        "indegree": fit_lognormal_parameters_over_time(in_sequences),
    }


# ----------------------------------------------------------------------
# Figures 7 and 12: joint degree distributions and assortativity
# ----------------------------------------------------------------------
@experiment("fig07", needs=("frozen_reference", "frozen_snapshots"))
def figure7_social_jdd(san: SAN, snapshots: Snapshots) -> Dict[str, object]:
    return {
        "knn": social_knn(san),
        "assortativity_evolution": assortativity_series(snapshots, kind="social"),
    }


@experiment("fig12", needs=("frozen_reference", "frozen_snapshots"))
def figure12_attribute_jdd(san: SAN, snapshots: Snapshots) -> Dict[str, object]:
    return {
        "knn": attribute_knn(san),
        "assortativity_evolution": assortativity_series(snapshots, kind="attribute"),
    }


# ----------------------------------------------------------------------
# Figures 8-9: attribute density / clustering structure
# ----------------------------------------------------------------------
@experiment("fig08", needs=("frozen_snapshots",))
def figure8_attribute_structure(
    snapshots: Snapshots,
    clustering_samples: int = 4000,
    rng: RngLike = DEFAULT_FIGURE_SEED,
) -> Dict[str, object]:
    generator = ensure_rng(rng)
    return {
        "attribute_density": attribute_density_series(snapshots),
        "attribute_clustering": clustering_series(
            snapshots, kind="attribute", num_samples=clustering_samples, rng=generator
        ),
    }


@experiment("fig09", needs=("frozen_reference",))
def figure9_clustering_distributions(
    san: SAN, subsample_keep: float = 0.5, rng: RngLike = DEFAULT_FIGURE_SEED
) -> Dict[str, object]:
    """Clustering coefficient vs degree, plus the Section 4.3 subsampling check."""
    generator = ensure_rng(rng)
    subsampled = subsample_attributes(san, keep_probability=subsample_keep, rng=generator)
    return {
        "social": social_clustering_distribution(san),
        "attribute": attribute_clustering_distribution(san),
        "attribute_subsampled": attribute_clustering_distribution(subsampled),
    }


# ----------------------------------------------------------------------
# Figures 10-11: attribute degree distributions and fits
# ----------------------------------------------------------------------
@experiment("fig10", needs=("frozen_reference",))
def figure10_attribute_degrees(san: SAN) -> Dict[str, object]:
    attribute_degrees = [d for d in attribute_degrees_of_social_nodes(san) if d >= 1]
    attribute_social = [d for d in social_degrees_of_attribute_nodes(san) if d >= 1]
    lognormal = fit_lognormal(attribute_degrees)
    power = fit_power_law(attribute_social)
    return {
        "attribute_degree": {
            "distribution": log_binned_degree_distribution(attribute_degrees),
            "best_fit": best_fit_name(attribute_degrees),
            "lognormal_mu": lognormal.distribution.mu,
            "lognormal_sigma": lognormal.distribution.sigma,
        },
        "attribute_social_degree": {
            "distribution": log_binned_degree_distribution(attribute_social),
            "best_fit": best_fit_name(attribute_social),
            "power_law_alpha": power.distribution.alpha,
        },
    }


@experiment("fig11", needs=("frozen_snapshots",))
def figure11_attribute_fit_evolution(snapshots: Snapshots) -> Dict[str, object]:
    attr_sequences = [(day, attribute_degrees_of_social_nodes(san)) for day, san in snapshots]
    social_sequences = [(day, social_degrees_of_attribute_nodes(san)) for day, san in snapshots]
    return {
        "attribute_degree_lognormal": fit_lognormal_parameters_over_time(attr_sequences),
        "attribute_social_degree_alpha": fit_power_law_exponent_over_time(social_sequences),
    }


# ----------------------------------------------------------------------
# Figures 13-14: influence of attributes on the social structure
# ----------------------------------------------------------------------
@experiment("fig13", needs=("halfway_san", "reference_san"))
def figure13_influence(earlier: SAN, later: SAN) -> Dict[str, object]:
    fine = fine_grained_reciprocity(earlier, later)
    return {
        "reciprocity_curves": {
            bucket: fine.series_for_attribute_bucket(bucket) for bucket in (0, 1, 2)
        },
        "reciprocity_by_bucket": {
            bucket: fine.average_rate_for_attribute_bucket(bucket) for bucket in (0, 1, 2)
        },
        "attribute_boost": reciprocity_boost_from_attributes(fine),
        "clustering_by_type": attribute_clustering_by_type(later),
    }


@experiment("fig14", needs=("reference_san",))
def figure14_degree_by_attribute_value(san: SAN, top_values: int = 4) -> Dict[str, object]:
    return {
        attr_type: [
            {
                "value": entry.value,
                "num_users": entry.num_users,
                "p25": entry.percentile_25,
                "median": entry.median,
                "p75": entry.percentile_75,
                "mean": entry.mean,
            }
            for entry in degree_by_top_attribute_values(san, attr_type, count=top_values)
        ]
        for attr_type in ("employer", "major")
    }


# ----------------------------------------------------------------------
# Figure 15 and Section 5.2: attachment and closure model comparisons
# ----------------------------------------------------------------------
@experiment("fig15", needs=("arrival_history",))
def figure15_attachment_comparison(
    history: ArrivalHistory,
    alphas: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0),
    papa_betas: Sequence[float] = (0.0, 2.0, 4.0, 6.0, 8.0),
    lapa_betas: Sequence[float] = (0.0, 10.0, 100.0, 200.0, 500.0),
    max_links: int = 1500,
    rng: RngLike = DEFAULT_LIKELIHOOD_SEED,
    engine: str = "auto",
) -> Dict[str, object]:
    return figure15_sweep(
        history,
        alphas=alphas,
        papa_betas=papa_betas,
        lapa_betas=lapa_betas,
        max_links=max_links,
        rng=rng,
        engine=engine,
    )


@experiment("sec52", needs=("evolution",))
def section52_closure_comparison(
    evolution: GroundTruthEvolution,
    split_day: Optional[int] = None,
    max_edges: int = 1500,
    focal_weight: float = 1.0,
    rng: RngLike = DEFAULT_FIGURE_SEED,
) -> Dict[str, object]:
    """Closure-type breakdown plus the Baseline / RR / RR-SAN comparison."""
    generator = ensure_rng(rng)
    if split_day is None:
        split_day = evolution.num_days // 2
    state = evolution.san_at(split_day)
    new_links = evolution.new_social_links_between(split_day, evolution.num_days)
    candidates = [
        (source, target)
        for source, target in new_links
        if state.is_social_node(source)
        and state.is_social_node(target)
        and not state.has_social_edge(source, target)
        and source != target
    ]
    breakdown = classify_closures(state, candidates)
    if len(candidates) > max_edges:
        candidates = [candidates[i] for i in sorted(generator.sample(range(len(candidates)), max_edges))]
    from ..models.triangle_closing import (
        BaselineClosing,
        RandomRandomClosing,
        RandomRandomSANClosing,
    )

    comparison = evaluate_closure_models(
        state,
        candidates,
        models=[
            BaselineClosing(),
            RandomRandomClosing(),
            RandomRandomSANClosing(attribute_weight=focal_weight),
        ],
    )
    return {
        "breakdown": {
            "total": breakdown.total,
            "triadic_fraction": breakdown.triadic_fraction,
            "focal_fraction": breakdown.focal_fraction,
            "both_fraction": breakdown.both_fraction,
        },
        "average_log_probabilities": comparison.average_log_probabilities,
        "rr_vs_baseline_improvement": comparison.relative_improvement(
            "random_random", "baseline"
        ),
        "rr_san_vs_rr_improvement": comparison.relative_improvement(
            "rr_san", "random_random"
        ),
        "num_edges_scored": comparison.num_edges_scored,
    }


# ----------------------------------------------------------------------
# Figures 16-18: model vs Zhel vs ablations on network metrics
# ----------------------------------------------------------------------
def _degree_fit_summary(san: SAN) -> Dict[str, object]:
    summary: Dict[str, object] = {}
    for name, degrees in (
        ("outdegree", social_out_degrees(san)),
        ("indegree", social_in_degrees(san)),
        ("attribute_degree", attribute_degrees_of_social_nodes(san)),
        ("attribute_social_degree", social_degrees_of_attribute_nodes(san)),
    ):
        positive = [d for d in degrees if d >= 1]
        if len(positive) < 10:
            summary[name] = {"best_fit": "insufficient_data"}
            continue
        lognormal = fit_lognormal(positive)
        power = fit_power_law(positive)
        summary[name] = {
            "best_fit": best_fit_name(positive),
            "lognormal_mu": lognormal.distribution.mu,
            "lognormal_sigma": lognormal.distribution.sigma,
            "power_law_alpha": power.distribution.alpha,
            "lognormal_minus_power_ll": lognormal.log_likelihood - power.log_likelihood,
        }
    return summary


@experiment("fig16", needs=("frozen_reference", "frozen_model_san", "frozen_zhel_san"))
def figure16_model_degree_distributions(
    reference: SAN, model_san: SAN, zhel_san: SAN
) -> Dict[str, object]:
    """Degree-distribution fits for the reference, our model, and Zhel."""
    return {
        "reference": _degree_fit_summary(reference),
        "san_model": _degree_fit_summary(model_san),
        "zhel": _degree_fit_summary(zhel_san),
    }


@experiment("fig17", needs=("frozen_model_san", "frozen_zhel_san", "frozen_reference"))
def figure17_jdd_and_clustering(model_san: SAN, zhel_san: SAN, reference: SAN) -> Dict[str, object]:
    return {
        "reference": {
            "attribute_knn": attribute_knn(reference),
            "social_clustering": social_clustering_distribution(reference),
            "attribute_clustering": attribute_clustering_distribution(reference),
        },
        "san_model": {
            "attribute_knn": attribute_knn(model_san),
            "social_clustering": social_clustering_distribution(model_san),
            "attribute_clustering": attribute_clustering_distribution(model_san),
        },
        "zhel": {
            "attribute_knn": attribute_knn(zhel_san),
            "social_clustering": social_clustering_distribution(zhel_san),
            "attribute_clustering": attribute_clustering_distribution(zhel_san),
        },
    }


@experiment("fig18", needs=("frozen_model_san", "frozen_model_no_lapa_san", "frozen_model_no_focal_san"))
def figure18_ablations(
    full_run: Union[SANModelRun, SAN], no_lapa_san: SAN, no_focal_san: SAN
) -> Dict[str, object]:
    """Effect of removing LAPA (in-degree family) and focal closure (attribute clustering).

    ``full_run`` may be a :class:`~repro.models.san_model.SANModelRun` (the
    historical signature) or a bare SAN (the pipeline's ``model_san``
    artifact); only the generated SAN is consulted either way.
    """
    full_san = getattr(full_run, "san", full_run)

    def indegree_fits(san: SAN) -> Dict[str, float]:
        degrees = [d for d in social_in_degrees(san) if d >= 1]
        lognormal = fit_lognormal(degrees)
        power = fit_power_law(degrees)
        return {
            "best_fit": best_fit_name(degrees),
            "lognormal_minus_power_ll": lognormal.log_likelihood - power.log_likelihood,
        }

    def mean_attribute_clustering(san: SAN) -> float:
        points = attribute_clustering_distribution(san)
        if not points:
            return 0.0
        return sum(value for _, value in points) / len(points)

    return {
        "full": {
            "indegree": indegree_fits(full_san),
            "mean_attribute_clustering": mean_attribute_clustering(full_san),
        },
        "without_lapa": {
            "indegree": indegree_fits(no_lapa_san),
            "mean_attribute_clustering": mean_attribute_clustering(no_lapa_san),
        },
        "without_focal_closure": {
            "indegree": indegree_fits(no_focal_san),
            "mean_attribute_clustering": mean_attribute_clustering(no_focal_san),
        },
    }


# ----------------------------------------------------------------------
# Figure 19: application fidelity
# ----------------------------------------------------------------------
@experiment("fig19", needs=("frozen_reference", "frozen_model_san", "frozen_zhel_san", "frozen_model_no_focal_san"))
def figure19_applications(
    reference: SAN,
    model_san: SAN,
    zhel_san: SAN,
    model_no_focal_san: Optional[SAN] = None,
    compromised_counts: Optional[Sequence[int]] = None,
    rng: RngLike = DEFAULT_FIGURE_SEED,
) -> Dict[str, object]:
    """SybilLimit and anonymous-communication comparisons across topologies."""
    generator = ensure_rng(rng)
    if compromised_counts is None:
        size = reference.number_of_social_nodes()
        compromised_counts = [max(1, int(size * fraction)) for fraction in (0.01, 0.02, 0.05, 0.1)]
    topologies: Dict[str, SAN] = {
        "google_plus": reference,
        "san_model_fc": model_san,
        "zhel": zhel_san,
    }
    if model_no_focal_san is not None:
        topologies["san_model_fc0"] = model_no_focal_san

    sybil_params = SybilLimitParameters()
    anonymity_params = AnonymityParameters(num_circuits=1500)
    sybil: Dict[str, List[Tuple[int, float]]] = {}
    anonymity: Dict[str, List[Tuple[int, float]]] = {}
    for name, san in topologies.items():
        sybil[name] = [
            (result.num_compromised, result.num_sybil_identities)
            for result in sybil_identities_vs_compromised(
                san, compromised_counts, params=sybil_params, rng=generator
            )
        ]
        anonymity[name] = [
            (result.num_compromised, result.attack_probability)
            for result in attack_probability_vs_compromised(
                san, compromised_counts, params=anonymity_params, rng=generator
            )
        ]

    def relative_error(series: Dict[str, List[Tuple[int, float]]], candidate: str) -> float:
        reference_values = [value for _, value in series["google_plus"]]
        candidate_values = [value for _, value in series[candidate]]
        errors = []
        for ref, cand in zip(reference_values, candidate_values):
            if ref > 0:
                errors.append(abs(cand - ref) / ref)
        return sum(errors) / len(errors) if errors else 0.0

    errors = {
        "sybil": {name: relative_error(sybil, name) for name in topologies if name != "google_plus"},
        "anonymity": {
            name: relative_error(anonymity, name) for name in topologies if name != "google_plus"
        },
    }
    return {"sybil": sybil, "anonymity": anonymity, "relative_errors": errors}
