"""Typed pipeline artifacts with a content-addressed on-disk cache.

The paper's evaluation is one campaign over a handful of shared inputs: a
simulated ground-truth evolution, a crawled snapshot series, frozen snapshot
views, a reference SAN, an arrival history, estimated parameters, and a few
generated model SANs.  This module declares each of those as an *artifact
node* — a named builder with declared dependencies, an optional on-disk
representation, and a version tag::

    @artifact("reference_san", needs=("snapshot_series",),
              save=_save_san, load=_load_san)
    def _build_reference_san(resolver): ...

An :class:`ArtifactResolver` materialises artifacts on demand for one
scenario: every artifact is built at most once per run (memory sharing), and
persistent artifacts are written to / read from an :class:`ArtifactStore`
under a **content-addressed key** — the hash of the scenario's
:meth:`~repro.experiments.scenarios.Scenario.cache_token`, the artifact's
recipe version, and (recursively) the keys of its dependencies.  Changing the
scenario, bumping a recipe version, or invalidating any upstream artifact
therefore re-keys — and rebuilds — everything downstream, while a warm cache
reruns the full figure suite without recomputing a single artifact.

Persistence goes through :mod:`repro.graph.serialization` (SAN JSON
documents) for mutable inputs and :mod:`repro.graph.columnar` (binary
columnar files, served as ``np.memmap`` views on warm hits) for frozen
graphs, and every frozen artifact is built with :func:`canonical_frozen`
— a sorted rebuild that makes the CSR view a pure function of the graph's
*content* rather than of the source object's set-insertion history.  Cold,
warm, and naive (per-figure re-derivation) runs of the same scenario are
therefore byte-identical, stage for stage.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..crawler.snapshots import SnapshotSeries, crawl_evolution
from ..graph.columnar import open_columnar, save_columnar
from ..graph.serialization import load_san_json, save_san_json
from ..models.estimation import estimate_parameters
from ..models.history import ArrivalEvent, ArrivalHistory
from ..models.parameters import (
    AttachmentParameters,
    LifetimeParameters,
    SANModelParameters,
    ZhelModelParameters,
)
from ..models.san_model import generate_san
from ..models.zhel import generate_zhel_san
from ..synthetic.gplus import GroundTruthEvolution, TimedEvent, simulate_google_plus
from ..metrics.evolution import PhaseBoundaries

PathLike = Union[str, Path]


class ArtifactError(Exception):
    """Base class for artifact-layer errors."""


class UnknownArtifactError(ArtifactError, KeyError):
    """No artifact is registered under the requested name."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:
        return (
            f"unknown artifact {self.name!r}; "
            f"known artifacts: {', '.join(artifact_names())}"
        )


class ArtifactCycleError(ArtifactError, ValueError):
    """The artifact dependency graph contains a cycle."""


@dataclass(frozen=True)
class ArtifactSpec:
    """One artifact node: builder, dependencies, optional disk format."""

    name: str
    builder: Callable[["ArtifactResolver"], Any]
    needs: Tuple[str, ...] = ()
    #: Bump to invalidate every cache entry of this artifact (and, because
    #: keys chain through ``needs``, of everything downstream of it).
    version: str = "1"
    save: Optional[Callable[[Any, Path], None]] = None
    load: Optional[Callable[[Path], Any]] = None

    @property
    def persistent(self) -> bool:
        """Whether this artifact has an on-disk representation.

        Non-persistent artifacts are cheap in-memory views (e.g. the frozen
        reference SAN) rebuilt from their cached parents on every run.
        """
        return self.save is not None and self.load is not None


#: name -> spec, in registration order (roughly dependency order).
_ARTIFACTS: Dict[str, ArtifactSpec] = {}


def register_artifact(
    name: str,
    builder: Callable[["ArtifactResolver"], Any],
    needs: Sequence[str] = (),
    version: str = "1",
    save: Optional[Callable[[Any, Path], None]] = None,
    load: Optional[Callable[[Path], Any]] = None,
) -> ArtifactSpec:
    """Register an artifact node (functional form of :func:`artifact`)."""
    spec = ArtifactSpec(
        name=name,
        builder=builder,
        needs=tuple(needs),
        version=version,
        save=save,
        load=load,
    )
    _ARTIFACTS[name] = spec
    return spec


def artifact(
    name: str,
    needs: Sequence[str] = (),
    version: str = "1",
    save: Optional[Callable[[Any, Path], None]] = None,
    load: Optional[Callable[[Path], Any]] = None,
) -> Callable[[Callable[["ArtifactResolver"], Any]], Callable[["ArtifactResolver"], Any]]:
    """Decorator: register the function as the builder of artifact ``name``."""

    def decorator(builder: Callable[["ArtifactResolver"], Any]):
        register_artifact(name, builder, needs=needs, version=version, save=save, load=load)
        return builder

    return decorator


def unregister_artifact(name: str) -> None:
    """Remove a registered artifact (test hook; unknown names are ignored)."""
    _ARTIFACTS.pop(name, None)


def artifact_spec(name: str) -> ArtifactSpec:
    """The registered spec of artifact ``name``."""
    try:
        return _ARTIFACTS[name]
    except KeyError:
        raise UnknownArtifactError(name) from None


def artifact_names() -> List[str]:
    """Names of every registered artifact, in registration order."""
    return list(_ARTIFACTS)


def artifact_topological_order(names: Sequence[str]) -> List[str]:
    """Dependency-closed topological order of ``names`` (deps first).

    Raises :class:`UnknownArtifactError` for undeclared dependencies and
    :class:`ArtifactCycleError` when the dependency graph has a cycle.
    """
    order: List[str] = []
    done: Set[str] = set()
    in_progress: Set[str] = set()

    def visit(name: str, chain: Tuple[str, ...]) -> None:
        if name in done:
            return
        if name in in_progress:
            cycle = " -> ".join(chain + (name,))
            raise ArtifactCycleError(f"artifact dependency cycle: {cycle}")
        in_progress.add(name)
        for dep in artifact_spec(name).needs:
            visit(dep, chain + (name,))
        in_progress.discard(name)
        done.add(name)
        order.append(name)

    for name in names:
        visit(name, ())
    return order


# ----------------------------------------------------------------------
# On-disk store
# ----------------------------------------------------------------------
_MARKER = "ARTIFACT.json"


def _payload_bytes(entry: Path) -> int:
    """Total size of an entry's payload files (everything but the marker)."""
    return sum(
        path.stat().st_size
        for path in sorted(entry.rglob("*"))
        if path.is_file() and path.name != _MARKER
    )


def _recorded_payload_bytes(entry: Path) -> int:
    """Payload size from the entry marker (re-measured for pre-size entries)."""
    try:
        recorded = json.loads((entry / _MARKER).read_text(encoding="utf-8")).get(
            "payload_bytes"
        )
    except (OSError, json.JSONDecodeError):
        recorded = None
    return int(recorded) if recorded is not None else _payload_bytes(entry)


class ArtifactStore:
    """Content-addressed artifact directory: ``<root>/<name>-<key>/``.

    Each entry is a directory written atomically (build into ``*.tmp``, then
    rename) and finalised with an ``ARTIFACT.json`` marker, so a crashed
    writer never leaves a half-entry that reads as a cache hit.
    """

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)

    def entry_path(self, name: str, key: str) -> Path:
        return self.root / f"{name}-{key}"

    def has(self, name: str, key: str) -> bool:
        return (self.entry_path(name, key) / _MARKER).is_file()

    def write(
        self,
        name: str,
        key: str,
        save: Callable[[Any, Path], None],
        value: Any,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Persist ``value`` under ``(name, key)`` atomically.

        Each writer stages into its own private temp directory (so
        concurrent processes racing on the same entry never touch each
        other's half-written files) and commits with a single rename.  If
        another writer finalised the entry first, this writer's staging is
        simply discarded — the content is addressed by ``key``, so both
        copies are identical.
        """
        final = self.entry_path(name, key)
        self.root.mkdir(parents=True, exist_ok=True)
        staging = Path(
            tempfile.mkdtemp(prefix=f".{final.name}.staging-", dir=self.root)
        )
        try:
            save(value, staging)
            from .. import sanitize

            # Recorded unconditionally (hashing at write time is cheap next
            # to building).  Warm hits deliberately do NOT re-hash: for a
            # multi-hundred-MB columnar graph that eager read would cost more
            # than the load it guards, so integrity verification happens only
            # under REPRO_SANITIZE=1 (see ArtifactResolver.artifact).
            marker = {
                "artifact": name,
                "key": key,
                "payload_sha256": sanitize.hash_payload(staging),
                "payload_bytes": _payload_bytes(staging),
                **(metadata or {}),
            }
            (staging / _MARKER).write_text(
                json.dumps(marker, indent=2, sort_keys=True) + "\n", encoding="utf-8"
            )
            if final.exists() and not self.has(name, key):
                shutil.rmtree(final)  # crash leftover: unmarked, never a hit
            try:
                os.replace(staging, final)
            except OSError:
                if not self.has(name, key):
                    raise
                shutil.rmtree(staging)  # lost the race to an identical entry
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        return final

    def entries(self) -> List[Path]:
        """Every finalised entry directory currently in the store."""
        if not self.root.is_dir():
            return []
        return sorted(
            path for path in self.root.iterdir() if (path / _MARKER).is_file()
        )


# ----------------------------------------------------------------------
# Resolver
# ----------------------------------------------------------------------
@dataclass
class ArtifactEvent:
    """How one artifact was materialised during a run (for the manifest)."""

    name: str
    key: str
    status: str  # "built" or "cached"
    persistent: bool
    seconds: float
    #: On-disk payload size (persistent artifacts; 0 for memory views).
    bytes: int = 0


class ArtifactResolver:
    """Materialise artifacts for one scenario, each at most once per run.

    Without a ``cache_dir`` the resolver shares artifacts in memory only;
    with one, persistent artifacts round-trip through the content-addressed
    :class:`ArtifactStore`, so a second resolver over the same scenario loads
    every expensive input instead of recomputing it.
    """

    def __init__(self, scenario, cache_dir: Optional[PathLike] = None) -> None:
        self.scenario = scenario
        self.store = ArtifactStore(cache_dir) if cache_dir is not None else None
        self.events: List[ArtifactEvent] = []
        self._memory: Dict[str, Any] = {}
        self._keys: Dict[str, str] = {}
        self._resolving: Set[str] = set()

    # -- content-addressed keys ------------------------------------------
    def key(self, name: str) -> str:
        """Content-addressed cache key of ``name`` under this scenario."""
        cached = self._keys.get(name)
        if cached is not None:
            return cached
        spec = artifact_spec(name)
        if name in self._resolving:
            chain = " -> ".join(sorted(self._resolving) + [name])
            raise ArtifactCycleError(f"artifact dependency cycle involving: {chain}")
        self._resolving.add(name)
        try:
            payload = {
                "artifact": name,
                "version": spec.version,
                "scenario": self.scenario.cache_token(),
                "needs": {dep: self.key(dep) for dep in spec.needs},
            }
        finally:
            self._resolving.discard(name)
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
        ).hexdigest()[:16]
        self._keys[name] = digest
        return digest

    # -- resolution -------------------------------------------------------
    def artifact(self, name: str) -> Any:
        """The materialised artifact ``name`` (build, load, or memory hit)."""
        if name in self._memory:
            return self._memory[name]
        spec = artifact_spec(name)
        key = self.key(name)
        # repro: lint-ignore[R004] -- build timing for the manifest's
        # ArtifactEvent.seconds; it never enters a cache key or payload
        started = time.perf_counter()
        payload_bytes = 0
        if self.store is not None and spec.persistent and self.store.has(name, key):
            entry = self.store.entry_path(name, key)
            from .. import sanitize

            if sanitize.enabled():
                try:
                    recorded = json.loads(
                        (entry / _MARKER).read_text(encoding="utf-8")
                    ).get("payload_sha256")
                except (OSError, json.JSONDecodeError):
                    recorded = None
                sanitize.verify_artifact_payload(name, key, entry, recorded)
            value = spec.load(entry)
            status = "cached"
            payload_bytes = _recorded_payload_bytes(entry)
        else:
            value = spec.builder(self)
            status = "built"
            if self.store is not None and spec.persistent:
                entry = self.store.write(
                    name,
                    key,
                    spec.save,
                    value,
                    metadata={
                        "scenario": self.scenario.name,
                        "version": spec.version,
                    },
                )
                payload_bytes = _recorded_payload_bytes(entry)
        self.events.append(
            ArtifactEvent(
                name=name,
                key=key,
                status=status,
                persistent=spec.persistent,
                # repro: lint-ignore[R004] -- manifest timing, not key material
                seconds=time.perf_counter() - started,
                bytes=payload_bytes,
            )
        )
        self._memory[name] = value
        return value

    def resolve_all(self, names: Sequence[str]) -> Dict[str, Any]:
        """Materialise ``names`` (and their dependencies) in topological order."""
        return {name: self.artifact(name) for name in artifact_topological_order(names)}


def canonical_frozen(san):
    """A canonical CSR-backed frozen view of ``san`` (mutable or frozen).

    The frozen backend preserves the *insertion order* of its source, and the
    mutable backend's set-based adjacency makes that order a function of the
    object's construction history, not just its content.  Rebuilding in
    sorted order first makes the frozen view a pure function of the graph's
    content — so a freshly built artifact and its cache-loaded round trip
    yield byte-identical frozen views, and every downstream sampled estimator
    draws identical populations.
    """
    from ..graph.san import SAN

    rebuilt = SAN()
    for node in sorted(san.social_nodes(), key=str):
        rebuilt.add_social_node(node)
    for source, target in sorted(
        san.social_edges(), key=lambda edge: (str(edge[0]), str(edge[1]))
    ):
        rebuilt.add_social_edge(source, target)
    for social, attribute in sorted(
        san.attribute_edges(), key=lambda edge: (str(edge[1]), str(edge[0]))
    ):
        info = san.attribute_info(attribute)
        rebuilt.add_attribute_edge(
            social, attribute, attr_type=info.attr_type, value=info.value
        )
    from ..graph.columnar import maybe_spill

    return maybe_spill(rebuilt.freeze())


# ----------------------------------------------------------------------
# Serialization helpers (all order-preserving)
# ----------------------------------------------------------------------
def _save_san(san, path: Path) -> None:
    save_san_json(san, path / "san.json")


def _save_frozen_san(san, path: Path) -> None:
    save_columnar(san, path / "san.col")


def _load_frozen_san(path: Path):
    # Served copy-free: the CSR arrays are np.memmap views of the cache
    # entry itself, so a warm hit costs one header parse, not an edge scan.
    return open_columnar(path / "san.col", mmap_mode="r")


def _save_frozen_snapshot_list(snapshots, path: Path) -> None:
    days = []
    for day, san in snapshots:
        save_columnar(san, path / f"day-{day:05d}.col")
        days.append(day)
    (path / "days.json").write_text(json.dumps(days), encoding="utf-8")


def _load_frozen_snapshot_list(path: Path):
    days = json.loads((path / "days.json").read_text(encoding="utf-8"))
    return [
        (day, open_columnar(path / f"day-{day:05d}.col", mmap_mode="r"))
        for day in days
    ]


def _load_san(path: Path):
    return load_san_json(path / "san.json")


def _event_to_json(event: ArrivalEvent) -> Dict[str, Any]:
    return {
        "kind": event.kind,
        "first": event.first,
        "second": event.second,
        "attr_type": event.attr_type,
        "value": event.value,
    }


def _event_from_json(record: Dict[str, Any]) -> ArrivalEvent:
    return ArrivalEvent(
        kind=record["kind"],
        first=record["first"],
        second=record["second"],
        attr_type=record.get("attr_type", "generic"),
        value=record.get("value"),
    )


def _save_evolution(evolution: GroundTruthEvolution, path: Path) -> None:
    document = {
        "num_days": evolution.num_days,
        "phases": {
            "phase_one_end": evolution.phases.phase_one_end,
            "phase_two_end": evolution.phases.phase_two_end,
        },
        # Lists of pairs (not JSON objects) so integer node ids survive the
        # round trip without a string conversion.
        "join_day": [[node, day] for node, day in evolution.join_day.items()],
        "profiles": [[node, profile] for node, profile in evolution.profiles.items()],
        "sybil_nodes": list(evolution.sybil_nodes),
        "events": [
            {"day": timed.day, **_event_to_json(timed.event)}
            for timed in evolution.events
        ],
    }
    (path / "evolution.json").write_text(
        json.dumps(document), encoding="utf-8"
    )


def _load_evolution(path: Path) -> GroundTruthEvolution:
    document = json.loads((path / "evolution.json").read_text(encoding="utf-8"))
    return GroundTruthEvolution(
        events=[
            TimedEvent(day=record["day"], event=_event_from_json(record))
            for record in document["events"]
        ],
        num_days=document["num_days"],
        join_day={node: day for node, day in document["join_day"]},
        profiles={node: profile for node, profile in document["profiles"]},
        phases=PhaseBoundaries(**document["phases"]),
        sybil_nodes=list(document.get("sybil_nodes", [])),
    )


def _save_snapshot_list(snapshots, path: Path) -> None:
    days = []
    for day, san in snapshots:
        save_san_json(san, path / f"day-{day:05d}.json")
        days.append(day)
    (path / "days.json").write_text(json.dumps(days), encoding="utf-8")


def _load_snapshot_list(path: Path):
    days = json.loads((path / "days.json").read_text(encoding="utf-8"))
    return [(day, load_san_json(path / f"day-{day:05d}.json")) for day in days]


def _save_snapshot_series(series: SnapshotSeries, path: Path) -> None:
    _save_snapshot_list(series.snapshots, path)
    (path / "coverage.json").write_text(
        json.dumps([[day, value] for day, value in series.coverage.items()]),
        encoding="utf-8",
    )


def _load_snapshot_series(path: Path) -> SnapshotSeries:
    coverage = json.loads((path / "coverage.json").read_text(encoding="utf-8"))
    return SnapshotSeries(
        snapshots=_load_snapshot_list(path),
        coverage={day: value for day, value in coverage},
    )


def _save_history(history: ArrivalHistory, path: Path) -> None:
    save_san_json(history.initial, path / "initial.json")
    (path / "events.json").write_text(
        json.dumps([_event_to_json(event) for event in history.events]),
        encoding="utf-8",
    )


def _load_history(path: Path) -> ArrivalHistory:
    events = json.loads((path / "events.json").read_text(encoding="utf-8"))
    return ArrivalHistory(
        initial=load_san_json(path / "initial.json"),
        events=[_event_from_json(record) for record in events],
    )


def _save_parameters(params: SANModelParameters, path: Path) -> None:
    document = {
        "steps": params.steps,
        "arrivals_per_step": params.arrivals_per_step,
        "attribute_mu": params.attribute_mu,
        "attribute_sigma": params.attribute_sigma,
        "new_attribute_probability": params.new_attribute_probability,
        "attachment": {
            "alpha": params.attachment.alpha,
            "beta": params.attachment.beta,
            "smoothing": params.attachment.smoothing,
            "type_weights": params.attachment.type_weights,
        },
        "lifetime": {
            "mu": params.lifetime.mu,
            "sigma": params.lifetime.sigma,
            "mean_sleep": params.lifetime.mean_sleep,
        },
        "focal_weight": params.focal_weight,
        "reciprocation_probability": params.reciprocation_probability,
        "seed_social_nodes": params.seed_social_nodes,
        "seed_attribute_nodes": params.seed_attribute_nodes,
        "use_lapa": params.use_lapa,
        "use_focal_closure": params.use_focal_closure,
    }
    (path / "parameters.json").write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _load_parameters(path: Path) -> SANModelParameters:
    document = json.loads((path / "parameters.json").read_text(encoding="utf-8"))
    attachment = AttachmentParameters(**document.pop("attachment"))
    lifetime = LifetimeParameters(**document.pop("lifetime"))
    return SANModelParameters(attachment=attachment, lifetime=lifetime, **document)


# ----------------------------------------------------------------------
# The artifact DAG
# ----------------------------------------------------------------------
@artifact("evolution", version="1", save=_save_evolution, load=_load_evolution)
def _build_evolution(resolver: ArtifactResolver) -> GroundTruthEvolution:
    """The simulated Google+ ground truth of the scenario."""
    scenario = resolver.scenario
    return simulate_google_plus(scenario.config, rng=scenario.seed)


#: First-crawl seed count under a privacy regime.  A single seed can hide its
#: links and strand the whole series (later crawls re-seed from the previous
#: visited set); ten early joiners make that failure mode vanishingly rare
#: while matching the paper's multi-seed crawl methodology.
_PRIVACY_CRAWL_SEEDS = 10


def _earliest_joiners(evolution: GroundTruthEvolution, count: int):
    """The first ``count`` users by join day (label as the tiebreak)."""
    ranked = sorted(evolution.join_day.items(), key=lambda item: (item[1], str(item[0])))
    return [node for node, _ in ranked[:count]]


@artifact(
    "snapshot_series",
    needs=("evolution",),
    save=_save_snapshot_series,
    load=_load_snapshot_series,
)
def _build_snapshot_series(resolver: ArtifactResolver) -> SnapshotSeries:
    """Crawled daily snapshots (the analogue of the paper's 79 crawls).

    The scenario's privacy regime (if any) is applied during the crawl, so
    visibility sweeps flow through the whole figure suite.  Privacy crawls
    start from several early joiners instead of the single default seed —
    otherwise one link-hiding seed strands every snapshot of the series.
    """
    evolution = resolver.artifact("evolution")
    privacy = resolver.scenario.privacy_model()
    seeds = None
    if privacy is not None:
        seeds = _earliest_joiners(evolution, _PRIVACY_CRAWL_SEEDS)
    return crawl_evolution(
        evolution,
        resolver.scenario.snapshot_days(),
        privacy=privacy,
        seeds=seeds,
    )


@artifact("snapshots", needs=("snapshot_series",))
def _build_snapshots(resolver: ArtifactResolver):
    """The snapshot series as a plain ``[(day, SAN)]`` list (memory view)."""
    return list(resolver.artifact("snapshot_series"))


@artifact(
    "frozen_snapshots",
    needs=("snapshot_series",),
    version="2",
    save=_save_frozen_snapshot_list,
    load=_load_frozen_snapshot_list,
)
def _build_frozen_snapshots(resolver: ArtifactResolver):
    """CSR-backed frozen views of every crawled snapshot.

    Persisted as columnar files since the binary format landed: a warm hit
    mmaps the canonical CSR arrays straight out of the store — no JSON
    re-parse, no canonical rebuild, and no dependence on the parent
    ``snapshot_series`` being materialised at all.
    """
    return [
        (day, canonical_frozen(san))
        for day, san in resolver.artifact("snapshot_series")
    ]


@artifact("reference_san", needs=("snapshot_series",), save=_save_san, load=_load_san)
def _build_reference_san(resolver: ArtifactResolver):
    """The last crawled snapshot — the reference the models are fitted against."""
    return resolver.artifact("snapshot_series").last()


@artifact(
    "frozen_reference",
    needs=("reference_san",),
    version="2",
    save=_save_frozen_san,
    load=_load_frozen_san,
)
def _build_frozen_reference(resolver: ArtifactResolver):
    """Frozen view of the reference SAN (columnar on disk, mmap on warm hits)."""
    return canonical_frozen(resolver.artifact("reference_san"))


@artifact("halfway_san", needs=("snapshot_series",), save=_save_san, load=_load_san)
def _build_halfway_san(resolver: ArtifactResolver):
    """The mid-crawl snapshot (the 'earlier' input of Figure 13)."""
    return resolver.artifact("snapshot_series").halfway()


@artifact(
    "arrival_history", needs=("evolution",), save=_save_history, load=_load_history
)
def _build_arrival_history(resolver: ArtifactResolver) -> ArrivalHistory:
    """Link arrivals over the crawl's later days (the Figure 15 input)."""
    evolution = resolver.artifact("evolution")
    start_day = evolution.num_days // resolver.scenario.history_start_divisor
    return evolution.arrival_history(start_day=start_day)


@artifact(
    "estimated_parameters",
    needs=("reference_san",),
    save=_save_parameters,
    load=_load_parameters,
)
def _build_estimated_parameters(resolver: ArtifactResolver) -> SANModelParameters:
    """Generative-model parameters estimated from the reference SAN."""
    scenario = resolver.scenario
    return estimate_parameters(
        resolver.artifact("reference_san"),
        mean_sleep=scenario.mean_sleep,
        beta=scenario.beta,
    ).parameters


@artifact("model_san", needs=("estimated_parameters",), save=_save_san, load=_load_san)
def _build_model_san(resolver: ArtifactResolver):
    """Our model (Algorithm 1) fitted to the reference SAN."""
    params = resolver.artifact("estimated_parameters")
    return generate_san(params, rng=resolver.scenario.seed, record_history=False).san


@artifact(
    "model_no_focal_san",
    needs=("estimated_parameters",),
    save=_save_san,
    load=_load_san,
)
def _build_model_no_focal_san(resolver: ArtifactResolver):
    """Ablation: the fitted model without focal closure (RR instead of RR-SAN)."""
    params = replace(resolver.artifact("estimated_parameters"), use_focal_closure=False)
    return generate_san(params, rng=resolver.scenario.seed, record_history=False).san


@artifact(
    "model_no_lapa_san",
    needs=("estimated_parameters",),
    save=_save_san,
    load=_load_san,
)
def _build_model_no_lapa_san(resolver: ArtifactResolver):
    """Ablation: the fitted model with classical PA instead of LAPA."""
    params = replace(resolver.artifact("estimated_parameters"), use_lapa=False)
    return generate_san(params, rng=resolver.scenario.seed, record_history=False).san


@artifact("zhel_san", needs=("estimated_parameters",), save=_save_san, load=_load_san)
def _build_zhel_san(resolver: ArtifactResolver):
    """The directed Zhel baseline sized to the same number of social nodes."""
    estimated = resolver.artifact("estimated_parameters")
    params = ZhelModelParameters(
        steps=estimated.steps,
        reciprocation_probability=estimated.reciprocation_probability,
        mean_groups_per_node=2.0,
    )
    return generate_zhel_san(params, rng=resolver.scenario.seed, record_history=False).san


# Frozen views of the generated SANs, persisted as columnar files.  Beyond
# running the model-evaluation stages on the vectorized kernels, the CSR form
# is *canonical* (rows sorted), so stages consuming these produce
# byte-identical payloads whether the parent SAN was freshly generated,
# rebuilt from its JSON cache entry, or mmapped from a columnar entry — the
# mutable backend's set-based adjacency does not guarantee that.
@artifact(
    "frozen_model_san",
    needs=("model_san",),
    version="2",
    save=_save_frozen_san,
    load=_load_frozen_san,
)
def _build_frozen_model_san(resolver: ArtifactResolver):
    """Frozen view of the fitted model SAN (columnar on disk)."""
    return canonical_frozen(resolver.artifact("model_san"))


@artifact(
    "frozen_model_no_focal_san",
    needs=("model_no_focal_san",),
    version="2",
    save=_save_frozen_san,
    load=_load_frozen_san,
)
def _build_frozen_model_no_focal_san(resolver: ArtifactResolver):
    """Frozen view of the no-focal-closure ablation SAN."""
    return canonical_frozen(resolver.artifact("model_no_focal_san"))


@artifact(
    "frozen_model_no_lapa_san",
    needs=("model_no_lapa_san",),
    version="2",
    save=_save_frozen_san,
    load=_load_frozen_san,
)
def _build_frozen_model_no_lapa_san(resolver: ArtifactResolver):
    """Frozen view of the no-LAPA ablation SAN."""
    return canonical_frozen(resolver.artifact("model_no_lapa_san"))


@artifact(
    "frozen_zhel_san",
    needs=("zhel_san",),
    version="2",
    save=_save_frozen_san,
    load=_load_frozen_san,
)
def _build_frozen_zhel_san(resolver: ArtifactResolver):
    """Frozen view of the Zhel baseline SAN."""
    return canonical_frozen(resolver.artifact("zhel_san"))
