"""Named scenario presets: one config object drives the whole figure suite.

A :class:`Scenario` bundles everything the artifact DAG needs to reproduce the
paper's full evaluation — the synthetic Google+ regime
(:class:`~repro.synthetic.gplus.GooglePlusConfig`), the simulation seed, the
snapshot schedule, the estimation hyper-parameters, and the per-figure
sampling options — under one name.  The same DAG then reruns unchanged under
diverse regimes (``repro pipeline --scenario dense``), and the scenario's
:meth:`~Scenario.cache_token` is what keys the content-addressed artifact
cache: change any field and every downstream artifact is rebuilt.

Presets
-------
``paper-default``
    The standard benchmark workload (~4k users over 98 days).
``tiny`` / ``small`` / ``large`` / ``huge``
    The canonical workload sizes from :mod:`repro.synthetic.workloads`;
    ``huge`` (~5M users) is the out-of-core regime served by the columnar
    storage tier and is not part of the CI validate matrix.
``sparse`` / ``dense`` / ``high-reciprocity``
    Stress regimes far from the Google+ operating point (low density, high
    density, mutual-link-heavy).
``sybil-waves`` / ``churn`` / ``flash-crowd`` / ``privacy-heavy``
    Adversarial and churn regimes (tiny scale): Sybil infiltration waves,
    attribute churn/deletion, arrival bursts breaking the three-phase
    schedule, and a crawler visibility sweep with heavy privacy settings.
    These are the workloads ``repro validate`` gates against answer keys.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional

from ..crawler.privacy import PrivacyModel
from ..synthetic.gplus import GooglePlusConfig
from ..synthetic.workloads import (
    BENCH_SEED,
    churn_config,
    default_config,
    dense_config,
    flash_crowd_config,
    high_reciprocity_config,
    huge_config,
    large_config,
    small_config,
    sparse_config,
    standard_snapshot_days,
    sybil_wave_config,
    tiny_config,
)

#: Documented fixed seed for every sampled figure estimator (clustering
#: sampling, diameter pair sampling, attribute subsampling, Sybil/anonymity
#: walks).  Matches ``BENCH_SEED`` (the paper's arXiv id) so a bare pipeline
#: run and the benchmark harness draw from the same stream family.
DEFAULT_FIGURE_SEED = BENCH_SEED


class UnknownScenarioError(KeyError):
    """No scenario preset is registered under the requested name."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:
        return (
            f"unknown scenario {self.name!r}; "
            f"known scenarios: {', '.join(scenario_names())}"
        )


@dataclass(frozen=True)
class Scenario:
    """Everything needed to reproduce the full figure suite, under one name."""

    name: str
    config: GooglePlusConfig = field(default_factory=default_config)
    #: Seed of the ground-truth simulation and of every generated model SAN.
    seed: int = BENCH_SEED
    #: Number of crawled snapshots (evenly spaced, first and last day kept).
    snapshot_count: int = 14
    #: The arrival history scored by Figure 15 starts at
    #: ``num_days // history_start_divisor`` (the benches' convention).
    history_start_divisor: int = 3
    #: Estimation hyper-parameters (``estimate_parameters`` keywords).
    mean_sleep: float = 2.0
    beta: float = 200.0
    #: Seed threaded into every sampled figure estimator.
    figure_seed: int = DEFAULT_FIGURE_SEED
    #: Sample count of the Appendix-A clustering estimator (Figures 4d/8b).
    clustering_samples: int = 4000
    #: HyperANF register precision of the diameter series (Figure 4c).
    diameter_precision: int = 6
    #: Scored-link budget of the Figure 15 likelihood sweep.
    max_links: int = 1500
    #: Scored-edge budget of the Section 5.2 closure comparison.
    max_edges: int = 1500
    #: Crawler privacy regime: probability that a user hides their links /
    #: attributes from the crawler (0.0 = the fully public baseline).  The
    #: privacy model is seeded from ``seed``, so visibility sweeps are
    #: deterministic per scenario.
    privacy_hide_links: float = 0.0
    privacy_hide_attributes: float = 0.0
    #: Whether the preset ships a checked-in answer key and runs in the CI
    #: validate matrix.  ``False`` only for regimes too large to calibrate a
    #: key against (``huge``); never entered in ``cache_token`` — it changes
    #: what CI runs, not what any artifact contains.
    validated: bool = True
    description: str = ""

    def snapshot_days(self) -> List[int]:
        """The crawl days of this scenario's snapshot series."""
        return standard_snapshot_days(self.config.num_days, count=self.snapshot_count)

    def privacy_model(self) -> Optional[PrivacyModel]:
        """The crawler's privacy model, or ``None`` for the public baseline."""
        if self.privacy_hide_links == 0.0 and self.privacy_hide_attributes == 0.0:
            return None
        return PrivacyModel(
            hide_links_probability=self.privacy_hide_links,
            hide_attributes_probability=self.privacy_hide_attributes,
            seed=self.seed,
        )

    def cache_token(self) -> Dict[str, object]:
        """JSON-serializable identity of this scenario for artifact keys.

        Covers exactly the fields the artifact builders consume, so two
        scenarios with equal tokens produce byte-identical artifacts and may
        share a cache regardless of what they are called.  Stage-only
        options (``figure_seed``, ``clustering_samples``,
        ``diameter_precision``, ``max_links``, ``max_edges``) are excluded:
        changing them re-runs stages — which are never cached — without
        discarding any artifact.
        """
        return {
            "config": asdict(self.config),
            "seed": self.seed,
            "snapshot_count": self.snapshot_count,
            "history_start_divisor": self.history_start_divisor,
            "mean_sleep": self.mean_sleep,
            "beta": self.beta,
            "privacy": {
                "hide_links": self.privacy_hide_links,
                "hide_attributes": self.privacy_hide_attributes,
            },
        }

    def stage_options(self, stage: str) -> Dict[str, object]:
        """Keyword options this scenario supplies to one pipeline stage.

        Only stages with sampled estimators or scored-link budgets take
        options; everything else is a pure function of its artifacts.
        """
        options: Dict[str, Dict[str, object]] = {
            "fig04": {
                "clustering_samples": self.clustering_samples,
                "diameter_precision": self.diameter_precision,
                "rng": self.figure_seed,
            },
            "fig08": {
                "clustering_samples": self.clustering_samples,
                "rng": self.figure_seed,
            },
            "fig09": {"rng": self.figure_seed},
            "fig15": {"max_links": self.max_links},
            "sec52": {"max_edges": self.max_edges, "rng": self.figure_seed},
            "fig19": {"rng": self.figure_seed},
        }
        return dict(options.get(stage, {}))


#: Preset name -> zero-arg factory.  Factories (rather than instances) keep
#: the module import-time cheap and each returned Scenario independent.
_SCENARIOS: Dict[str, Callable[[], Scenario]] = {}


def register_scenario(name: str, factory: Callable[[], Scenario]) -> None:
    """Register a scenario preset (last registration wins)."""
    _SCENARIOS[name] = factory


def get_scenario(name: str) -> Scenario:
    """The scenario preset called ``name``."""
    try:
        factory = _SCENARIOS[name]
    except KeyError:
        raise UnknownScenarioError(name) from None
    return factory()


def scenario_names() -> List[str]:
    """Names of every registered preset, in registration order."""
    return list(_SCENARIOS)


register_scenario(
    "paper-default",
    lambda: Scenario(
        name="paper-default",
        config=default_config(),
        description="the standard benchmark workload (~4k users over 98 days)",
    ),
)
register_scenario(
    "tiny",
    lambda: Scenario(
        name="tiny",
        config=tiny_config(),
        snapshot_count=6,
        clustering_samples=1500,
        max_links=600,
        max_edges=600,
        description="a few hundred users over 40 days — smoke tests and CI",
    ),
)
register_scenario(
    "small",
    lambda: Scenario(
        name="small",
        config=small_config(),
        description="~1.5k users over 98 days — the figure benches' workload",
    ),
)
register_scenario(
    "large",
    lambda: Scenario(
        name="large",
        config=large_config(),
        description="~10k users — more statistical resolution",
    ),
)
register_scenario(
    "huge",
    lambda: Scenario(
        name="huge",
        config=huge_config(),
        snapshot_count=6,
        clustering_samples=1500,
        max_links=600,
        max_edges=600,
        validated=False,
        description="~5M users — the out-of-core regime; run with REPRO_MMAP=1 "
        "so frozen graphs spill to mmap-backed columnar files",
    ),
)
register_scenario(
    "sparse",
    lambda: Scenario(
        name="sparse",
        config=sparse_config(),
        description="low link budgets and declaration rates — the low-density corner",
    ),
)
register_scenario(
    "dense",
    lambda: Scenario(
        name="dense",
        config=dense_config(),
        description="large link budgets, strong closure — the high-density corner",
    ),
)
register_scenario(
    "high-reciprocity",
    lambda: Scenario(
        name="high-reciprocity",
        config=high_reciprocity_config(),
        description="mutual-link-heavy regime far from the Google+ operating point",
    ),
)
register_scenario(
    "sybil-waves",
    lambda: Scenario(
        name="sybil-waves",
        config=sybil_wave_config(),
        snapshot_count=6,
        clustering_samples=1500,
        max_links=600,
        max_edges=600,
        description="tiny workload plus Sybil infiltration waves (Section 6.3 attack)",
    ),
)
register_scenario(
    "churn",
    lambda: Scenario(
        name="churn",
        config=churn_config(),
        snapshot_count=6,
        clustering_samples=1500,
        max_links=600,
        max_edges=600,
        description="tiny workload with heavy attribute churn (users changing employers)",
    ),
)
register_scenario(
    "flash-crowd",
    lambda: Scenario(
        name="flash-crowd",
        config=flash_crowd_config(),
        snapshot_count=6,
        clustering_samples=1500,
        max_links=600,
        max_edges=600,
        description="tiny workload with arrival bursts breaking the three-phase schedule",
    ),
)
register_scenario(
    "privacy-heavy",
    lambda: Scenario(
        name="privacy-heavy",
        config=tiny_config(),
        snapshot_count=6,
        clustering_samples=1500,
        max_links=600,
        max_edges=600,
        privacy_hide_links=0.35,
        privacy_hide_attributes=0.25,
        description="tiny workload crawled under heavy privacy settings (hidden links)",
    ),
)
