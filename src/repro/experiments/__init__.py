"""The experiment pipeline: figure drivers, artifact DAG, scenarios, runner.

Importing this package registers every figure/section driver as a pipeline
stage (see :mod:`.figures` and :mod:`.registry`) and every shared input as an
artifact node (see :mod:`.artifacts`).  The figure functions are re-exported
here straight from the stage registry — there is no hand-maintained export
list to fall out of sync with the figures module.
"""

from . import figures as _figures  # registers every stage on import
from . import validation as _validation  # registers the fidelity stage
from .answer_keys import (
    AnswerKey,
    AnswerKeyError,
    AssertionResult,
    KeyAssertion,
    MalformedAnswerKeyError,
    UnknownAnswerKeyError,
    answer_key_names,
    answer_key_path,
    default_keys_dir,
    evaluate_answer_key,
    load_answer_key,
)
from .artifacts import (
    ArtifactCycleError,
    ArtifactError,
    ArtifactResolver,
    ArtifactSpec,
    ArtifactStore,
    UnknownArtifactError,
    artifact,
    artifact_names,
    artifact_spec,
    artifact_topological_order,
    register_artifact,
    unregister_artifact,
)
from .registry import (
    DuplicateExperimentError,
    ExperimentStage,
    UnknownExperimentError,
    experiment,
    experiment_names,
    experiment_stages,
    get_experiment,
    register_experiment,
    unregister_experiment,
)
from .report import (
    format_distribution,
    format_series,
    format_table,
    render_payload,
    series_trend,
)
from .runner import (
    PipelineResult,
    StageResult,
    canonical_json,
    canonical_payload,
    pipeline_artifact_plan,
    run_pipeline,
    select_stages,
    write_outputs,
)
from .scenarios import (
    DEFAULT_FIGURE_SEED,
    Scenario,
    UnknownScenarioError,
    get_scenario,
    register_scenario,
    scenario_names,
)
from .validation import ValidationResult, run_validation, write_validation_outputs

# Re-export every registered figure/section driver from the stage registry.
_DRIVER_NAMES = []
for _stage in experiment_stages().values():
    globals()[_stage.fn.__name__] = _stage.fn
    _DRIVER_NAMES.append(_stage.fn.__name__)

__all__ = sorted(_DRIVER_NAMES) + [
    "AnswerKey",
    "AnswerKeyError",
    "ArtifactCycleError",
    "ArtifactError",
    "ArtifactResolver",
    "ArtifactSpec",
    "ArtifactStore",
    "AssertionResult",
    "DEFAULT_FIGURE_SEED",
    "DuplicateExperimentError",
    "ExperimentStage",
    "KeyAssertion",
    "MalformedAnswerKeyError",
    "PipelineResult",
    "Scenario",
    "StageResult",
    "UnknownAnswerKeyError",
    "UnknownArtifactError",
    "UnknownExperimentError",
    "UnknownScenarioError",
    "ValidationResult",
    "answer_key_names",
    "answer_key_path",
    "artifact",
    "artifact_names",
    "artifact_spec",
    "artifact_topological_order",
    "canonical_json",
    "canonical_payload",
    "default_keys_dir",
    "evaluate_answer_key",
    "experiment",
    "experiment_names",
    "experiment_stages",
    "format_distribution",
    "format_series",
    "format_table",
    "get_experiment",
    "get_scenario",
    "load_answer_key",
    "pipeline_artifact_plan",
    "register_artifact",
    "register_experiment",
    "register_scenario",
    "render_payload",
    "run_pipeline",
    "run_validation",
    "scenario_names",
    "select_stages",
    "series_trend",
    "unregister_artifact",
    "unregister_experiment",
    "write_outputs",
    "write_validation_outputs",
]
