"""Per-scenario fidelity answer keys: expected signals with tolerances.

An answer key declares, for one scenario preset, the qualitative signals its
run is expected to reproduce — degree-exponent ranges, trend directions of
the reciprocity/densification series, closure-rate bounds, Sybil ranking
separation — each as a *named assertion* with explicit tolerances.  Keys are
checked-in JSON documents under ``benchmarks/keys/``; ``repro validate``
(:mod:`repro.experiments.validation`) evaluates every assertion against
freshly (or cache-) materialised pipeline stages and fails loudly, naming
each violated assertion.

Metric addressing
-----------------
Each assertion names its metric as ``"<stage>/<path>"``: ``stage`` is an
experiment-stage name from the registry (including the ``fidelity`` stage
registered by :mod:`repro.experiments.validation`), and ``path`` walks the
stage's *canonical* payload (:func:`~repro.experiments.runner.canonical_payload`)
— dots descend into mappings, integer segments index lists.  A metric may
resolve to a scalar (range/threshold ops) or to a series (the ``trend`` op):
a series is a ``[[x, y], ...]`` pair list, a plain value list, or a
numeric-keyed mapping (sorted by key).

Operations
----------
=============== ======================================================
``in_range``    ``low <= value <= high`` (either bound may be omitted)
``at_least``    ``value >= low``
``at_most``     ``value <= high``
``trend``       least-squares slope of a series matches ``direction``
                (``increasing`` / ``decreasing`` / ``flat``, with
                ``tolerance`` as the flatness band)
``greater_than`` ``value > other-metric + margin``
=============== ======================================================

Key documents are versioned (``"format": 1``) so the schema can evolve
without silently misreading old keys.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

PathLike = Union[str, Path]

#: On-disk schema version of answer-key documents.
KEY_FORMAT = 1

_OPS = ("in_range", "at_least", "at_most", "trend", "greater_than")
_DIRECTIONS = ("increasing", "decreasing", "flat")


class AnswerKeyError(Exception):
    """Base class for answer-key errors."""


class UnknownAnswerKeyError(AnswerKeyError, KeyError):
    """No answer key is checked in for the requested scenario."""

    def __init__(self, name: str, keys_dir: Path) -> None:
        super().__init__(name)
        self.name = name
        self.keys_dir = keys_dir

    def __str__(self) -> str:
        known = ", ".join(answer_key_names(self.keys_dir)) or "(none)"
        return (
            f"no answer key for scenario {self.name!r} under {self.keys_dir}; "
            f"scenarios with keys: {known}"
        )


class MalformedAnswerKeyError(AnswerKeyError, ValueError):
    """An answer-key document violates the schema."""


@dataclass(frozen=True)
class KeyAssertion:
    """One named expectation on one metric of one stage payload."""

    name: str
    metric: str
    op: str
    low: Optional[float] = None
    high: Optional[float] = None
    direction: Optional[str] = None
    other: Optional[str] = None
    margin: float = 0.0
    #: ``trend`` only: slopes with ``|slope| <= tolerance`` count as flat.
    tolerance: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise MalformedAnswerKeyError("assertion name must be non-empty")
        if "/" not in self.metric:
            raise MalformedAnswerKeyError(
                f"assertion {self.name!r}: metric {self.metric!r} must be '<stage>/<path>'"
            )
        if self.op not in _OPS:
            raise MalformedAnswerKeyError(
                f"assertion {self.name!r}: unknown op {self.op!r}; known ops: {', '.join(_OPS)}"
            )
        if self.op == "in_range" and self.low is None and self.high is None:
            raise MalformedAnswerKeyError(
                f"assertion {self.name!r}: in_range needs 'low' and/or 'high'"
            )
        if self.op == "at_least" and self.low is None:
            raise MalformedAnswerKeyError(f"assertion {self.name!r}: at_least needs 'low'")
        if self.op == "at_most" and self.high is None:
            raise MalformedAnswerKeyError(f"assertion {self.name!r}: at_most needs 'high'")
        if self.op == "trend" and self.direction not in _DIRECTIONS:
            raise MalformedAnswerKeyError(
                f"assertion {self.name!r}: trend needs direction in {_DIRECTIONS}"
            )
        if self.op == "greater_than" and (self.other is None or "/" not in self.other):
            raise MalformedAnswerKeyError(
                f"assertion {self.name!r}: greater_than needs other='<stage>/<path>'"
            )

    @property
    def stage(self) -> str:
        """The experiment stage this assertion's metric lives in."""
        return self.metric.partition("/")[0]

    def stages(self) -> Tuple[str, ...]:
        """Every stage this assertion reads (metric plus ``other``)."""
        stages = [self.stage]
        if self.other is not None:
            other_stage = self.other.partition("/")[0]
            if other_stage not in stages:
                stages.append(other_stage)
        return tuple(stages)

    def to_document(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {"name": self.name, "metric": self.metric, "op": self.op}
        for key in ("low", "high", "direction", "other"):
            value = getattr(self, key)
            if value is not None:
                document[key] = value
        if self.margin:
            document["margin"] = self.margin
        if self.tolerance:
            document["tolerance"] = self.tolerance
        if self.description:
            document["description"] = self.description
        return document

    @classmethod
    def from_document(cls, document: Mapping[str, Any]) -> "KeyAssertion":
        unknown = set(document) - {
            "name", "metric", "op", "low", "high", "direction",
            "other", "margin", "tolerance", "description",
        }
        if unknown:
            raise MalformedAnswerKeyError(
                f"assertion document has unknown fields: {', '.join(sorted(unknown))}"
            )
        return cls(
            name=str(document.get("name", "")),
            metric=str(document.get("metric", "")),
            op=str(document.get("op", "")),
            low=document.get("low"),
            high=document.get("high"),
            direction=document.get("direction"),
            other=document.get("other"),
            margin=float(document.get("margin", 0.0)),
            tolerance=float(document.get("tolerance", 0.0)),
            description=str(document.get("description", "")),
        )


@dataclass(frozen=True)
class AnswerKey:
    """Every assertion one scenario is validated against."""

    scenario: str
    assertions: Tuple[KeyAssertion, ...]
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "assertions", tuple(self.assertions))
        if not self.assertions:
            raise MalformedAnswerKeyError(
                f"answer key for {self.scenario!r} declares no assertions"
            )
        seen: Dict[str, None] = {}
        for assertion in self.assertions:
            if assertion.name in seen:
                raise MalformedAnswerKeyError(
                    f"answer key for {self.scenario!r}: duplicate assertion "
                    f"name {assertion.name!r}"
                )
            seen[assertion.name] = None

    def stages(self) -> List[str]:
        """Every experiment stage the key reads, in first-reference order."""
        stages: List[str] = []
        for assertion in self.assertions:
            for stage in assertion.stages():
                if stage not in stages:
                    stages.append(stage)
        return stages

    def to_document(self) -> Dict[str, Any]:
        return {
            "format": KEY_FORMAT,
            "scenario": self.scenario,
            "description": self.description,
            "assertions": [assertion.to_document() for assertion in self.assertions],
        }

    @classmethod
    def from_document(cls, document: Mapping[str, Any]) -> "AnswerKey":
        if document.get("format") != KEY_FORMAT:
            raise MalformedAnswerKeyError(
                f"unsupported answer-key format {document.get('format')!r} "
                f"(this build reads format {KEY_FORMAT})"
            )
        raw = document.get("assertions")
        if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
            raise MalformedAnswerKeyError("answer key 'assertions' must be a list")
        return cls(
            scenario=str(document.get("scenario", "")),
            assertions=tuple(KeyAssertion.from_document(item) for item in raw),
            description=str(document.get("description", "")),
        )

    def save(self, path: PathLike) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.to_document(), indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )
        return target

    @classmethod
    def load(cls, path: PathLike) -> "AnswerKey":
        try:
            document = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise MalformedAnswerKeyError(f"answer key {path} is not valid JSON: {exc}") from None
        return cls.from_document(document)


def default_keys_dir() -> Path:
    """The repository's checked-in key directory (``benchmarks/keys``)."""
    return Path(__file__).resolve().parents[3] / "benchmarks" / "keys"


def answer_key_path(name: str, keys_dir: Optional[PathLike] = None) -> Path:
    """Where the answer key of scenario ``name`` lives (existing or not)."""
    root = Path(keys_dir) if keys_dir is not None else default_keys_dir()
    return root / f"{name}.json"


def answer_key_names(keys_dir: Optional[PathLike] = None) -> List[str]:
    """Scenario names with a checked-in key, sorted."""
    root = Path(keys_dir) if keys_dir is not None else default_keys_dir()
    if not root.is_dir():
        return []
    return sorted(path.stem for path in root.glob("*.json"))


def load_answer_key(name: str, keys_dir: Optional[PathLike] = None) -> AnswerKey:
    """The checked-in answer key of scenario ``name``."""
    root = Path(keys_dir) if keys_dir is not None else default_keys_dir()
    path = answer_key_path(name, root)
    if not path.is_file():
        raise UnknownAnswerKeyError(name, root)
    key = AnswerKey.load(path)
    if key.scenario != name:
        raise MalformedAnswerKeyError(
            f"answer key {path} declares scenario {key.scenario!r}, expected {name!r}"
        )
    return key


# -- evaluation -----------------------------------------------------------


@dataclass
class AssertionResult:
    """One evaluated assertion: verdict, observed value, human-readable detail."""

    assertion: KeyAssertion
    passed: bool
    observed: Optional[float]
    detail: str

    def to_document(self) -> Dict[str, Any]:
        return {
            "name": self.assertion.name,
            "metric": self.assertion.metric,
            "op": self.assertion.op,
            "passed": self.passed,
            "observed": self.observed,
            "detail": self.detail,
        }


def resolve_metric(payloads: Mapping[str, Any], metric: str) -> Any:
    """Walk ``"<stage>/<dotted.path>"`` through canonical stage payloads."""
    stage, _, path = metric.partition("/")
    if stage not in payloads:
        raise KeyError(f"stage {stage!r} was not materialised (metric {metric!r})")
    value: Any = payloads[stage]
    if not path:
        return value
    for segment in path.split("."):
        if isinstance(value, Mapping):
            if segment not in value:
                raise KeyError(
                    f"metric {metric!r}: no key {segment!r} "
                    f"(available: {', '.join(map(str, list(value)[:12]))})"
                )
            value = value[segment]
        elif isinstance(value, Sequence) and not isinstance(value, (str, bytes)):
            try:
                value = value[int(segment)]
            except (ValueError, IndexError):
                raise KeyError(f"metric {metric!r}: bad list index {segment!r}") from None
        else:
            raise KeyError(f"metric {metric!r}: cannot descend into {type(value).__name__}")
    return value


def series_points(value: Any) -> List[Tuple[float, float]]:
    """Coerce a resolved metric into ``(x, y)`` series points for ``trend``."""
    if isinstance(value, Mapping):
        try:
            items = sorted(((float(key), float(val)) for key, val in value.items()))
        except (TypeError, ValueError):
            raise ValueError("mapping metric is not a numeric series") from None
        return items
    if isinstance(value, Sequence) and not isinstance(value, (str, bytes)):
        points: List[Tuple[float, float]] = []
        for index, item in enumerate(value):
            if (
                isinstance(item, Sequence)
                and not isinstance(item, (str, bytes))
                and len(item) >= 2
            ):
                points.append((float(item[0]), float(item[-1])))
            else:
                points.append((float(index), float(item)))
        return points
    raise ValueError(f"metric of type {type(value).__name__} is not a series")


def series_slope(points: Sequence[Tuple[float, float]]) -> float:
    """Least-squares slope of the series (0.0 for degenerate series)."""
    count = len(points)
    if count < 2:
        return 0.0
    mean_x = sum(x for x, _ in points) / count
    mean_y = sum(y for _, y in points) / count
    var_x = sum((x - mean_x) ** 2 for x, _ in points)
    if var_x == 0.0:
        return 0.0
    cov = sum((x - mean_x) * (y - mean_y) for x, y in points)
    return cov / var_x


def _scalar(value: Any, metric: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"metric {metric!r} is not a scalar (got {type(value).__name__})")
    return float(value)


def evaluate_assertion(
    assertion: KeyAssertion, payloads: Mapping[str, Any]
) -> AssertionResult:
    """Evaluate one assertion; resolution errors fail loudly, never raise."""
    try:
        raw = resolve_metric(payloads, assertion.metric)
        if assertion.op == "trend":
            slope = series_slope(series_points(raw))
            direction = assertion.direction
            if direction == "increasing":
                passed = slope > assertion.tolerance
            elif direction == "decreasing":
                passed = slope < -assertion.tolerance
            else:  # flat
                passed = abs(slope) <= assertion.tolerance
            detail = (
                f"slope {slope:.6g} (expected {direction}, tolerance {assertion.tolerance:g})"
            )
            return AssertionResult(assertion, passed, slope, detail)

        observed = _scalar(raw, assertion.metric)
        if assertion.op == "greater_than":
            other = _scalar(resolve_metric(payloads, assertion.other), assertion.other)
            passed = observed > other + assertion.margin
            detail = (
                f"observed {observed:.6g} vs {assertion.other} = {other:.6g}"
                f"{f' + margin {assertion.margin:g}' if assertion.margin else ''}"
            )
            return AssertionResult(assertion, passed, observed, detail)

        low, high = assertion.low, assertion.high
        if assertion.op == "at_least":
            high = None
        elif assertion.op == "at_most":
            low = None
        passed = (low is None or observed >= low) and (high is None or observed <= high)
        bounds = f"[{'-inf' if low is None else f'{low:g}'}, {'inf' if high is None else f'{high:g}'}]"
        detail = f"observed {observed:.6g}, expected within {bounds}"
        return AssertionResult(assertion, passed, observed, detail)
    except (KeyError, ValueError, TypeError) as exc:
        reason = exc.args[0] if exc.args else str(exc)
        return AssertionResult(assertion, False, None, f"unresolvable: {reason}")


def evaluate_answer_key(
    key: AnswerKey, payloads: Mapping[str, Any]
) -> List[AssertionResult]:
    """Evaluate every assertion of ``key`` against canonical stage payloads."""
    return [evaluate_assertion(assertion, payloads) for assertion in key.assertions]
