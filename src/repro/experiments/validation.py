"""``repro validate``: the per-scenario fidelity gate over the pipeline DAG.

Two pieces turn the answer keys of :mod:`.answer_keys` into a regression
gate:

* The ``fidelity`` *validation stage* — a regular experiment stage
  (:func:`fidelity_metrics`) computing the adversarial/churn/crawl signals
  the figure stages don't cover: Sybil attack-edge structure and the
  trust-ranking separation between honest and Sybil users,
  removal-event counts from the attribute-churn regime, the burstiness of
  the arrival schedule, and crawler edge coverage against the ground truth.
  Because it is a stage over the ``evolution`` / ``reference_san``
  artifacts, it reuses the content-addressed cache like any figure.

* :func:`run_validation` — materialise exactly the stages a scenario's
  answer key references (via :func:`~.runner.run_pipeline`, so a warm cache
  rebuilds nothing), evaluate every key assertion against the canonical
  stage payloads, and emit a pass/fail report plus a JSON manifest naming
  each violated assertion.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Hashable, List, Optional, Sequence, Union

import math

from ..synthetic.gplus import GroundTruthEvolution
from ..graph.san import SAN
from ..models.history import (
    EVENT_ATTRIBUTE,
    EVENT_ATTRIBUTE_REMOVE,
    EVENT_NODE,
    EVENT_SOCIAL,
    EVENT_SOCIAL_REMOVE,
)
from .answer_keys import (
    AnswerKey,
    AssertionResult,
    answer_key_path,
    evaluate_answer_key,
    load_answer_key,
)
from .artifacts import ArtifactResolver
from .registry import experiment
from .runner import PipelineResult, canonical_payload, run_pipeline
from .scenarios import Scenario, get_scenario

Node = Hashable
PathLike = Union[str, Path]

#: Trusted seeds of the ranking probe (the paper's crawl also used a handful
#: of well-connected seed users).
_TRUST_SEEDS = 10


def _median(values: Sequence[float]) -> Optional[float]:
    if not values:
        return None
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def _trust_ranking(
    final: SAN, honest: Sequence[Node], sybil_set
) -> Dict[str, Optional[float]]:
    """Degree-normalised trust from early-terminated propagation (SybilRank).

    Trust mass starts on the highest-degree honest seeds and spreads over the
    undirected social graph for ``O(log n)`` rounds — too few for the mass to
    squeeze through the thin attack-edge band into the Sybil region.  The
    degree-normalised landing probability then ranks honest users above
    Sybils; the probe is fully deterministic (power iteration, no sampling).
    """
    nodes = list(final.social_nodes())
    index = {node: position for position, node in enumerate(nodes)}
    adjacency: List[List[int]] = [[] for _ in nodes]
    for source, target in final.social_edges():
        adjacency[index[source]].append(index[target])
        adjacency[index[target]].append(index[source])
    degree = [len(neighbors) for neighbors in adjacency]

    seeds = sorted(honest, key=lambda node: (-degree[index[node]], str(node)))
    seeds = [node for node in seeds if degree[index[node]] > 0][:_TRUST_SEEDS]
    if not seeds:
        return {
            "honest_trust_median": None,
            "sybil_trust_median": None,
            "ranking_separation": None,
            "sybil_tail_fraction": None,
        }
    trust = [0.0] * len(nodes)
    for seed in seeds:
        trust[index[seed]] = 1.0 / len(seeds)
    for _ in range(max(2, int(math.log2(max(len(nodes), 2))))):
        spread = [0.0] * len(nodes)
        for position, neighbors in enumerate(adjacency):
            if trust[position] and neighbors:
                share = trust[position] / len(neighbors)
                for neighbor in neighbors:
                    spread[neighbor] += share
        trust = spread
    score = [
        trust[position] / degree[position] if degree[position] else 0.0
        for position in range(len(nodes))
    ]

    honest_scores = [score[index[node]] for node in honest if degree[index[node]]]
    sybil_scores = [
        score[index[node]] for node in nodes
        if node in sybil_set and degree[index[node]]
    ]
    honest_median = _median(honest_scores)
    sybil_median = _median(sybil_scores)
    separation = None
    if honest_median is not None and sybil_median is not None:
        separation = honest_median / sybil_median if sybil_median > 0 else math.inf
    tail_fraction = None
    if sybil_scores:
        # Fraction of Sybils the ranking pushes into the bottom |S| positions.
        ranked = sorted(range(len(nodes)), key=lambda position: score[position])
        tail = set(ranked[: len(sybil_scores)])
        tail_fraction = (
            sum(1 for node in sybil_set if index[node] in tail) / len(sybil_scores)
        )
    return {
        "honest_trust_median": honest_median,
        "sybil_trust_median": sybil_median,
        "ranking_separation": separation,
        "sybil_tail_fraction": tail_fraction,
    }


@experiment(
    "fidelity",
    needs=("evolution", "reference_san"),
    title="Scenario fidelity metrics (validation stage)",
)
def fidelity_metrics(
    evolution: GroundTruthEvolution,
    reference: SAN,
) -> Dict[str, object]:
    """Adversarial/churn/crawl fidelity signals of one simulated scenario.

    The payload is the metric surface the answer keys assert on: Sybil
    attack-edge structure plus the trust-ranking separation, removal event
    counts (attribute churn), arrival burstiness, and the crawler's edge
    coverage of the ground truth.  Fully deterministic — no sampling.
    """
    final = evolution.final_san()
    sybils = [node for node in evolution.sybil_nodes if final.is_social_node(node)]
    sybil_set = set(sybils)
    honest = [node for node in final.social_nodes() if node not in sybil_set]

    attack_edges = intra_sybil_edges = honest_edges = 0
    for source, target in final.social_edges():
        source_sybil = source in sybil_set
        target_sybil = target in sybil_set
        if source_sybil and target_sybil:
            intra_sybil_edges += 1
        elif source_sybil or target_sybil:
            attack_edges += 1
        else:
            honest_edges += 1
    total_edges = attack_edges + intra_sybil_edges + honest_edges

    ranking = _trust_ranking(final, honest, sybil_set)

    node_adds = attribute_adds = social_adds = 0
    attribute_removals = social_removals = 0
    daily_arrivals = {day: 0 for day in range(1, evolution.num_days + 1)}
    for timed in evolution.events:
        kind = timed.event.kind
        if kind == EVENT_NODE:
            node_adds += 1
            daily_arrivals[timed.day] = daily_arrivals.get(timed.day, 0) + 1
        elif kind == EVENT_SOCIAL:
            social_adds += 1
        elif kind == EVENT_ATTRIBUTE:
            attribute_adds += 1
        elif kind == EVENT_ATTRIBUTE_REMOVE:
            attribute_removals += 1
        elif kind == EVENT_SOCIAL_REMOVE:
            social_removals += 1

    counts = sorted(daily_arrivals.values())
    peak = counts[-1] if counts else 0
    median = counts[len(counts) // 2] if counts else 0
    peak_to_median = peak / median if median else float(peak)

    true_social = final.number_of_social_edges()
    true_attribute = final.number_of_attribute_edges()
    crawled_social = reference.number_of_social_edges()
    crawled_attribute = reference.number_of_attribute_edges()

    return {
        "sybil": {
            "num_sybils": len(sybils),
            "num_honest": len(honest),
            "attack_edges": attack_edges,
            "intra_sybil_edges": intra_sybil_edges,
            "attack_edge_fraction": attack_edges / total_edges if total_edges else 0.0,
            "honest_trust_median": ranking["honest_trust_median"],
            "sybil_trust_median": ranking["sybil_trust_median"],
            "ranking_separation": ranking["ranking_separation"],
            "sybil_tail_fraction": ranking["sybil_tail_fraction"],
        },
        "churn": {
            "attribute_adds": attribute_adds,
            "attribute_removals": attribute_removals,
            "social_removals": social_removals,
            "removal_fraction": (
                attribute_removals / attribute_adds if attribute_adds else 0.0
            ),
        },
        "arrivals": {
            "total": node_adds,
            "daily": sorted((day, count) for day, count in daily_arrivals.items()),
            "peak_to_median": peak_to_median,
        },
        "crawl": {
            "true_social_edges": true_social,
            "crawled_social_edges": crawled_social,
            "social_coverage": crawled_social / true_social if true_social else 1.0,
            "true_attribute_edges": true_attribute,
            "crawled_attribute_edges": crawled_attribute,
            "attribute_coverage": (
                crawled_attribute / true_attribute if true_attribute else 1.0
            ),
        },
    }


@dataclass
class ValidationResult:
    """One validated scenario: assertion verdicts plus the pipeline run."""

    scenario: Scenario
    key: AnswerKey
    results: List[AssertionResult]
    pipeline: PipelineResult
    key_path: Optional[Path] = None
    total_seconds: float = 0.0
    out_dir: Optional[Path] = None

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    def failures(self) -> List[AssertionResult]:
        """Every violated assertion, in key order."""
        return [result for result in self.results if not result.passed]

    def manifest(self) -> Dict[str, Any]:
        """JSON-serializable validation summary (written as validation.json)."""
        pipeline_manifest = self.pipeline.manifest()
        return {
            "scenario": pipeline_manifest["scenario"],
            "key_path": str(self.key_path) if self.key_path is not None else None,
            "passed": self.passed,
            "assertions": [result.to_document() for result in self.results],
            "stages": self.key.stages(),
            "cache": pipeline_manifest["cache"],
            "artifact_seconds": pipeline_manifest["artifact_seconds"],
            "total_seconds": round(self.total_seconds, 6),
        }

    def rendered(self) -> str:
        """The human-readable pass/fail report (written as validation.txt)."""
        cache = self.pipeline.manifest()["cache"]
        lines = [
            f"validate scenario={self.scenario.name}"
            + (f"  key={self.key_path}" if self.key_path is not None else ""),
        ]
        width = max(len(result.assertion.name) for result in self.results)
        for result in self.results:
            verdict = "PASS" if result.passed else "FAIL"
            lines.append(
                f"  {verdict} {result.assertion.name:<{width}}  "
                f"{result.assertion.metric}  {result.detail}"
            )
        passed = sum(1 for result in self.results if result.passed)
        lines.append(
            f"{passed}/{len(self.results)} assertions passed; artifacts: "
            f"{cache['hits']} cached, {cache['builds']} built, {cache['views']} views"
        )
        return "\n".join(lines)


def run_validation(
    scenario: Union[str, Scenario],
    key: Optional[AnswerKey] = None,
    keys_dir: Optional[PathLike] = None,
    jobs: int = 1,
    cache_dir: Optional[PathLike] = None,
    out_dir: Optional[PathLike] = None,
    resolver: Optional[ArtifactResolver] = None,
) -> ValidationResult:
    """Validate one scenario against its answer key.

    Materialises exactly the stages the key references (through
    :func:`~.runner.run_pipeline`, so every shared artifact comes from the
    content-addressed cache when warm), evaluates every assertion, and —
    with ``out_dir`` — writes ``validation.json`` and ``validation.txt``.

    Raises :class:`~.answer_keys.UnknownAnswerKeyError` when no key is
    checked in for the scenario and none is passed explicitly; assertion
    *failures* never raise — they are reported in the returned
    :class:`ValidationResult`.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    started = time.perf_counter()
    key_path: Optional[Path] = None
    if key is None:
        key_path = answer_key_path(scenario.name, keys_dir)
        key = load_answer_key(scenario.name, keys_dir)
    pipeline = run_pipeline(
        scenario,
        figures=key.stages(),
        jobs=jobs,
        cache_dir=cache_dir,
        resolver=resolver,
    )
    payloads = {
        name: canonical_payload(stage.payload)
        for name, stage in pipeline.stages.items()
    }
    results = evaluate_answer_key(key, payloads)
    validation = ValidationResult(
        scenario=scenario,
        key=key,
        results=results,
        pipeline=pipeline,
        key_path=key_path,
        total_seconds=time.perf_counter() - started,
    )
    if out_dir is not None:
        validation.out_dir = write_validation_outputs(validation, out_dir)
    return validation


def write_validation_outputs(result: ValidationResult, out_dir: PathLike) -> Path:
    """Write ``validation.json`` and ``validation.txt`` to ``out_dir``."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    (out / "validation.json").write_text(
        json.dumps(result.manifest(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    (out / "validation.txt").write_text(result.rendered() + "\n", encoding="utf-8")
    return out
