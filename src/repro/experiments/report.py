"""Plain-text rendering of experiment results (series and tables).

The benchmark harness prints the same rows/series the paper's figures show;
these helpers keep that formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple


def format_series(
    series: Sequence[Tuple[float, float]],
    x_label: str = "x",
    y_label: str = "y",
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render an ``(x, y)`` series as an aligned two-column table."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{x_label:>12}  {y_label:>14}"
    lines.append(header)
    lines.append("-" * len(header))
    for x, y in series:
        lines.append(f"{x:>12g}  {y:>14.{precision}g}")
    return "\n".join(lines)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    if not rows:
        return title or "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}g}"
        return str(value)

    rendered = [[cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), max(len(row[index]) for row in rendered))
        for index, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(column).ljust(widths[index]) for index, column in enumerate(columns)))
    lines.append("  ".join("-" * widths[index] for index in range(len(columns))))
    for row in rendered:
        lines.append("  ".join(row[index].ljust(widths[index]) for index in range(len(columns))))
    return "\n".join(lines)


def format_distribution(
    points: Sequence[Tuple[float, float]],
    title: Optional[str] = None,
    x_label: str = "degree",
    y_label: str = "probability",
) -> str:
    """Render a (log-binned) distribution as a table."""
    return format_series(points, x_label=x_label, y_label=y_label, title=title, precision=6)


def _is_numeric_pair_series(value: object) -> bool:
    return (
        isinstance(value, (list, tuple))
        and len(value) > 0
        and all(
            isinstance(point, (list, tuple))
            and len(point) == 2
            and all(isinstance(part, (int, float)) for part in point)
            for point in value
        )
    )


def render_payload(payload: object, title: Optional[str] = None, indent: int = 0) -> str:
    """Render an arbitrary experiment payload as plain text.

    The pipeline runner uses this to turn every stage's returned data (nested
    dicts of series, tables, and scalars) into the same aligned-text tables
    the figure benches write, without each stage declaring its own renderer:

    * a sequence of numeric ``(x, y)`` pairs becomes :func:`format_series`;
    * a mapping recurses with ``title — key`` section headers;
    * scalars and everything else render as ``key: value`` lines.
    """
    prefix = "  " * indent
    if _is_numeric_pair_series(payload):
        series = [(float(x), float(y)) for x, y in payload]  # type: ignore[union-attr]
        rendered = format_series(series, title=title)
        return "\n".join(prefix + line for line in rendered.splitlines())
    if isinstance(payload, Mapping):
        lines: List[str] = []
        if title:
            lines.append(prefix + title)
        for key, value in payload.items():
            label = str(key)
            inner = render_payload(value, title=label, indent=indent + 1)
            if isinstance(value, Mapping) or _is_numeric_pair_series(value):
                lines.append(inner)
                lines.append("")
            else:
                lines.append(inner)
        while lines and not lines[-1]:
            lines.pop()
        return "\n".join(lines)
    if title is None:
        return prefix + repr(payload)
    if isinstance(payload, float):
        return f"{prefix}{title}: {payload:.6g}"
    return f"{prefix}{title}: {payload!r}"


def series_trend(series: Sequence[Tuple[float, float]]) -> str:
    """A one-word trend summary ('increasing', 'decreasing', 'flat') of a series."""
    if len(series) < 2:
        return "flat"
    first = series[0][1]
    last = series[-1][1]
    scale = max(abs(first), abs(last), 1e-12)
    change = (last - first) / scale
    if change > 0.05:
        return "increasing"
    if change < -0.05:
        return "decreasing"
    return "flat"
