"""Experiment-stage registry: figures and sections as declared DAG stages.

Every ``figure*`` / ``section*`` driver in :mod:`repro.experiments.figures`
registers itself with the :func:`experiment` decorator, declaring the shared
pipeline artifacts it consumes::

    @experiment("fig07", needs=("frozen_reference", "frozen_snapshots"))
    def figure7_social_jdd(san, snapshots): ...

The declaration replaces the hand-rolled export list the package used to keep
by hand: :mod:`repro.experiments` re-exports every registered driver straight
from this registry, and :mod:`repro.experiments.runner` uses the declared
``needs`` to schedule stages topologically over the artifact DAG
(:mod:`repro.experiments.artifacts`), materialising each shared input exactly
once per run.

``needs`` entries map *positionally* onto the function's leading parameters;
scenario-dependent keyword options (sample counts, seeds) are supplied by the
runner from :meth:`repro.experiments.scenarios.Scenario.stage_options`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple


class ExperimentRegistryError(Exception):
    """Base class for experiment-registry errors."""


class UnknownExperimentError(ExperimentRegistryError, KeyError):
    """No experiment stage is registered under the requested name."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:
        return (
            f"unknown experiment stage {self.name!r}; "
            f"known stages: {', '.join(experiment_names())}"
        )


class DuplicateExperimentError(ExperimentRegistryError, ValueError):
    """An experiment stage name was registered twice."""


@dataclass(frozen=True)
class ExperimentStage:
    """One registered figure/section driver with its declared inputs.

    ``needs`` names artifacts from :mod:`repro.experiments.artifacts`; the
    runner resolves them and passes them as the stage function's leading
    positional arguments, in declaration order.
    """

    name: str
    fn: Callable[..., object]
    needs: Tuple[str, ...]
    title: str


#: name -> stage, in registration order (which follows the paper's figures).
_STAGES: Dict[str, ExperimentStage] = {}


def register_experiment(
    name: str,
    fn: Callable[..., object],
    needs: Sequence[str] = (),
    title: Optional[str] = None,
) -> ExperimentStage:
    """Register ``fn`` as the experiment stage ``name`` (functional form)."""
    if name in _STAGES:
        raise DuplicateExperimentError(f"experiment stage {name!r} already registered")
    if title is None:
        doc = (fn.__doc__ or "").strip()
        title = doc.splitlines()[0].rstrip(".") if doc else name
    stage = ExperimentStage(name=name, fn=fn, needs=tuple(needs), title=title)
    _STAGES[name] = stage
    return stage


def experiment(
    name: str, needs: Sequence[str] = (), title: Optional[str] = None
) -> Callable[[Callable[..., object]], Callable[..., object]]:
    """Decorator: register the function as a pipeline stage, unchanged.

    The decorated function stays directly callable with its normal signature;
    registration only records it (plus its artifact ``needs``) for the
    pipeline runner and the package's generated exports.
    """

    def decorator(fn: Callable[..., object]) -> Callable[..., object]:
        register_experiment(name, fn, needs=needs, title=title)
        return fn

    return decorator


def unregister_experiment(name: str) -> None:
    """Remove a registered stage (test hook; unknown names are ignored)."""
    _STAGES.pop(name, None)


def get_experiment(name: str) -> ExperimentStage:
    """The registered stage called ``name``."""
    try:
        return _STAGES[name]
    except KeyError:
        raise UnknownExperimentError(name) from None


def experiment_stages() -> Dict[str, ExperimentStage]:
    """All registered stages, in registration (figure) order."""
    return dict(_STAGES)


def experiment_names() -> List[str]:
    """Names of every registered stage, in registration order."""
    return list(_STAGES)
