"""The pipeline runner: one command reproduces the paper's full evaluation.

:func:`run_pipeline` takes a scenario (name or
:class:`~repro.experiments.scenarios.Scenario`), selects the requested stages
from the experiment registry, topologically materialises every artifact they
declare (freeze-once, content-addressed disk cache), and executes the stages
— optionally in parallel, since stages only depend on artifacts and never on
each other.  Each stage's returned payload is rendered to the same aligned
text tables the figure benches write (via
:func:`~repro.experiments.report.render_payload`), and the whole run is
summarised in a JSON manifest: per-stage timings (wall-clock *and* CPU), the
executor used, per-artifact cache status (built vs cached), and the scenario
token that keyed the cache.

With ``jobs > 1`` and a disk cache, stages run on a *process* pool: each
worker process rehydrates the artifacts its stage needs from the
content-addressed store (stage payloads are picklable; artifacts never cross
the process boundary from the parent heap), so ``repro pipeline --jobs N``
uses N cores instead of overlapping GIL-bound threads.  Per-stage failures
are collected — never silently dropped — and reported together with their
stage names after every surviving result has been written.

Output layout (``out_dir``)::

    manifest.json     run summary (stages, artifacts, timings, scenario)
    report.txt        every stage's rendered tables, concatenated
    <stage>.txt       one rendered file per stage (fig04.txt, sec52.txt, ...)
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..engine import parallel as engine_parallel
from .artifacts import ArtifactResolver, artifact_topological_order
from .registry import ExperimentStage, experiment_stages, get_experiment
from .report import render_payload
from .scenarios import Scenario, get_scenario


def canonical_payload(payload: Any) -> Any:
    """A JSON-compatible canonical form of a stage payload.

    Tuples become lists and non-string mapping keys become strings (tuple
    keys like Figure 15's ``(alpha, beta)`` join with a comma), recursively.
    Two payloads are byte-identical iff their canonical JSON dumps are — the
    parity contract between pipeline runs and direct figure calls.
    """
    if isinstance(payload, Mapping):
        return {_canonical_key(key): canonical_payload(value) for key, value in payload.items()}
    if isinstance(payload, (list, tuple)):
        return [canonical_payload(item) for item in payload]
    return payload


def _canonical_key(key: Any) -> str:
    if isinstance(key, str):
        return key
    if isinstance(key, tuple):
        return ",".join(f"{part:g}" if isinstance(part, float) else str(part) for part in key)
    return str(key)


def canonical_json(payload: Any) -> str:
    """Canonical JSON text of a stage payload (sorted keys, no whitespace)."""
    return json.dumps(canonical_payload(payload), sort_keys=True, separators=(",", ":"))


class PipelineStageError(RuntimeError):
    """One or more pipeline stages failed (raised after outputs are written).

    ``failures`` maps each failed stage's name to its error string; the
    surviving stages' results were already written to the manifest/report
    before this was raised.
    """

    def __init__(self, failures: Dict[str, str]) -> None:
        self.failures = dict(failures)
        names = ", ".join(sorted(self.failures))
        super().__init__(f"{len(self.failures)} pipeline stage(s) failed: {names}")


@dataclass
class StageResult:
    """One executed pipeline stage: payload, rendering, timing, outcome.

    ``seconds`` is wall-clock; ``cpu_seconds`` is the executing thread's CPU
    time (``time.thread_time``), which stays honest under thread-pool GIL
    contention and measures real per-core work under the process executor.
    A failed stage carries ``error`` (exception type and message) with
    ``payload=None`` and an empty rendering.
    """

    name: str
    title: str
    needs: Sequence[str]
    payload: Any
    rendered: str
    seconds: float
    cpu_seconds: float = 0.0
    error: Optional[str] = None


@dataclass
class PipelineResult:
    """A completed pipeline run."""

    scenario: Scenario
    stages: Dict[str, StageResult]
    resolver: ArtifactResolver
    jobs: int
    artifact_seconds: float
    total_seconds: float
    executor: str = "thread"
    out_dir: Optional[Path] = None

    def failures(self) -> Dict[str, str]:
        """Failed stage name -> error string (empty when every stage passed)."""
        return {
            stage.name: stage.error
            for stage in self.stages.values()
            if stage.error is not None
        }

    def manifest(self) -> Dict[str, Any]:
        """JSON-serializable summary of the run (written as manifest.json)."""
        events = self.resolver.events
        return {
            "scenario": {"name": self.scenario.name, **self.scenario.cache_token()},
            "jobs": self.jobs,
            "executor": self.executor,
            "artifact_seconds": round(self.artifact_seconds, 6),
            "total_seconds": round(self.total_seconds, 6),
            "artifacts": [
                {
                    "name": event.name,
                    "key": event.key,
                    "status": event.status,
                    "persistent": event.persistent,
                    "seconds": round(event.seconds, 6),
                    "bytes": event.bytes,
                }
                for event in events
            ],
            "cache": {
                "hits": sum(1 for event in events if event.status == "cached"),
                "builds": sum(
                    1 for event in events if event.status == "built" and event.persistent
                ),
                "views": sum(
                    1 for event in events if event.status == "built" and not event.persistent
                ),
            },
            "stages": [
                {
                    "name": stage.name,
                    "title": stage.title,
                    "needs": list(stage.needs),
                    "seconds": round(stage.seconds, 6),
                    "cpu_seconds": round(stage.cpu_seconds, 6),
                    "error": stage.error,
                }
                for stage in self.stages.values()
            ],
        }

    def rendered_report(self) -> str:
        """Every surviving stage's rendered tables, concatenated in run order."""
        parts = [stage.rendered for stage in self.stages.values() if stage.rendered]
        return "\n\n".join(parts) + "\n"

    def recomputed_persistent_artifacts(self) -> List[str]:
        """Persistent artifacts this run had to build (empty on a warm cache)."""
        return [
            event.name
            for event in self.resolver.events
            if event.status == "built" and event.persistent
        ]


def select_stages(figures: Optional[Sequence[str]] = None) -> List[ExperimentStage]:
    """The stages a pipeline run will execute, in registry (figure) order.

    ``figures=None`` selects the full suite; otherwise names are validated
    against the registry (:class:`~.registry.UnknownExperimentError`) and
    returned in registry order regardless of the requested order.
    """
    stages = experiment_stages()
    if figures is None:
        return list(stages.values())
    wanted = {get_experiment(name).name for name in figures}
    return [stage for stage in stages.values() if stage.name in wanted]


def pipeline_artifact_plan(stages: Sequence[ExperimentStage]) -> List[str]:
    """Topological build order of every artifact the given stages declare.

    Validates the stage->artifact edges (unknown artifacts raise
    :class:`~.artifacts.UnknownArtifactError`) and the artifact->artifact
    edges (cycles raise :class:`~.artifacts.ArtifactCycleError`).
    """
    needed: List[str] = []
    for stage in stages:
        for name in stage.needs:
            if name not in needed:
                needed.append(name)
    return artifact_topological_order(needed)


def _execute_stage(
    stage: ExperimentStage, resolver: ArtifactResolver, scenario: Scenario
) -> StageResult:
    """Run one stage against a resolver, capturing timing and any failure."""
    stage_started = time.perf_counter()
    cpu_started = time.thread_time()
    payload: Any = None
    rendered = ""
    error: Optional[str] = None
    try:
        inputs = [resolver.artifact(name) for name in stage.needs]
        options = scenario.stage_options(stage.name)
        payload = stage.fn(*inputs, **options)
        rendered = render_payload(payload, title=f"{stage.name} — {stage.title}")
    except Exception as exc:
        error = f"{type(exc).__name__}: {exc}"
    return StageResult(
        name=stage.name,
        title=stage.title,
        needs=stage.needs,
        payload=payload,
        rendered=rendered,
        seconds=time.perf_counter() - stage_started,
        cpu_seconds=time.thread_time() - cpu_started,
        error=error,
    )


#: Per-worker resolver cache, keyed by (scenario cache token, cache dir) so a
#: long-lived worker process reuses its rehydrated artifacts across the
#: stages it executes instead of re-reading the store per stage.
_worker_resolvers: Dict[Tuple[str, str], ArtifactResolver] = {}


def _stage_worker(stage_name: str, scenario: Scenario, cache_dir: Optional[str]) -> StageResult:
    """Process-pool entry point: execute one stage by name in this worker.

    The stage is looked up in the worker's own registry (stage functions are
    not pickled) and its artifacts are rehydrated from the content-addressed
    disk store — nothing graph-sized crosses the process boundary; only the
    stage's payload comes back.
    """
    stage = experiment_stages()[stage_name]
    key = (json.dumps(scenario.cache_token(), sort_keys=True), str(cache_dir))
    resolver = _worker_resolvers.get(key)
    if resolver is None:
        _worker_resolvers.clear()  # a worker serves one pipeline run at a time
        resolver = ArtifactResolver(scenario, cache_dir=cache_dir)
        _worker_resolvers[key] = resolver
    return _execute_stage(stage, resolver, scenario)


def _stage_worker_init() -> None:
    # Stage workers own a full core each; the kernel-level parallel tier must
    # not fork pools of its own inside them (and a forked child must not
    # treat the parent's shared-memory bookkeeping as its own).
    engine_parallel._worker_init("fork")


def _resolve_executor(
    executor: str,
    jobs: int,
    stage_count: int,
    cache_dir: Optional[Union[str, Path]],
    injected_resolver: bool,
) -> str:
    """The stage-execution mode a run will actually use.

    ``"auto"`` picks processes when they can pay off: more than one job and
    stage, a disk cache for workers to rehydrate from, and no injected
    in-memory resolver (whose artifacts exist only in the parent heap).
    """
    if executor not in ("auto", "thread", "process"):
        raise ValueError(
            f"executor must be 'auto', 'thread' or 'process', got {executor!r}"
        )
    if jobs <= 1 or stage_count <= 1:
        return "thread"
    if executor == "auto":
        return "process" if cache_dir is not None and not injected_resolver else "thread"
    return executor


def run_pipeline(
    scenario: Union[str, Scenario],
    figures: Optional[Sequence[str]] = None,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    out_dir: Optional[Union[str, Path]] = None,
    resolver: Optional[ArtifactResolver] = None,
    executor: str = "auto",
    strict: bool = True,
) -> PipelineResult:
    """Run the declarative experiment pipeline for one scenario.

    Parameters
    ----------
    scenario:
        A preset name (``"paper-default"``, ``"tiny"``, ...) or a
        :class:`~.scenarios.Scenario` instance.
    figures:
        Stage names to run (default: the full suite).
    jobs:
        Concurrent stage executions.  Stages are mutually independent once
        artifacts are materialised, so any subset may run concurrently;
        artifact resolution itself is sequential (dependencies chain).
    cache_dir:
        Root of the content-addressed artifact store.  ``None`` shares
        artifacts in memory only (nothing is written or read).
    out_dir:
        Where to write ``manifest.json``, ``report.txt`` and the per-stage
        renderings.  ``None`` skips writing.
    resolver:
        Pre-populated resolver to reuse (tests; overrides ``cache_dir``).
    executor:
        ``"process"`` runs stages on a process pool (true multi-core;
        workers rehydrate artifacts from the disk store), ``"thread"`` on
        the legacy thread pool.  ``"auto"`` picks processes whenever
        ``jobs > 1`` and a disk cache is available.
    strict:
        When ``True`` (default), stage failures raise
        :class:`PipelineStageError` — *after* all outputs (including the
        surviving stages' results) are written.  ``False`` returns the
        :class:`PipelineResult` with per-stage ``error`` fields instead.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    stages = select_stages(figures)
    plan = pipeline_artifact_plan(stages)
    mode = _resolve_executor(
        executor, jobs, len(stages), cache_dir, injected_resolver=resolver is not None
    )
    if resolver is None:
        resolver = ArtifactResolver(scenario, cache_dir=cache_dir)
    started = time.perf_counter()

    for name in plan:
        resolver.artifact(name)
    artifact_seconds = time.perf_counter() - started

    if mode == "process":
        results = _run_stages_processes(stages, scenario, cache_dir, jobs)
    elif jobs > 1 and len(stages) > 1:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            results = list(
                pool.map(
                    lambda stage: _execute_stage(stage, resolver, scenario), stages
                )
            )
    else:
        results = [_execute_stage(stage, resolver, scenario) for stage in stages]

    result = PipelineResult(
        scenario=scenario,
        stages={stage_result.name: stage_result for stage_result in results},
        resolver=resolver,
        jobs=jobs,
        artifact_seconds=artifact_seconds,
        total_seconds=time.perf_counter() - started,
        executor=mode,
    )
    if out_dir is not None:
        result.out_dir = write_outputs(result, out_dir)
    failures = result.failures()
    if failures and strict:
        raise PipelineStageError(failures)
    return result


def _run_stages_processes(
    stages: Sequence[ExperimentStage],
    scenario: Scenario,
    cache_dir: Optional[Union[str, Path]],
    jobs: int,
) -> List[StageResult]:
    """Execute stages on a process pool, one future per stage, order preserved.

    A worker-side stage failure comes back inside its ``StageResult``; an
    infrastructure failure (a worker killed, a payload that cannot pickle)
    is converted into a failed ``StageResult`` for that stage so sibling
    stages still report.
    """
    cache = str(cache_dir) if cache_dir is not None else None
    try:
        context = get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = get_context("spawn")
    results: List[StageResult] = []
    with ProcessPoolExecutor(
        max_workers=jobs, mp_context=context, initializer=_stage_worker_init
    ) as pool:
        futures = [
            pool.submit(_stage_worker, stage.name, scenario, cache) for stage in stages
        ]
        for stage, future in zip(stages, futures):
            try:
                results.append(future.result())
            except Exception as exc:
                results.append(
                    StageResult(
                        name=stage.name,
                        title=stage.title,
                        needs=stage.needs,
                        payload=None,
                        rendered="",
                        seconds=0.0,
                        cpu_seconds=0.0,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
    return results


def write_outputs(result: PipelineResult, out_dir: Union[str, Path]) -> Path:
    """Write manifest.json, report.txt and per-stage renderings to ``out_dir``."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    (out / "manifest.json").write_text(
        json.dumps(result.manifest(), indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    (out / "report.txt").write_text(result.rendered_report(), encoding="utf-8")
    for stage in result.stages.values():
        (out / f"{stage.name}.txt").write_text(stage.rendered + "\n", encoding="utf-8")
    return out
