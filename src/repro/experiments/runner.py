"""The pipeline runner: one command reproduces the paper's full evaluation.

:func:`run_pipeline` takes a scenario (name or
:class:`~repro.experiments.scenarios.Scenario`), selects the requested stages
from the experiment registry, topologically materialises every artifact they
declare (freeze-once, content-addressed disk cache), and executes the stages
— optionally in parallel, since stages only depend on artifacts and never on
each other.  Each stage's returned payload is rendered to the same aligned
text tables the figure benches write (via
:func:`~repro.experiments.report.render_payload`), and the whole run is
summarised in a JSON manifest: per-stage timings, per-artifact cache status
(built vs cached), and the scenario token that keyed the cache.

Output layout (``out_dir``)::

    manifest.json     run summary (stages, artifacts, timings, scenario)
    report.txt        every stage's rendered tables, concatenated
    <stage>.txt       one rendered file per stage (fig04.txt, sec52.txt, ...)
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from .artifacts import ArtifactResolver, artifact_topological_order
from .registry import ExperimentStage, experiment_stages, get_experiment
from .report import render_payload
from .scenarios import Scenario, get_scenario


def canonical_payload(payload: Any) -> Any:
    """A JSON-compatible canonical form of a stage payload.

    Tuples become lists and non-string mapping keys become strings (tuple
    keys like Figure 15's ``(alpha, beta)`` join with a comma), recursively.
    Two payloads are byte-identical iff their canonical JSON dumps are — the
    parity contract between pipeline runs and direct figure calls.
    """
    if isinstance(payload, Mapping):
        return {_canonical_key(key): canonical_payload(value) for key, value in payload.items()}
    if isinstance(payload, (list, tuple)):
        return [canonical_payload(item) for item in payload]
    return payload


def _canonical_key(key: Any) -> str:
    if isinstance(key, str):
        return key
    if isinstance(key, tuple):
        return ",".join(f"{part:g}" if isinstance(part, float) else str(part) for part in key)
    return str(key)


def canonical_json(payload: Any) -> str:
    """Canonical JSON text of a stage payload (sorted keys, no whitespace)."""
    return json.dumps(canonical_payload(payload), sort_keys=True, separators=(",", ":"))


@dataclass
class StageResult:
    """One executed pipeline stage: payload, rendering, timing."""

    name: str
    title: str
    needs: Sequence[str]
    payload: Any
    rendered: str
    seconds: float


@dataclass
class PipelineResult:
    """A completed pipeline run."""

    scenario: Scenario
    stages: Dict[str, StageResult]
    resolver: ArtifactResolver
    jobs: int
    artifact_seconds: float
    total_seconds: float
    out_dir: Optional[Path] = None

    def manifest(self) -> Dict[str, Any]:
        """JSON-serializable summary of the run (written as manifest.json)."""
        events = self.resolver.events
        return {
            "scenario": {"name": self.scenario.name, **self.scenario.cache_token()},
            "jobs": self.jobs,
            "artifact_seconds": round(self.artifact_seconds, 6),
            "total_seconds": round(self.total_seconds, 6),
            "artifacts": [
                {
                    "name": event.name,
                    "key": event.key,
                    "status": event.status,
                    "persistent": event.persistent,
                    "seconds": round(event.seconds, 6),
                }
                for event in events
            ],
            "cache": {
                "hits": sum(1 for event in events if event.status == "cached"),
                "builds": sum(
                    1 for event in events if event.status == "built" and event.persistent
                ),
                "views": sum(
                    1 for event in events if event.status == "built" and not event.persistent
                ),
            },
            "stages": [
                {
                    "name": stage.name,
                    "title": stage.title,
                    "needs": list(stage.needs),
                    "seconds": round(stage.seconds, 6),
                }
                for stage in self.stages.values()
            ],
        }

    def rendered_report(self) -> str:
        """Every stage's rendered tables, concatenated in run order."""
        parts = [stage.rendered for stage in self.stages.values()]
        return "\n\n".join(parts) + "\n"

    def recomputed_persistent_artifacts(self) -> List[str]:
        """Persistent artifacts this run had to build (empty on a warm cache)."""
        return [
            event.name
            for event in self.resolver.events
            if event.status == "built" and event.persistent
        ]


def select_stages(figures: Optional[Sequence[str]] = None) -> List[ExperimentStage]:
    """The stages a pipeline run will execute, in registry (figure) order.

    ``figures=None`` selects the full suite; otherwise names are validated
    against the registry (:class:`~.registry.UnknownExperimentError`) and
    returned in registry order regardless of the requested order.
    """
    stages = experiment_stages()
    if figures is None:
        return list(stages.values())
    wanted = {get_experiment(name).name for name in figures}
    return [stage for stage in stages.values() if stage.name in wanted]


def pipeline_artifact_plan(stages: Sequence[ExperimentStage]) -> List[str]:
    """Topological build order of every artifact the given stages declare.

    Validates the stage->artifact edges (unknown artifacts raise
    :class:`~.artifacts.UnknownArtifactError`) and the artifact->artifact
    edges (cycles raise :class:`~.artifacts.ArtifactCycleError`).
    """
    needed: List[str] = []
    for stage in stages:
        for name in stage.needs:
            if name not in needed:
                needed.append(name)
    return artifact_topological_order(needed)


def run_pipeline(
    scenario: Union[str, Scenario],
    figures: Optional[Sequence[str]] = None,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    out_dir: Optional[Union[str, Path]] = None,
    resolver: Optional[ArtifactResolver] = None,
) -> PipelineResult:
    """Run the declarative experiment pipeline for one scenario.

    Parameters
    ----------
    scenario:
        A preset name (``"paper-default"``, ``"tiny"``, ...) or a
        :class:`~.scenarios.Scenario` instance.
    figures:
        Stage names to run (default: the full suite).
    jobs:
        Worker threads for stage execution.  Stages are mutually independent
        once artifacts are materialised, so any subset may run concurrently;
        artifact resolution itself is sequential (dependencies chain).
    cache_dir:
        Root of the content-addressed artifact store.  ``None`` shares
        artifacts in memory only (nothing is written or read).
    out_dir:
        Where to write ``manifest.json``, ``report.txt`` and the per-stage
        renderings.  ``None`` skips writing.
    resolver:
        Pre-populated resolver to reuse (tests; overrides ``cache_dir``).
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    stages = select_stages(figures)
    plan = pipeline_artifact_plan(stages)
    if resolver is None:
        resolver = ArtifactResolver(scenario, cache_dir=cache_dir)
    started = time.perf_counter()

    for name in plan:
        resolver.artifact(name)
    artifact_seconds = time.perf_counter() - started

    def execute(stage: ExperimentStage) -> StageResult:
        inputs = [resolver.artifact(name) for name in stage.needs]
        options = scenario.stage_options(stage.name)
        stage_started = time.perf_counter()
        payload = stage.fn(*inputs, **options)
        seconds = time.perf_counter() - stage_started
        rendered = render_payload(payload, title=f"{stage.name} — {stage.title}")
        return StageResult(
            name=stage.name,
            title=stage.title,
            needs=stage.needs,
            payload=payload,
            rendered=rendered,
            seconds=seconds,
        )

    if jobs > 1 and len(stages) > 1:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(execute, stages))
    else:
        results = [execute(stage) for stage in stages]

    result = PipelineResult(
        scenario=scenario,
        stages={stage_result.name: stage_result for stage_result in results},
        resolver=resolver,
        jobs=jobs,
        artifact_seconds=artifact_seconds,
        total_seconds=time.perf_counter() - started,
    )
    if out_dir is not None:
        result.out_dir = write_outputs(result, out_dir)
    return result


def write_outputs(result: PipelineResult, out_dir: Union[str, Path]) -> Path:
    """Write manifest.json, report.txt and per-stage renderings to ``out_dir``."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    (out / "manifest.json").write_text(
        json.dumps(result.manifest(), indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    (out / "report.txt").write_text(result.rendered_report(), encoding="utf-8")
    for stage in result.stages.values():
        (out / f"{stage.name}.txt").write_text(stage.rendered + "\n", encoding="utf-8")
    return out
