"""Generative models: attachment, triangle closing, Algorithm 1, baselines, theory."""

from .attachment import (
    AttachmentModel,
    LinearAttributePreferentialAttachment,
    PowerAttributePreferentialAttachment,
    PreferentialAttachment,
    UniformAttachment,
    make_attachment_model,
    sample_lapa_target_fast,
    shared_attribute_count,
)
from .estimation import EstimationResult, estimate_parameters, greedy_refine
from .fast_sim import (
    LOOP_ENGINE,
    SAN_GENERATE_OP,
    VECTORIZED_ENGINE,
    FastSANModelRun,
    SnapshotMark,
    generate_san_fast,
    san_generate,
)
from .history import ArrivalEvent, ArrivalHistory, apply_event
from .kim_leskovec import expected_degree, generate_mag_san
from .lifetime import (
    expected_lifetime,
    sample_sleep_time,
    sample_truncated_normal_lifetime,
    truncated_normal_moments,
)
from .likelihood import (
    AttachmentModelSpec,
    LikelihoodResult,
    evaluate_attachment_models,
    figure15_sweep,
)
from .parameters import (
    AttachmentParameters,
    LifetimeParameters,
    MAGModelParameters,
    SANModelParameters,
    ZhelModelParameters,
)
from .san_model import SANGenerativeModel, SANModelRun, generate_san
from .theory import (
    LognormalPrediction,
    harmonic_outdegree_approximation,
    invert_theorem_one,
    invert_theorem_two,
    predicted_attribute_degree_lognormal,
    predicted_attribute_social_degree_exponent,
    predicted_outdegree_lognormal,
)
from .triangle_closing import (
    BaselineClosing,
    ClosureModelComparison,
    RandomRandomClosing,
    RandomRandomSANClosing,
    TriangleClosingModel,
    evaluate_closure_models,
)
from .zhel import ZhelGenerativeModel, generate_zhel_san

__all__ = [
    "AttachmentModel",
    "LinearAttributePreferentialAttachment",
    "PowerAttributePreferentialAttachment",
    "PreferentialAttachment",
    "UniformAttachment",
    "make_attachment_model",
    "sample_lapa_target_fast",
    "shared_attribute_count",
    "EstimationResult",
    "estimate_parameters",
    "greedy_refine",
    "LOOP_ENGINE",
    "SAN_GENERATE_OP",
    "VECTORIZED_ENGINE",
    "FastSANModelRun",
    "SnapshotMark",
    "generate_san_fast",
    "san_generate",
    "ArrivalEvent",
    "ArrivalHistory",
    "apply_event",
    "expected_degree",
    "generate_mag_san",
    "expected_lifetime",
    "sample_sleep_time",
    "sample_truncated_normal_lifetime",
    "truncated_normal_moments",
    "AttachmentModelSpec",
    "LikelihoodResult",
    "evaluate_attachment_models",
    "figure15_sweep",
    "AttachmentParameters",
    "LifetimeParameters",
    "MAGModelParameters",
    "SANModelParameters",
    "ZhelModelParameters",
    "SANGenerativeModel",
    "SANModelRun",
    "generate_san",
    "LognormalPrediction",
    "harmonic_outdegree_approximation",
    "invert_theorem_one",
    "invert_theorem_two",
    "predicted_attribute_degree_lognormal",
    "predicted_attribute_social_degree_exponent",
    "predicted_outdegree_lognormal",
    "BaselineClosing",
    "ClosureModelComparison",
    "RandomRandomClosing",
    "RandomRandomSANClosing",
    "TriangleClosingModel",
    "evaluate_closure_models",
    "ZhelGenerativeModel",
    "generate_zhel_san",
]
