"""Log-likelihood evaluation of attachment models on observed link arrivals.

This reproduces the Figure 15 methodology: given an arrival history, each new
social link ``u -> v`` contributes ``log( f(u, v) / sum_x f(u, x) )`` where the
sum runs over every social node existing at that moment (excluding ``u``), and
``f`` is the attachment model's weight.  The relative improvement of a model
over classical PA is then ``(l_PA - l_model) / l_PA`` (log-likelihoods are
negative, so positive numbers mean the model explains the arrivals better).

Like generation, evaluation is an engine-registry operation
(``"attachment_likelihood"``) with two backends sharing one scored-link
selection stream (same seed, same scored links):

* ``"loop"`` (this module) — the reference implementation.  It replays the
  history through a mutable dict-backed SAN while maintaining, for every
  requested ``alpha``, the running sum ``S_alpha = sum_x (d_i(x) + s)^alpha``,
  so each evaluated link only needs the attribute-community correction term,
  iterated per member in Python.
* ``"vectorized"`` (:mod:`repro.models.fast_likelihood`) — encodes the history
  into flat int arrays once, reconstructs every ``S_alpha`` prefix with one
  cumulative sum, and scores the sampled links in batches across the whole
  (kind, alpha, beta) spec grid via numpy broadcasting over a CSR
  attribute-membership layout.

:func:`evaluate_attachment_models` and :func:`figure15_sweep` route between
them via ``registry.select`` and an ``engine="auto"`` kwarg, exactly like
:func:`repro.models.san_generate`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from ..engine import registry as engine_registry
from ..graph.san import SAN
from ..utils.rng import RngLike, ensure_rng
from .history import EVENT_ATTRIBUTE, EVENT_NODE, ArrivalHistory, apply_event

Node = Hashable

#: Operation name under which both likelihood engines are registered.
ATTACHMENT_LIKELIHOOD_OP = "attachment_likelihood"

#: Default subsample seed.  The scored-link subsample (``max_links``) must be
#: reproducible by default — a system-entropy default made every reported
#: improvement number drift run to run.  Pass ``random.Random()`` explicitly
#: for non-deterministic subsampling.
DEFAULT_LIKELIHOOD_SEED = 15


@dataclass(frozen=True)
class AttachmentModelSpec:
    """A (family, alpha, beta) triple to score against the arrival history."""

    kind: str  # "pa", "papa", or "lapa" ("pa" ignores beta)
    alpha: float
    beta: float = 0.0
    label: Optional[str] = None

    @property
    def name(self) -> str:
        if self.label is not None:
            return self.label
        # Include the family even when beta == 0 so every spec in a sweep has a
        # distinct log-likelihood slot (PAPA and LAPA with beta = 0 are both
        # proportional to PA, but they are separate grid entries).
        return f"{self.kind}(alpha={self.alpha:g}, beta={self.beta:g})"

    def attribute_factor(self, shared: float) -> float:
        """The model's multiplicative attribute term ``1 + g(a(u, v))``."""
        if self.kind == "lapa":
            return 1.0 + self.beta * shared
        if self.kind == "papa":
            if self.beta == 0:
                return 2.0
            return 1.0 + (shared ** self.beta if shared > 0 else 0.0)
        return 1.0


@dataclass
class LikelihoodResult:
    """Total log-likelihood of each model plus the number of scored links."""

    log_likelihoods: Dict[str, float]
    num_links_scored: int

    def relative_improvement_over(self, baseline_name: str) -> Dict[str, float]:
        """``(l_baseline - l_model) / l_baseline`` for every model (Figure 15)."""
        baseline = self.log_likelihoods[baseline_name]
        if baseline == 0:
            raise ValueError("baseline log-likelihood is zero; cannot normalise")
        return {
            name: (baseline - value) / baseline
            for name, value in self.log_likelihoods.items()
        }


def evaluate_attachment_models_loop(
    history: ArrivalHistory,
    specs: Sequence[AttachmentModelSpec],
    smoothing: float = 1.0,
    max_links: Optional[int] = 2000,
    rng: RngLike = DEFAULT_LIKELIHOOD_SEED,
) -> LikelihoodResult:
    """The ``"loop"`` backend: replay through a mutable SAN, score per member.

    ``max_links`` subsamples the scored links uniformly (all links are still
    replayed to keep the state evolution faithful); pass ``None`` to score all.
    One uniform variate is consumed per social-link event, which is the
    contract that keeps the scored-link set identical across backends for a
    given seed.
    """
    generator = ensure_rng(rng)
    total_links = history.num_social_links()
    if total_links == 0:
        raise ValueError("the arrival history contains no social link events")
    if max_links is None or max_links >= total_links:
        score_probability = 1.0
    else:
        score_probability = max_links / total_links

    alphas = sorted({spec.alpha for spec in specs})
    state = history.initial.copy()

    # Running structures: in-degree of each node and sum over nodes of
    # (d_i + smoothing)^alpha for every requested alpha.
    in_degree: Dict[Node, int] = {
        node: state.social_in_degree(node) for node in state.social_nodes()
    }
    alpha_sums: Dict[float, float] = {
        alpha: sum((degree + smoothing) ** alpha for degree in in_degree.values())
        for alpha in alphas
    }

    log_likelihoods = {spec.name: 0.0 for spec in specs}
    scored = 0

    def register_node(node: Node) -> None:
        if node in in_degree:
            return
        in_degree[node] = 0
        for alpha in alphas:
            alpha_sums[alpha] += smoothing ** alpha

    def register_social_edge(source: Node, target: Node) -> None:
        register_node(source)
        register_node(target)
        old_degree = in_degree[target]
        if state.has_social_edge(source, target):
            return
        in_degree[target] = old_degree + 1
        for alpha in alphas:
            alpha_sums[alpha] += (old_degree + 1 + smoothing) ** alpha - (
                old_degree + smoothing
            ) ** alpha

    for event in history.events:
        if event.kind == EVENT_NODE:
            register_node(event.first)
            apply_event(state, event)
            continue
        if event.kind == EVENT_ATTRIBUTE:
            register_node(event.first)
            apply_event(state, event)
            continue

        source, target = event.first, event.second
        register_node(source)
        register_node(target)
        if (
            generator.random() < score_probability
            and state.is_social_node(target)
            and not state.has_social_edge(source, target)
            and source != target
        ):
            _score_link(
                state,
                source,
                target,
                specs,
                smoothing,
                in_degree,
                alpha_sums,
                log_likelihoods,
            )
            scored += 1
        register_social_edge(source, target)
        apply_event(state, event)

    if scored == 0:
        raise ValueError("no social links were scored; increase max_links")
    return LikelihoodResult(log_likelihoods=log_likelihoods, num_links_scored=scored)


def _score_link(
    state: SAN,
    source: Node,
    target: Node,
    specs: Sequence[AttachmentModelSpec],
    smoothing: float,
    in_degree: Dict[Node, int],
    alpha_sums: Dict[float, float],
    log_likelihoods: Dict[str, float],
) -> None:
    """Add one link's log-probability to every model's running total."""
    # Shared-attribute counts between the source and every member of its
    # attribute communities (all other nodes share zero attributes).
    shared_counts: Dict[Node, int] = {}
    for attribute in state.attribute_neighbors(source):
        for member in state.attributes.members_of(attribute):
            if member == source:
                continue
            shared_counts[member] = shared_counts.get(member, 0) + 1

    source_term: Dict[float, float] = {}
    for spec in specs:
        alpha = spec.alpha
        # Denominator base: sum over all nodes except the source itself.
        if alpha not in source_term:
            source_term[alpha] = (in_degree.get(source, 0) + smoothing) ** alpha
        base = alpha_sums[alpha] - source_term[alpha]
        if spec.kind in ("lapa", "papa") and spec.beta > 0:
            correction = 0.0
            for member, shared in shared_counts.items():
                weight = (in_degree.get(member, 0) + smoothing) ** alpha
                correction += weight * (spec.attribute_factor(shared) - 1.0)
            denominator = base + correction
        elif spec.kind == "papa" and spec.beta == 0:
            denominator = 2.0 * base
        else:
            denominator = base
        shared_with_target = shared_counts.get(target, 0)
        numerator = (
            (in_degree.get(target, 0) + smoothing) ** alpha
        ) * spec.attribute_factor(float(shared_with_target))
        if numerator <= 0 or denominator <= 0:
            continue
        log_likelihoods[spec.name] += math.log(numerator / denominator)


def evaluate_attachment_models(
    history: ArrivalHistory,
    specs: Sequence[AttachmentModelSpec],
    smoothing: float = 1.0,
    max_links: Optional[int] = 2000,
    rng: RngLike = DEFAULT_LIKELIHOOD_SEED,
    engine: str = "auto",
) -> LikelihoodResult:
    """Score attachment model specs against the social-link arrivals in ``history``.

    ``max_links`` subsamples the scored links uniformly (all links are still
    replayed to keep the state evolution faithful); pass ``None`` to score all.
    The subsample is seeded (:data:`DEFAULT_LIKELIHOOD_SEED`) so repeated
    evaluations agree by default.

    ``engine`` selects the backend registered under the
    ``"attachment_likelihood"`` operation: ``"vectorized"`` (array backend,
    :mod:`repro.models.fast_likelihood`), ``"loop"`` (reference
    implementation), or ``"auto"`` — the best registered backend, currently
    always the vectorized one.  Both backends draw the scored-link subsample
    identically, so switching engines never changes *which* links are scored,
    only how fast they are scored.
    """
    from . import fast_likelihood  # noqa: F401  (registers the vectorized backend)

    if engine == "auto":
        engine = fast_likelihood.VECTORIZED_ENGINE
    kernel = engine_registry.select(ATTACHMENT_LIKELIHOOD_OP, engine)
    if kernel is None:
        known = sorted(
            {entry.backend for entry in engine_registry.kernels_for(ATTACHMENT_LIKELIHOOD_OP)}
        )
        raise engine_registry.NoKernelError(
            f"unknown likelihood engine {engine!r}; registered engines: {known}"
        )
    return kernel.fn(history, specs, smoothing=smoothing, max_links=max_links, rng=rng)


def figure15_specs(
    alphas: Iterable[float] = (0.0, 0.5, 1.0, 1.5, 2.0),
    papa_betas: Iterable[float] = (0.0, 2.0, 4.0, 6.0, 8.0),
    lapa_betas: Iterable[float] = (0.0, 10.0, 100.0, 200.0, 500.0),
) -> List[AttachmentModelSpec]:
    """The Figure 15 spec grid plus the PA and uniform reference models."""
    specs: List[AttachmentModelSpec] = [
        AttachmentModelSpec(kind="pa", alpha=1.0, beta=0.0, label="pa_reference"),
        AttachmentModelSpec(kind="pa", alpha=0.0, beta=0.0, label="uniform_reference"),
    ]
    for alpha in alphas:
        for beta in papa_betas:
            specs.append(AttachmentModelSpec(kind="papa", alpha=alpha, beta=beta))
        for beta in lapa_betas:
            specs.append(AttachmentModelSpec(kind="lapa", alpha=alpha, beta=beta))
    return specs


def figure15_sweep(
    history: ArrivalHistory,
    alphas: Iterable[float] = (0.0, 0.5, 1.0, 1.5, 2.0),
    papa_betas: Iterable[float] = (0.0, 2.0, 4.0, 6.0, 8.0),
    lapa_betas: Iterable[float] = (0.0, 10.0, 100.0, 200.0, 500.0),
    smoothing: float = 1.0,
    max_links: Optional[int] = 2000,
    rng: RngLike = DEFAULT_LIKELIHOOD_SEED,
    engine: str = "auto",
) -> Dict[str, Dict[Tuple[float, float], float]]:
    """The full Figure 15 sweep: relative improvement over PA for PAPA and LAPA.

    Returns ``{"papa": {(alpha, beta): improvement}, "lapa": {...},
    "pa_over_uniform": improvement_of_pa_over_uniform,
    "num_links_scored": count}`` where improvements are relative to the PA
    model (alpha = 1, beta = 0), matching the paper's definition.  Same-seed
    sweeps are bit-identical per engine.
    """
    specs = figure15_specs(alphas, papa_betas, lapa_betas)

    result = evaluate_attachment_models(
        history, specs, smoothing=smoothing, max_links=max_links, rng=rng, engine=engine
    )
    improvements = result.relative_improvement_over("pa_reference")

    papa_grid: Dict[Tuple[float, float], float] = {}
    lapa_grid: Dict[Tuple[float, float], float] = {}
    for spec in specs:
        if spec.label is not None:
            continue
        grid = papa_grid if spec.kind == "papa" else lapa_grid
        grid[(spec.alpha, spec.beta)] = improvements[spec.name]
    return {
        "papa": papa_grid,
        "lapa": lapa_grid,
        "pa_over_uniform": _pa_over_uniform(result),
        "num_links_scored": result.num_links_scored,
    }


def _pa_over_uniform(result: LikelihoodResult) -> float:
    """Relative improvement of PA(alpha=1) over the uniform model."""
    uniform = result.log_likelihoods["uniform_reference"]
    pa = result.log_likelihoods["pa_reference"]
    if uniform == 0:
        return 0.0
    return (uniform - pa) / uniform


engine_registry.register(
    ATTACHMENT_LIKELIHOOD_OP, evaluate_attachment_models_loop, backend="loop"
)
