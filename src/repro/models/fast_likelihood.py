"""Vectorized attachment-likelihood engine (the ``"vectorized"`` backend).

The loop backend in :mod:`repro.models.likelihood` replays every arrival
event through a dict-backed SAN and, for each scored link, walks the members
of the source's attribute communities in Python — once per (link, spec with
beta > 0).  At the 50k+-step histories the vectorized generator now produces,
that replay-and-scan is the last per-event hot path in the Figure 15
pipeline.  This module re-derives the same quantities from flat arrays:

* **Compact encoding** — :func:`encode_history` lowers an
  :class:`~repro.models.history.ArrivalHistory` into int arrays (the same
  node-id/attribute-id interning idea as the event log in
  :mod:`repro.models.fast_sim`): one record per social-link event carrying
  the source/target degrees and eligibility at its scoring point, a
  bookkeeping *update stream* mirroring the loop backend's ``register_node``
  / degree-increment order, per-target in-degree gain positions, and a CSR
  attribute-membership layout (node -> attributes, attribute -> members)
  timestamped by event position so any moment's membership is a filter, not
  a replay.
* **Prefix ``S_alpha`` sums** — the loop maintains ``S_alpha = sum_x
  (d_i(x) + s)^alpha`` incrementally; here the whole trajectory is one
  broadcast delta matrix plus a cumulative sum, and the value *at any scored
  link* is a row gather.
* **Batched community corrections** — scored links are processed in chunks:
  the members of each source's attributes are gathered through the CSR
  layout, shared-attribute counts come from one ``np.unique`` over
  ``(link, member)`` keys, member in-degrees at the link's moment come from
  one ``np.searchsorted`` over composite ``(target, position)`` keys, and
  every (kind, alpha, beta) spec's correction reduces with ``np.bincount``
  — no per-member Python loop anywhere.

Both backends consume one uniform variate per social-link event when
subsampling, so a given seed selects the *identical* scored-link set on
either engine; per-model log-likelihoods then agree to float round-off
(the exact-parity gate in ``benchmarks/bench_likelihood.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..engine import registry as engine_registry
from ..utils.rng import RngLike, ensure_rng
from .fast_sim import LOOP_ENGINE, VECTORIZED_ENGINE
from .history import EVENT_ATTRIBUTE, EVENT_SOCIAL, ArrivalHistory
from .likelihood import (
    ATTACHMENT_LIKELIHOOD_OP,
    DEFAULT_LIKELIHOOD_SEED,
    AttachmentModelSpec,
    LikelihoodResult,
)

#: Scored links are batched in chunks of this many for the community-
#: correction gathers (bounds peak memory of the member concatenation).
SCORE_CHUNK = 128


@dataclass
class EncodedHistory:
    """An :class:`ArrivalHistory` lowered to flat arrays (see module docs).

    Positions are *shifted* event indices: 0 means "present in the initial
    SAN", ``i + 1`` means "created by event ``i``" — so membership or a
    degree gain is visible at the scoring point of event ``j`` iff its
    position is ``<= j``.
    """

    num_nodes: int
    num_initial_nodes: int
    num_attributes: int
    num_events: int
    initial_in_degree: np.ndarray  # (num_nodes,) nonzero only for initial nodes
    # One record per social-link event, in arrival order:
    social_src: np.ndarray
    social_dst: np.ndarray
    social_pos: np.ndarray  # global event index
    social_eligible: np.ndarray  # scoreable: target social, new edge, not a self-loop
    social_src_degree: np.ndarray  # source in-degree at the scoring point
    social_dst_degree: np.ndarray
    social_update_count: np.ndarray  # bookkeeping updates applied before scoring
    # Bookkeeping update stream (-1 = node registration, k >= 0 = a target's
    # in-degree stepping k -> k + 1), in the loop backend's exact order:
    update_old_degree: np.ndarray
    # Per-target in-degree gains as sorted composite keys target*(E+2)+pos:
    gain_comp: np.ndarray
    gain_indptr: np.ndarray  # (num_nodes + 1,)
    # CSR membership, timestamped: node -> (attribute, position) ...
    node_attr_indptr: np.ndarray
    node_attr_ids: np.ndarray
    node_attr_pos: np.ndarray
    # ... and attribute -> (member, position):
    attr_member_indptr: np.ndarray
    attr_member_ids: np.ndarray
    attr_member_pos: np.ndarray


def _csr_from_triples(
    rows: List[int], cols: List[int], pos: List[int], num_rows: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group (row, col, position) triples into a CSR keyed by ``row``.

    The stable sort preserves arrival order within a row, so per-row
    positions stay ascending.
    """
    row_arr = np.asarray(rows, dtype=np.int64)
    order = np.argsort(row_arr, kind="stable")
    counts = np.bincount(row_arr, minlength=num_rows).astype(np.int64)
    indptr = np.zeros(num_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    col_arr = np.asarray(cols, dtype=np.int64)[order]
    pos_arr = np.asarray(pos, dtype=np.int64)[order]
    return indptr, col_arr, pos_arr


def encode_history(history: ArrivalHistory) -> EncodedHistory:
    """One pass over the history producing the arrays the scorer consumes.

    The pass mirrors the loop backend's bookkeeping order exactly — node
    registrations happen at a node's first appearance in *any* event role,
    degree increments only for links not already present — which is what
    makes the prefix sums reproduce the loop's ``alpha_sums`` values.
    """
    initial = history.initial
    events = history.events
    node_ids: Dict[object, int] = {}
    attr_ids: Dict[object, int] = {}
    initial_degrees: List[int] = []
    for node in initial.social_nodes():
        node_ids[node] = len(node_ids)
        initial_degrees.append(initial.social_in_degree(node))
    num_initial = len(node_ids)
    for attribute in initial.attribute_nodes():
        attr_ids[attribute] = len(attr_ids)

    # Dense id-indexed state: ids are assigned consecutively, so flag
    # bytearrays and int-keyed dedup sets beat hashing labels/tuples in the
    # per-event hot loop below.  Social and attribute ids live in separate
    # namespaces, so membership keys need their own (attribute-id) stride.
    max_ids = num_initial + 2 * len(events) + 1
    edge_stride = max_ids
    attr_stride = len(attr_ids) + len(events) + 1
    edges = set()
    for source, target in initial.social_edges():
        edges.add(node_ids[source] * edge_stride + node_ids[target])

    member_rows: List[int] = []  # attribute id per membership
    member_cols: List[int] = []  # member (social) id
    member_pos: List[int] = []
    memberships = set()
    for social, attribute in initial.attribute_edges():
        key = node_ids[social] * attr_stride + attr_ids[attribute]
        if key not in memberships:
            memberships.add(key)
            member_cols.append(node_ids[social])
            member_rows.append(attr_ids[attribute])
            member_pos.append(0)

    degree: List[int] = list(initial_degrees)
    registered = bytearray(max_ids)
    san_social = bytearray(max_ids)
    for ident in range(num_initial):
        registered[ident] = 1
        san_social[ident] = 1
    updates: List[int] = []

    src_list: List[int] = []
    dst_list: List[int] = []
    pos_list: List[int] = []
    eligible_list: List[bool] = []
    src_deg_list: List[int] = []
    dst_deg_list: List[int] = []
    upd_list: List[int] = []
    gain_targets: List[int] = []
    gain_pos: List[int] = []

    node_get = node_ids.get
    attr_get = attr_ids.get
    updates_append = updates.append
    degree_append = degree.append
    src_append = src_list.append
    dst_append = dst_list.append
    pos_append = pos_list.append
    eligible_append = eligible_list.append
    src_deg_append = src_deg_list.append
    dst_deg_append = dst_deg_list.append
    upd_append = upd_list.append
    gain_target_append = gain_targets.append
    gain_pos_append = gain_pos.append
    edges_add = edges.add
    num_updates = 0

    for index, event in enumerate(events):
        kind = event.kind
        if kind == EVENT_SOCIAL:
            source = node_get(event.first)
            if source is None:
                source = node_ids[event.first] = len(node_ids)
                degree_append(0)
            target = node_get(event.second)
            if target is None:
                target = node_ids[event.second] = len(node_ids)
                degree_append(0)
            if not registered[source]:
                registered[source] = 1
                updates_append(-1)
                num_updates += 1
            if not registered[target]:
                registered[target] = 1
                updates_append(-1)
                num_updates += 1
            src_append(source)
            dst_append(target)
            pos_append(index)
            target_degree = degree[target]
            src_deg_append(degree[source])
            dst_deg_append(target_degree)
            upd_append(num_updates)
            edge_key = source * edge_stride + target
            if edge_key not in edges:
                eligible_append(san_social[target] == 1 and source != target)
                edges_add(edge_key)
                updates_append(target_degree)
                num_updates += 1
                degree[target] = target_degree + 1
                gain_target_append(target)
                gain_pos_append(index + 1)
            else:
                eligible_append(False)
            san_social[source] = 1
            san_social[target] = 1
            continue

        ident = node_get(event.first)
        if ident is None:
            ident = node_ids[event.first] = len(node_ids)
            degree_append(0)
        if not registered[ident]:
            registered[ident] = 1
            updates_append(-1)
            num_updates += 1
        if kind == EVENT_ATTRIBUTE:
            attribute = attr_get(event.second)
            if attribute is None:
                attribute = attr_ids[event.second] = len(attr_ids)
            key = ident * attr_stride + attribute
            if key not in memberships:
                memberships.add(key)
                member_cols.append(ident)
                member_rows.append(attribute)
                member_pos.append(index + 1)
        san_social[ident] = 1

    num_nodes = len(node_ids)
    num_events = len(history.events)
    d0 = np.zeros(num_nodes, dtype=np.int64)
    d0[:num_initial] = np.asarray(initial_degrees, dtype=np.int64)

    stride = num_events + 2
    target_arr = np.asarray(gain_targets, dtype=np.int64)
    gpos_arr = np.asarray(gain_pos, dtype=np.int64)
    order = np.argsort(target_arr, kind="stable")  # positions ascend per target
    gain_comp = target_arr[order] * stride + gpos_arr[order]
    gain_counts = np.bincount(target_arr, minlength=num_nodes).astype(np.int64)
    gain_indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(gain_counts, out=gain_indptr[1:])

    node_attr_indptr, node_attr_ids, node_attr_pos = _csr_from_triples(
        member_cols, member_rows, member_pos, num_nodes
    )
    attr_member_indptr, attr_member_ids, attr_member_pos = _csr_from_triples(
        member_rows, member_cols, member_pos, len(attr_ids)
    )

    return EncodedHistory(
        num_nodes=num_nodes,
        num_initial_nodes=num_initial,
        num_attributes=len(attr_ids),
        num_events=num_events,
        initial_in_degree=d0,
        social_src=np.asarray(src_list, dtype=np.int64),
        social_dst=np.asarray(dst_list, dtype=np.int64),
        social_pos=np.asarray(pos_list, dtype=np.int64),
        social_eligible=np.asarray(eligible_list, dtype=bool),
        social_src_degree=np.asarray(src_deg_list, dtype=np.int64),
        social_dst_degree=np.asarray(dst_deg_list, dtype=np.int64),
        social_update_count=np.asarray(upd_list, dtype=np.int64),
        update_old_degree=np.asarray(updates, dtype=np.int64),
        gain_comp=gain_comp,
        gain_indptr=gain_indptr,
        node_attr_indptr=node_attr_indptr,
        node_attr_ids=node_attr_ids,
        node_attr_pos=node_attr_pos,
        attr_member_indptr=attr_member_indptr,
        attr_member_ids=attr_member_ids,
        attr_member_pos=attr_member_pos,
    )


def _row_positions(indptr: np.ndarray, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Flat indices selecting the CSR rows in ``rows``, plus per-row counts.

    Returning *indices* (not values) lets one gather drive several parallel
    data arrays (ids and their timestamps).
    """
    counts = indptr[rows + 1] - indptr[rows]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), counts
    starts = np.repeat(indptr[rows], counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return starts + offsets, counts


def _factor_minus_one(spec: AttachmentModelSpec, shared: np.ndarray) -> np.ndarray:
    """Vectorized ``attribute_factor(shared) - 1`` for members (shared >= 1)."""
    if spec.kind == "lapa":
        return spec.beta * shared.astype(np.float64)
    return shared.astype(np.float64) ** spec.beta


def _attribute_factors(spec: AttachmentModelSpec, shared: np.ndarray) -> np.ndarray:
    """Vectorized ``attribute_factor`` for targets (shared may be 0)."""
    if spec.kind == "lapa":
        return 1.0 + spec.beta * shared.astype(np.float64)
    if spec.kind == "papa":
        if spec.beta == 0:
            return np.full(shared.shape, 2.0)
        return 1.0 + np.where(shared > 0, shared.astype(np.float64) ** spec.beta, 0.0)
    return np.ones(shared.shape)


def evaluate_attachment_models_fast(
    history: ArrivalHistory,
    specs: Sequence[AttachmentModelSpec],
    smoothing: float = 1.0,
    max_links: Optional[int] = 2000,
    rng: RngLike = DEFAULT_LIKELIHOOD_SEED,
) -> LikelihoodResult:
    """The ``"vectorized"`` backend of ``evaluate_attachment_models``.

    Semantically identical to
    :func:`~repro.models.likelihood.evaluate_attachment_models_loop`
    (same scored-link selection stream, same skip rules for non-positive
    weights); the encoding pass is the only per-event Python left and is
    charged to this backend in ``benchmarks/bench_likelihood.py``.
    """
    generator = ensure_rng(rng)
    encoded = encode_history(history)
    total_links = int(encoded.social_src.size)
    if total_links == 0:
        raise ValueError("the arrival history contains no social link events")

    if max_links is None or max_links >= total_links:
        scored_mask = encoded.social_eligible
    else:
        probability = max_links / total_links
        draws = np.fromiter(
            (generator.random() for _ in range(total_links)),
            dtype=np.float64,
            count=total_links,
        )
        scored_mask = (draws < probability) & encoded.social_eligible
    scored_index = np.nonzero(scored_mask)[0]
    num_scored = int(scored_index.size)
    if num_scored == 0:
        raise ValueError("no social links were scored; increase max_links")

    alphas = sorted({spec.alpha for spec in specs})
    alpha_arr = np.asarray(alphas, dtype=np.float64)
    alpha_of = {alpha: column for column, alpha in enumerate(alphas)}

    # S_alpha prefix: one delta per bookkeeping update, cumulated once.
    old = encoded.update_old_degree
    node_registration = old < 0
    base_degree = np.where(node_registration, 0, old).astype(np.float64)[:, None]
    deltas = np.where(
        node_registration[:, None],
        np.power(smoothing, alpha_arr)[None, :],
        (base_degree + 1.0 + smoothing) ** alpha_arr[None, :]
        - (base_degree + smoothing) ** alpha_arr[None, :],
    )
    prefix = np.zeros((old.size + 1, alpha_arr.size))
    np.cumsum(deltas, axis=0, out=prefix[1:])
    initial_degrees = encoded.initial_in_degree[: encoded.num_initial_nodes]
    initial_sums = (
        (initial_degrees.astype(np.float64)[:, None] + smoothing) ** alpha_arr[None, :]
    ).sum(axis=0)
    sums_at_score = initial_sums[None, :] + prefix[encoded.social_update_count[scored_index]]

    source_degree = encoded.social_src_degree[scored_index].astype(np.float64)
    target_degree = encoded.social_dst_degree[scored_index].astype(np.float64)
    source_pow = (source_degree[:, None] + smoothing) ** alpha_arr[None, :]
    target_pow = (target_degree[:, None] + smoothing) ** alpha_arr[None, :]
    base = sums_at_score - source_pow

    correction_columns = [
        column
        for column, spec in enumerate(specs)
        if spec.kind in ("lapa", "papa") and spec.beta > 0
    ]
    needs_members = any(
        spec.kind in ("lapa", "papa") and spec.beta != 0 for spec in specs
    )
    corrections = np.zeros((num_scored, len(specs)))
    shared_with_target = np.zeros(num_scored, dtype=np.int64)

    if needs_members:
        num_nodes = encoded.num_nodes
        stride = encoded.num_events + 2
        for start in range(0, num_scored, SCORE_CHUNK):
            chunk = scored_index[start : start + SCORE_CHUNK]
            chunk_size = chunk.size
            sources = encoded.social_src[chunk]
            targets = encoded.social_dst[chunk]
            moments = encoded.social_pos[chunk]

            # Attributes held by each source at its link's moment.
            attr_take, attr_counts = _row_positions(encoded.node_attr_indptr, sources)
            attr_seg = np.repeat(np.arange(chunk_size, dtype=np.int64), attr_counts)
            attr_live = encoded.node_attr_pos[attr_take] <= moments[attr_seg]
            attr_seg = attr_seg[attr_live]
            attributes = encoded.node_attr_ids[attr_take[attr_live]]

            # Members of those attributes at the same moment (minus the source).
            member_take, member_counts = _row_positions(
                encoded.attr_member_indptr, attributes
            )
            member_seg = np.repeat(attr_seg, member_counts)
            members = encoded.attr_member_ids[member_take]
            member_live = (encoded.attr_member_pos[member_take] <= moments[member_seg]) & (
                members != sources[member_seg]
            )
            member_seg = member_seg[member_live]
            members = members[member_live]

            # Shared-attribute counts: multiplicity of each (link, member) pair.
            pair_keys, shared = np.unique(member_seg * num_nodes + members, return_counts=True)
            if pair_keys.size:
                pair_seg = pair_keys // num_nodes
                pair_member = pair_keys % num_nodes
                queries = pair_member * stride + moments[pair_seg]
                member_degree = encoded.initial_in_degree[pair_member] + (
                    np.searchsorted(encoded.gain_comp, queries, side="right")
                    - encoded.gain_indptr[pair_member]
                )
                member_pow = (
                    member_degree.astype(np.float64)[:, None] + smoothing
                ) ** alpha_arr[None, :]
                for column in correction_columns:
                    spec = specs[column]
                    weights = _factor_minus_one(spec, shared) * member_pow[
                        :, alpha_of[spec.alpha]
                    ]
                    corrections[start : start + chunk_size, column] = np.bincount(
                        pair_seg, weights=weights, minlength=chunk_size
                    )
                target_keys = (
                    np.arange(chunk_size, dtype=np.int64) * num_nodes + targets
                )
                lookup = np.searchsorted(pair_keys, target_keys)
                lookup = np.minimum(lookup, pair_keys.size - 1)
                found = pair_keys[lookup] == target_keys
                shared_with_target[start : start + chunk_size] = np.where(
                    found, shared[lookup], 0
                )

    log_likelihoods: Dict[str, float] = {}
    for column, spec in enumerate(specs):
        alpha_column = alpha_of[spec.alpha]
        base_column = base[:, alpha_column]
        if spec.kind in ("lapa", "papa") and spec.beta > 0:
            denominator = base_column + corrections[:, column]
        elif spec.kind == "papa" and spec.beta == 0:
            denominator = 2.0 * base_column
        else:
            denominator = base_column
        numerator = target_pow[:, alpha_column] * _attribute_factors(
            spec, shared_with_target
        )
        valid = (numerator > 0) & (denominator > 0)
        contribution = float(np.log(numerator[valid] / denominator[valid]).sum())
        # Accumulate (not assign): the loop backend adds into spec.name, so
        # duplicate labels must merge identically here.
        log_likelihoods[spec.name] = log_likelihoods.get(spec.name, 0.0) + contribution

    return LikelihoodResult(log_likelihoods=log_likelihoods, num_links_scored=num_scored)


engine_registry.register(
    ATTACHMENT_LIKELIHOOD_OP,
    evaluate_attachment_models_fast,
    backend=VECTORIZED_ENGINE,
    priority=10,
)

__all__ = [
    "EncodedHistory",
    "LOOP_ENGINE",
    "SCORE_CHUNK",
    "VECTORIZED_ENGINE",
    "encode_history",
    "evaluate_attachment_models_fast",
]
