"""Directed extension of the Zheleva et al. co-evolution baseline ("Zhel").

Zheleva, Sharara and Getoor (KDD 2009) model the co-evolution of a social
network and affiliation groups: the *social structure drives group
membership* (a node joins groups its friends belong to), while links form by
preferential attachment and triangle closing with no attribute influence.
That is exactly the converse of the paper's model, which is why it serves as
the comparison baseline in Section 6.

The original model is undirected; following the paper's footnote 5 we extend
it to a directed setting by emitting each created link as a directed outgoing
link (with an optional reciprocation probability so its reciprocity is in the
same range as the reference network).

Key properties (which the evaluation relies on):

* social in/out-degree come out power-law-like (pure preferential attachment),
  not lognormal;
* attribute (group) degrees of social nodes are geometric-like rather than
  lognormal;
* the attribute structure has no influence on the social structure, so the
  attribute clustering coefficient and the application benchmarks deviate from
  the reference SAN.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Optional, Tuple

from ..graph.builders import complete_seed_san
from ..graph.san import SAN
from ..utils.rng import RngLike, ensure_rng
from .history import ArrivalHistory
from .lifetime import sample_sleep_time
from .parameters import ZhelModelParameters
from .san_model import SANModelRun

Node = Hashable


class ZhelGenerativeModel:
    """Directed Zheleva-style co-evolution model."""

    def __init__(self, params: Optional[ZhelModelParameters] = None, rng: RngLike = None) -> None:
        self.params = params if params is not None else ZhelModelParameters()
        self._rng = ensure_rng(rng)

    def generate(
        self, snapshot_every: Optional[int] = None, record_history: bool = True
    ) -> SANModelRun:
        """Run the Zhel process for ``params.steps`` steps."""
        params = self.params
        rng = self._rng

        san = complete_seed_san(params.seed_social_nodes, params.seed_attribute_nodes)
        history = ArrivalHistory(initial=san.copy()) if record_history else ArrivalHistory()

        node_pool: List[Node] = list(san.social_nodes())
        in_degree_pool: List[Node] = [target for _, target in san.social_edges()]
        group_pool: List[Node] = [attr for _, attr in san.attribute_edges()]
        next_social_id = max(int(node) for node in node_pool) + 1

        death_time: Dict[Node, float] = {node: float("inf") for node in node_pool}
        wake_heap: List[Tuple[float, int, Node]] = []
        heap_counter = 0
        snapshots: List[Tuple[int, SAN]] = []

        def add_social_edge(source: Node, target: Node) -> bool:
            if source == target or san.has_social_edge(source, target):
                return False
            san.add_social_edge(source, target)
            in_degree_pool.append(target)
            if record_history:
                history.record_social_link(source, target)
            return True

        def preferential_target(source: Node) -> Optional[Node]:
            """Pure PA on in-degree with +1 smoothing (no attribute term)."""
            for _ in range(20):
                if rng.random() * (len(in_degree_pool) + len(node_pool)) < len(in_degree_pool) and in_degree_pool:
                    candidate = in_degree_pool[rng.randrange(len(in_degree_pool))]
                else:
                    candidate = node_pool[rng.randrange(len(node_pool))]
                if candidate != source:
                    return candidate
            return None

        def triangle_target(source: Node) -> Optional[Node]:
            """Random-Random closure on the social layer only."""
            neighbors = list(san.social_neighbors(source))
            if not neighbors:
                return None
            for _ in range(10):
                intermediate = neighbors[rng.randrange(len(neighbors))]
                second = [n for n in san.social_neighbors(intermediate) if n != source]
                if second:
                    return second[rng.randrange(len(second))]
            return None

        def link_from(source: Node) -> None:
            if rng.random() < params.triangle_probability:
                target = triangle_target(source)
                if target is None:
                    target = preferential_target(source)
            else:
                target = preferential_target(source)
            if target is not None and add_social_edge(source, target):
                if rng.random() < params.reciprocation_probability:
                    add_social_edge(target, source)

        next_group = 0

        def join_groups(node: Node) -> None:
            """Group membership driven by the social structure (friends' groups)."""
            nonlocal next_group
            num_groups = max(0, int(round(rng.expovariate(1.0 / params.mean_groups_per_node))))
            for _ in range(num_groups):
                group: Optional[Node] = None
                friends = list(san.social_neighbors(node))
                if friends and rng.random() < params.copy_friend_group_probability:
                    friend = friends[rng.randrange(len(friends))]
                    friend_groups = list(san.attribute_neighbors(friend))
                    if friend_groups:
                        group = friend_groups[rng.randrange(len(friend_groups))]
                if group is None:
                    if rng.random() < params.new_group_probability or not group_pool:
                        group = f"group:{next_group}"
                        next_group += 1
                    else:
                        group = group_pool[rng.randrange(len(group_pool))]
                if san.has_attribute_edge(node, group):
                    continue
                san.add_attribute_edge(node, group, attr_type="group")
                group_pool.append(group)
                if record_history:
                    history.record_attribute_link(node, group, attr_type="group")

        for step in range(1, params.steps + 1):
            for _ in range(params.arrivals_per_step):
                new_node = next_social_id
                next_social_id += 1
                san.add_social_node(new_node)
                node_pool.append(new_node)
                if record_history:
                    history.record_node(new_node)

                # First link(s) by preferential attachment, then groups copied
                # from friends — the social structure drives the attributes.
                link_from(new_node)
                join_groups(new_node)

                # Prior models (Leskovec et al., Zheleva et al.) use an
                # exponentially distributed lifetime; combined with the
                # degree-proportional wake rate this yields a power-law
                # out-degree with tail exponent 1 + mean_sleep / mean_lifetime
                # instead of our model's lognormal (Figure 16e-f).
                mean_lifetime = params.lifetime.mean_sleep / (
                    params.lifetime_tail_exponent - 1.0
                )
                lifetime = rng.expovariate(1.0 / max(mean_lifetime, 1e-6))
                death_time[new_node] = step + lifetime
                sleep = sample_sleep_time(
                    params.lifetime, san.social_out_degree(new_node), rng=rng
                )
                heap_counter += 1
                heapq.heappush(wake_heap, (step + sleep, heap_counter, new_node))

            while wake_heap and wake_heap[0][0] <= step:
                wake_time, _, node = heapq.heappop(wake_heap)
                if wake_time > death_time.get(node, 0.0):
                    continue
                for _ in range(params.links_per_wakeup):
                    link_from(node)
                sleep = sample_sleep_time(
                    params.lifetime, san.social_out_degree(node), rng=rng
                )
                heap_counter += 1
                heapq.heappush(wake_heap, (wake_time + sleep, heap_counter, node))

            if snapshot_every is not None and step % snapshot_every == 0:
                snapshots.append((step, san.copy()))

        if snapshot_every is not None and (not snapshots or snapshots[-1][0] != params.steps):
            snapshots.append((params.steps, san.copy()))

        return SANModelRun(san=san, history=history, snapshots=snapshots, parameters=None)


def generate_zhel_san(
    params: Optional[ZhelModelParameters] = None,
    rng: RngLike = None,
    snapshot_every: Optional[int] = None,
    record_history: bool = True,
) -> SANModelRun:
    """Convenience wrapper: build the Zhel baseline model and run it once."""
    return ZhelGenerativeModel(params=params, rng=rng).generate(
        snapshot_every=snapshot_every, record_history=record_history
    )
