"""Vectorized simulation engine for Algorithm 1 (the ``"vectorized"`` backend).

The loop engine in :mod:`repro.models.san_model` mutates a dict-of-sets SAN
one edge at a time and pays an O(V + E) ``san.copy()`` per snapshot; its LAPA
sampler additionally scans every member of the source's attribute communities
per draw.  This module reimplements the same stochastic process on flat
array-backed state so a 50k+-step run is dominated by O(1) bookkeeping:

* **Array pools** — the in-degree preferential-attachment pool *is* the
  append-only edge-target array (one entry per incoming link), and the
  attribute PA pool is the attribute-link target array, both stored in
  :class:`GrowableIntArray` buffers with amortized-doubling growth.
* **Batched draws** — lognormal attribute degrees, truncated-normal lifetimes
  and exponential sleep times are drawn in numpy blocks
  (:class:`_BlockSampler`) and consumed as scalars, instead of one
  transcendental call per event.
* **O(1) LAPA sampling** — the exact ``alpha = 1`` decomposition
  ``f(u, v) = (d_i(v) + s) + beta * a(u, v) * (d_i(v) + s)`` is sampled by
  component: the degree part from the edge-target pool, the attribute part by
  first picking one of ``u``'s attributes proportional to its maintained mass
  ``w_A * (S_A + s |A|)`` (``S_A`` = total member in-degree, tracked
  incrementally) and then a member proportional to ``d_i(v) + s`` from
  per-attribute pools — never scanning a community.
* **Bucketed wake queue** — wake events live in per-step buckets (the integer
  ceiling of the continuous wake time) and are processed in batches, with
  intra-step re-wakes looping until the step drains, exactly like the loop
  engine's heap condition ``wake_time <= step``.
* **Delta snapshots** — ``snapshot_every`` records only
  :class:`SnapshotMark` watermarks (node/edge counts) over the append-only
  arrays; :meth:`FastSANModelRun.frozen_at` materializes a
  :class:`~repro.graph.frozen.FrozenSAN` from array *prefixes* on demand, so
  a 100k-step run with 20 snapshots costs one generation pass, not 20 deep
  copies.

Both engines are registered with the dispatch engine under the
``"san_generate"`` operation (backends ``"loop"`` and ``"vectorized"``);
:func:`san_generate` is the public entry point that routes between them.  The
engines do not share a random stream — equality is distributional, enforced
by the KS parity gate in ``tests/test_models_fast_sim.py``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..engine import registry as engine_registry
from ..graph.bipartite import AttributeInfo
from ..graph.builders import complete_seed_san
from ..graph.frozen import FrozenSAN
from ..graph.san import SAN
from ..utils.rng import RngLike, ensure_rng
from .attachment import LAPA_MAX_RETRIES
from .history import ArrivalEvent, ArrivalHistory
from .lifetime import truncated_normal_block
from .parameters import SANModelParameters
from .san_model import ATTRIBUTE_LINK_RETRIES, SANGenerativeModel, SANModelRun
from .triangle_closing import CLOSURE_SAMPLE_TRIES

#: Operation name under which both generative engines are registered.
SAN_GENERATE_OP = "san_generate"
#: Backend names of the two engines.
LOOP_ENGINE = "loop"
VECTORIZED_ENGINE = "vectorized"

#: Event-log kind codes (compact tuples, decoded on ``history()`` access).
_EVENT_NODE = 0
_EVENT_ATTRIBUTE = 1
_EVENT_SOCIAL = 2
_EVENT_ATTRIBUTE_REMOVE = 3


class GrowableIntArray:
    """An int64 numpy buffer with amortized-doubling append/extend.

    The live prefix (``view()``) is always contiguous, which is what lets the
    pools double as uniform-sampling targets and the snapshot materializer
    slice edge prefixes without copying per snapshot.
    """

    __slots__ = ("data", "size")

    def __init__(self, capacity: int = 1024) -> None:
        self.data = np.empty(max(capacity, 16), dtype=np.int64)
        self.size = 0

    def append(self, value: int) -> None:
        data = self.data
        size = self.size
        if size == data.shape[0]:
            data = self._grow(size + 1)
        data[size] = value
        self.size = size + 1

    def _grow(self, needed: int) -> np.ndarray:
        capacity = self.data.shape[0]
        while capacity < needed:
            capacity *= 2
        fresh = np.empty(capacity, dtype=np.int64)
        fresh[: self.size] = self.data[: self.size]
        self.data = fresh
        return fresh

    def view(self) -> np.ndarray:
        """The live prefix (a view into the growth buffer — copy to keep)."""
        return self.data[: self.size]

    def __len__(self) -> int:
        return self.size


class _BlockSampler:
    """Batched numpy draws consumed as Python scalars.

    Each distribution keeps a pre-generated block (converted with
    ``tolist()`` so the hot loop pops native floats, not numpy scalars) that
    is refilled with one vectorized call when exhausted.  Lifetimes use
    :func:`~repro.models.lifetime.truncated_normal_block`, so the rejection
    step is vectorized too.
    """

    __slots__ = ("_generator", "_block", "_lognormal", "_exponential", "_lifetime", "_params")

    def __init__(self, generator: np.random.Generator, params: SANModelParameters, block: int = 4096) -> None:
        self._generator = generator
        self._block = block
        self._params = params
        self._lognormal: List[float] = []
        self._exponential: List[float] = []
        self._lifetime: List[float] = []

    def attribute_degree(self) -> int:
        """One rounded lognormal attribute-degree draw."""
        stack = self._lognormal
        if not stack:
            params = self._params
            draws = self._generator.lognormal(
                params.attribute_mu, params.attribute_sigma, self._block
            )
            # np.rint matches the loop engine's round-half-to-even int(round()).
            stack.extend(np.rint(draws).astype(np.int64).tolist())
        return stack.pop()

    def standard_exponential(self) -> float:
        """One Exp(1) draw; callers scale by the sleep mean."""
        stack = self._exponential
        if not stack:
            stack.extend(self._generator.standard_exponential(self._block).tolist())
        return stack.pop()

    def lifetime(self) -> float:
        """One truncated-normal lifetime draw."""
        stack = self._lifetime
        if not stack:
            stack.extend(
                truncated_normal_block(
                    self._params.lifetime, self._generator, self._block
                ).tolist()
            )
        return stack.pop()


@dataclass(frozen=True)
class SnapshotMark:
    """Watermark over the append-only arrays: the network as of ``step``.

    Materializing the snapshot only needs the prefix lengths — the arrays
    themselves are shared with the final state, which is what makes a
    snapshot O(0) to *record* and one vectorized pass to *materialize*.

    ``num_attribute_edges`` counts *alive* links; under attribute churn the
    attribute-link arrays stay append-only and removals are tombstones, so the
    array watermark is ``num_attribute_edges + num_removed_links`` (every
    appended link is either alive or in the removal log).
    """

    step: int
    num_social_nodes: int
    num_social_edges: int
    num_attribute_nodes: int
    num_attribute_edges: int
    num_removed_links: int = 0


@dataclass
class FastSANModelRun:
    """Output of one vectorized-engine run.

    The network lives in compact edge arrays (social node ``i`` is the label
    ``i``; attribute ids index ``attribute_labels``).  ``san`` materializes
    the final :class:`~repro.graph.frozen.FrozenSAN` on first access;
    ``snapshots`` materializes one frozen view per recorded
    :class:`SnapshotMark`.  Both are cached — repeated access is free.
    """

    parameters: SANModelParameters
    num_social_nodes: int
    social_src: np.ndarray
    social_dst: np.ndarray
    link_social: np.ndarray
    link_attr: np.ndarray
    attribute_labels: List[str]
    attribute_info: List[AttributeInfo]
    marks: List[SnapshotMark] = field(default_factory=list)
    #: Attribute-link array positions tombstoned by churn, in removal order.
    link_removed_positions: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    #: Node ids injected by Sybil waves (empty without the regime).
    sybil_nodes: List[int] = field(default_factory=list)
    _event_log: Optional[List[Tuple[int, int, int]]] = None
    _final: Optional[FrozenSAN] = None
    _snapshots: Optional[List[Tuple[int, FrozenSAN]]] = None
    _orders: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = None

    @property
    def san(self) -> FrozenSAN:
        """The final network as a read-only CSR-backed FrozenSAN."""
        if self._final is None:
            self._final = self.frozen_at(None)
        return self._final

    @property
    def snapshots(self) -> List[Tuple[int, FrozenSAN]]:
        """``(step, FrozenSAN)`` pairs for every recorded watermark."""
        if self._snapshots is None:
            self._snapshots = [(mark.step, self.frozen_at(mark)) for mark in self.marks]
        return self._snapshots

    def frozen_at(
        self, mark: Optional[SnapshotMark], *, spill: Optional[object] = None
    ) -> FrozenSAN:
        """Materialize the network at ``mark`` (``None`` = final state).

        The append-only edge log is sorted once (four lexsorts, cached); any
        watermark's CSR arrays then follow from a stable position filter —
        the sorted order of an edge-log *prefix* is the sorted full order
        restricted to positions below the watermark.  Materializing ``k``
        snapshots therefore costs one sort plus ``k`` linear passes, not
        ``k`` sorts.

        ``spill`` names a columnar file path: the snapshot is written there
        and re-opened mmap-backed so its CSR arrays live on disk, which keeps
        materializing many watermarks of a ``huge``-scale run within a fixed
        RAM budget.  (``REPRO_MMAP=1`` forces the same round trip through a
        self-deleting temp file for every snapshot.)
        """
        if mark is None:
            n = self.num_social_nodes
            m = int(self.social_src.size)
            na = len(self.attribute_labels)
            ma = int(self.link_social.size)
            removed = int(self.link_removed_positions.size)
        else:
            n = mark.num_social_nodes
            m = mark.num_social_edges
            na = mark.num_attribute_nodes
            removed = mark.num_removed_links
            # Array watermark = alive links + tombstoned links at the mark.
            ma = mark.num_attribute_edges + removed
        alive: Optional[np.ndarray] = None
        if removed:
            alive = np.ones(self.link_attr.size, dtype=bool)
            alive[self.link_removed_positions[:removed]] = False
        if self._orders is None:
            self._orders = (
                np.lexsort((self.social_dst, self.social_src)),
                np.lexsort((self.social_src, self.social_dst)),
                np.lexsort((self.link_attr, self.link_social)),
                np.lexsort((self.link_social, self.link_attr)),
            )
        out_order, in_order, sa_order, as_order = self._orders

        def prefix_csr(order, row_full, col_full, count, num_rows, live=None):
            keep = order if count == order.size else order[order < count]
            if live is not None:
                keep = keep[live[keep]]
                counts = np.bincount(row_full[keep], minlength=num_rows).astype(np.int64)
            else:
                counts = np.bincount(row_full[:count], minlength=num_rows).astype(np.int64)
            indptr = np.zeros(num_rows + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            return indptr, col_full[keep]

        from ..graph.frozen import FrozenBipartiteAttributeGraph, FrozenDiGraph

        out_indptr, out_indices = prefix_csr(
            out_order, self.social_src, self.social_dst, m, n
        )
        in_indptr, in_indices = prefix_csr(
            in_order, self.social_dst, self.social_src, m, n
        )
        social = FrozenDiGraph(
            list(range(n)), out_indptr, out_indices, in_indptr, in_indices
        )
        sa_indptr, sa_indices = prefix_csr(
            sa_order, self.link_social, self.link_attr, ma, n, live=alive
        )
        as_indptr, as_indices = prefix_csr(
            as_order, self.link_attr, self.link_social, ma, na, live=alive
        )
        attributes = FrozenBipartiteAttributeGraph(
            social.labels(),
            social._index,
            list(self.attribute_labels[:na]),
            list(self.attribute_info[:na]),
            sa_indptr,
            sa_indices,
            as_indptr,
            as_indices,
        )
        san = FrozenSAN(social, attributes)
        if spill is not None:
            from ..graph.columnar import open_columnar, save_columnar

            save_columnar(san, spill)
            return open_columnar(spill, mmap_mode="r")
        from ..graph.columnar import maybe_spill

        return maybe_spill(san)

    def to_san(self) -> SAN:
        """Rebuild a mutable :class:`~repro.graph.san.SAN` (thaw-equivalent)."""
        san = SAN()
        for node in range(self.num_social_nodes):
            san.add_social_node(node)
        for source, target in zip(self.social_src.tolist(), self.social_dst.tolist()):
            san.add_social_edge(source, target)
        labels = self.attribute_labels
        infos = self.attribute_info
        # Attribute nodes are added explicitly so one fully churned out of its
        # last member still exists (matching the frozen views' node pools).
        for label, info in zip(labels, infos):
            san.add_attribute_node(label, attr_type=info.attr_type, value=info.value)
        dead = set(self.link_removed_positions.tolist())
        for position, (social, attr) in enumerate(
            zip(self.link_social.tolist(), self.link_attr.tolist())
        ):
            if position in dead:
                continue
            info = infos[attr]
            san.add_attribute_edge(
                social, labels[attr], attr_type=info.attr_type, value=info.value
            )
        return san

    def history(self) -> ArrivalHistory:
        """Arrival history of the run (empty unless ``record_history`` was set).

        The initial SAN is the complete seed network; events decode the
        compact log into :class:`~repro.models.history.ArrivalEvent` objects
        in arrival order, so the likelihood analyses accept either engine's
        output interchangeably.
        """
        if self._event_log is None:
            return ArrivalHistory()
        params = self.parameters
        history = ArrivalHistory(
            initial=complete_seed_san(
                params.seed_social_nodes, params.seed_attribute_nodes
            )
        )
        labels = self.attribute_labels
        events = history.events
        for kind, first, second in self._event_log:
            if kind == _EVENT_NODE:
                events.append(ArrivalEvent("node", first))
            elif kind == _EVENT_ATTRIBUTE:
                events.append(
                    ArrivalEvent("attribute", first, labels[second], attr_type="model")
                )
            elif kind == _EVENT_ATTRIBUTE_REMOVE:
                events.append(ArrivalEvent("attribute_remove", first, labels[second]))
            else:
                events.append(ArrivalEvent("social", first, second))
        return history

    def summary(self) -> Dict[str, float]:
        """Size summary matching ``SAN.summary()`` without materializing."""
        n = self.num_social_nodes
        na = len(self.attribute_labels)
        m = int(self.social_src.size)
        ma = int(self.link_social.size) - int(self.link_removed_positions.size)
        return {
            "social_nodes": n,
            "attribute_nodes": na,
            "social_edges": m,
            "attribute_edges": ma,
            "social_density": m / n if n else 0.0,
            "attribute_density": ma / na if na else 0.0,
        }


def _derive_generators(rng: RngLike) -> Tuple[np.random.Generator, random.Random]:
    """One numpy generator (block draws) + one MT generator (scalar uniforms).

    An integer seed maps deterministically to both streams; a
    ``random.Random`` or ``None`` input is reduced to a 64-bit seed first.
    """
    if isinstance(rng, int):
        seed = rng
    else:
        seed = ensure_rng(rng).getrandbits(64)
    # repro: lint-ignore[R009] -- fixed golden-ratio XOR decorrelating the
    # MT stream from the numpy stream derived off one seed; there is no
    # chunk index here, so the arithmetic cannot collide across streams
    return np.random.default_rng(seed), random.Random(seed ^ 0x9E3779B97F4A7C15)


def generate_san_fast(
    params: Optional[SANModelParameters] = None,
    rng: RngLike = None,
    snapshot_every: Optional[int] = None,
    record_history: bool = False,
) -> FastSANModelRun:
    """Run Algorithm 1 on the vectorized engine.

    Implements the same stochastic process as
    :class:`~repro.models.san_model.SANGenerativeModel` (including the
    bounded attribute-link retries and step-0 seed scheduling) on array
    state; see the module docstring for the data-structure inventory.
    Requires ``params.attachment.alpha == 1`` — the O(1) LAPA sampler relies
    on the linear-degree decomposition (use the loop engine, or
    :func:`san_generate` with ``engine="auto"``, for other exponents).
    """
    params = params if params is not None else SANModelParameters()
    if params.attachment.alpha != 1.0:
        raise ValueError(
            "the vectorized engine requires attachment.alpha == 1 "
            "(the loop engine handles other exponents)"
        )
    np_gen, uni_rng = _derive_generators(rng)
    blocks = _BlockSampler(np_gen, params)
    uniform = uni_rng.random

    steps = params.steps
    arrivals_per_step = params.arrivals_per_step
    num_seed = params.seed_social_nodes
    num_seed_attrs = params.seed_attribute_nodes
    n_total = num_seed + params.total_arrivals()  # includes flash/Sybil extras
    stride = n_total  # node-pair key stride for the edge-dedup set
    flash_by_step: Dict[int, int] = {}
    for crowd in params.flash_crowds:
        flash_by_step[crowd.step] = flash_by_step.get(crowd.step, 0) + crowd.arrivals
    waves_by_step: Dict[int, list] = {}
    for wave in params.sybil_waves:
        waves_by_step.setdefault(wave.step, []).append(wave)
    churn_rate = params.attribute_churn_rate
    churn_enabled = churn_rate > 0.0

    attachment = params.attachment
    beta = attachment.beta if params.use_lapa else 0.0
    smoothing = attachment.smoothing
    type_weights = attachment.type_weights or {}
    focal_weight = params.focal_weight if params.use_focal_closure else 0.0
    reciprocation = params.reciprocation_probability
    p_new_attribute = params.new_attribute_probability
    mean_sleep = params.lifetime.mean_sleep
    track_attr_mass = beta > 0.0

    # ------------------------------------------------------------------
    # Array state
    # ------------------------------------------------------------------
    esrc = GrowableIntArray(4 * n_total)
    edst = GrowableIntArray(4 * n_total)  # doubles as the in-degree PA pool
    link_social = GrowableIntArray(4 * n_total)
    link_attr = GrowableIntArray(4 * n_total)  # doubles as the attribute PA pool
    out_degree = [0] * n_total
    in_degree = [0] * n_total
    death_time = [0.0] * n_total
    adjacency: List[List[int]] = [[] for _ in range(n_total)]  # distinct-neighbor lists
    node_attrs: List[List[int]] = [[] for _ in range(n_total)]
    # Churn tombstones: the link arrays stay append-only; removals flip a
    # per-position alive flag and log the position (the snapshot watermark).
    # ``node_attr_pos`` mirrors ``node_attrs`` with each link's array position.
    link_alive: List[bool] = []
    removed_log: List[int] = []
    node_attr_pos: List[List[int]] = [[] for _ in range(n_total)] if churn_enabled else []
    # Honest-node pool for uniform draws (Sybils are excluded from LAPA's
    # smoothing mass and uniform fallback, mirroring the loop engine's
    # node_pool bookkeeping).
    honest: List[int] = []
    sybil_nodes: List[int] = []
    attr_labels: List[str] = []
    attr_info: List[AttributeInfo] = []
    attr_weight: List[float] = []  # interned type weight per attribute
    members: List[List[int]] = []  # distinct members per attribute
    degree_pool: List[List[int]] = []  # member per in-link gained while a member
    edge_keys = set()
    buckets: List[List[Tuple[float, int]]] = [[] for _ in range(steps + 2)]
    event_log: Optional[List[Tuple[int, int, int]]] = [] if record_history else None

    # ------------------------------------------------------------------
    # Seed: the complete SAN of Section 5.3's initialization
    # ------------------------------------------------------------------
    for source in range(num_seed):
        adjacency[source] = [node for node in range(num_seed) if node != source]
        for target in range(num_seed):
            if source != target:
                esrc.append(source)
                edst.append(target)
                edge_keys.add(source * stride + target)
        out_degree[source] = num_seed - 1
        in_degree[source] = num_seed - 1
        honest.append(source)
    for attr_id in range(num_seed_attrs):
        attr_labels.append(f"seed:{attr_id}")
        attr_info.append(AttributeInfo(attr_type="seed", value=str(attr_id)))
        attr_weight.append(type_weights.get("seed", 1.0))
        members.append(list(range(num_seed)))
        # Every seed member already holds num_seed - 1 incoming links.
        degree_pool.append(
            [node for node in range(num_seed) for _ in range(num_seed - 1)]
        )
    for source in range(num_seed):
        node_attrs[source] = list(range(num_seed_attrs))
        for attr_id in range(num_seed_attrs):
            if churn_enabled:
                node_attr_pos[source].append(link_social.size)
                link_alive.append(True)
            link_social.append(source)
            link_attr.append(attr_id)
    num_nodes = num_seed
    num_attrs = num_seed_attrs
    num_alive_links = link_social.size

    # Seed social nodes are scheduled at step 0 like every later arrival.
    for node in range(num_seed):
        death_time[node] = blocks.lifetime()
        wake = blocks.standard_exponential() * (mean_sleep / max(out_degree[node], 1))
        bucket = max(1, math.ceil(wake))
        if bucket <= steps:
            buckets[bucket].append((wake, node))

    # ------------------------------------------------------------------
    # Samplers (closures over the hot state)
    # ------------------------------------------------------------------
    def add_edge(source: int, target: int) -> bool:
        if source == target:
            return False
        key = source * stride + target
        if key in edge_keys:
            return False
        edge_keys.add(key)
        esrc.append(source)
        edst.append(target)
        out_degree[source] += 1
        in_degree[target] += 1
        if target * stride + source not in edge_keys:
            adjacency[source].append(target)
            adjacency[target].append(source)
        if track_attr_mass:
            for attr_id in node_attrs[target]:
                degree_pool[attr_id].append(target)
        if event_log is not None:
            event_log.append((_EVENT_SOCIAL, source, target))
        return True

    def sample_lapa(source: int) -> Optional[int]:
        # Exact alpha = 1 LAPA decomposition; mirrors sample_lapa_target_fast
        # but with O(|Gamma_a(source)|) mass lookups instead of community scans.
        edge_count = esrc.size
        num_honest = len(honest)
        degree_mass = edge_count + smoothing * num_honest
        attribute_mass = 0.0
        masses: List[float] = []
        source_attrs = node_attrs[source]
        if beta > 0.0 and source_attrs:
            for attr_id in source_attrs:
                mass = attr_weight[attr_id] * (
                    len(degree_pool[attr_id]) + smoothing * len(members[attr_id])
                )
                masses.append(mass)
                attribute_mass += mass
            attribute_mass *= beta
        total_mass = degree_mass + attribute_mass
        if total_mass <= 0.0:
            return None
        for _ in range(LAPA_MAX_RETRIES):
            if attribute_mass > 0.0 and uniform() * total_mass < attribute_mass:
                threshold = uniform() * (attribute_mass / beta)
                cumulative = 0.0
                chosen = source_attrs[-1]
                for attr_id, mass in zip(source_attrs, masses):
                    cumulative += mass
                    if cumulative >= threshold:
                        chosen = attr_id
                        break
                pool = degree_pool[chosen]
                community = members[chosen]
                inner_mass = len(pool) + smoothing * len(community)
                if pool and uniform() * inner_mass < len(pool):
                    candidate = pool[int(uniform() * len(pool))]
                else:
                    candidate = community[int(uniform() * len(community))]
            elif edge_count and uniform() * degree_mass < edge_count:
                candidate = int(edst.data[int(uniform() * edge_count)])
            else:
                candidate = honest[int(uniform() * num_honest)]
            if candidate != source:
                return candidate
        # Retries exhausted (tiny graphs): any honest node but the source.
        if num_honest <= 1:
            return None
        while True:
            candidate = honest[int(uniform() * num_honest)]
            if candidate != source:
                return candidate

    def sample_closure(source: int) -> Optional[int]:
        # RR-SAN two-hop closure (RR when focal_weight is 0); mirrors
        # RandomRandomSANClosing.sample_target on the array state.
        social_hops = adjacency[source]
        num_social = len(social_hops)
        source_attrs = node_attrs[source] if focal_weight > 0.0 else ()
        num_attr = len(source_attrs)
        total = num_social + focal_weight * num_attr
        if total <= 0.0:
            return None
        for _ in range(CLOSURE_SAMPLE_TRIES):
            if uniform() * total < num_social:
                pool = adjacency[social_hops[int(uniform() * num_social)]]
            else:
                pool = members[source_attrs[int(uniform() * num_attr)]]
            pool_size = len(pool)
            if pool_size == 0 or (pool_size == 1 and pool[0] == source):
                continue
            # The source occurs at most once in a distinct-member pool, so
            # rejection converges immediately in expectation.
            for _attempt in range(32):
                candidate = pool[int(uniform() * pool_size)]
                if candidate != source:
                    return candidate
        return None

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    marks: List[SnapshotMark] = []
    for step in range(1, steps + 1):
        for _ in range(arrivals_per_step + flash_by_step.get(step, 0)):
            node = num_nodes
            num_nodes += 1
            honest.append(node)
            if event_log is not None:
                event_log.append((_EVENT_NODE, node, 0))

            # ---------------- attribute degree & linking ----------------
            my_attrs = node_attrs[node]
            for _draw in range(blocks.attribute_degree()):
                chosen_attr = -1
                for _attempt in range(ATTRIBUTE_LINK_RETRIES):
                    pool_size = link_attr.size
                    if uniform() < p_new_attribute or not num_alive_links:
                        chosen_attr = num_attrs
                        num_attrs += 1
                        label = f"attr:{chosen_attr - num_seed_attrs}"
                        attr_labels.append(label)
                        # Mirror the mutable backend's default of value =
                        # str(node id): a literal None would collapse every
                        # model attribute into one node on TSV round-trip.
                        attr_info.append(AttributeInfo(attr_type="model", value=label))
                        attr_weight.append(type_weights.get("model", 1.0))
                        members.append([])
                        degree_pool.append([])
                        break
                    position = int(uniform() * pool_size)
                    if churn_enabled:
                        # Tombstoned entries reject without consuming a retry,
                        # matching the loop engine's eagerly pruned pool.
                        while not link_alive[position]:
                            position = int(uniform() * pool_size)
                    candidate = int(link_attr.data[position])
                    if candidate not in my_attrs:
                        chosen_attr = candidate
                        break
                if chosen_attr < 0:
                    continue  # every retry collided with an existing link
                if churn_enabled:
                    node_attr_pos[node].append(link_social.size)
                    link_alive.append(True)
                link_social.append(node)
                link_attr.append(chosen_attr)
                num_alive_links += 1
                members[chosen_attr].append(node)
                my_attrs.append(chosen_attr)
                if event_log is not None:
                    event_log.append((_EVENT_ATTRIBUTE, node, chosen_attr))

            # ---------------- first outgoing link (LAPA) ----------------
            target = sample_lapa(node)
            if target is not None and add_edge(node, target):
                if uniform() < reciprocation:
                    add_edge(target, node)

            # ---------------- lifetime & first sleep ----------------
            death_time[node] = step + blocks.lifetime()
            wake = step + blocks.standard_exponential() * (
                mean_sleep / max(out_degree[node], 1)
            )
            bucket = math.ceil(wake)
            if bucket <= steps:
                buckets[bucket].append((wake, node))

        # -------------------- Sybil infiltration waves --------------------
        # Sybils stay out of ``honest`` (no LAPA smoothing mass, never
        # uniform targets), declare no attributes and never wake; only their
        # attack edges (and any intra-wave links) touch the arrays.
        for wave in waves_by_step.get(step, ()):
            wave_members: List[int] = []
            for _ in range(wave.num_sybils):
                sybil = num_nodes
                num_nodes += 1
                sybil_nodes.append(sybil)
                wave_members.append(sybil)
                if event_log is not None:
                    event_log.append((_EVENT_NODE, sybil, 0))
                for _ in range(wave.attack_edges_per_sybil):
                    victim = honest[int(uniform() * len(honest))]
                    add_edge(sybil, victim)
            if len(wave_members) >= 2:
                for _ in range(wave.intra_links):
                    first = wave_members[int(uniform() * len(wave_members))]
                    second = wave_members[int(uniform() * len(wave_members))]
                    if first == second:
                        continue
                    add_edge(first, second)
                    add_edge(second, first)

        # -------------------- woken nodes add links --------------------
        queue = buckets[step]
        while queue:
            requeue: List[Tuple[float, int]] = []
            for wake, node in queue:
                if wake > death_time[node]:
                    continue  # lifetime expired while sleeping
                target = sample_closure(node)
                if target is None:
                    target = sample_lapa(node)
                if target is not None and add_edge(node, target):
                    if uniform() < reciprocation:
                        add_edge(target, node)
                next_wake = wake + blocks.standard_exponential() * (
                    mean_sleep / max(out_degree[node], 1)
                )
                if next_wake > death_time[node]:
                    continue  # would be dropped at its next wake anyway
                if next_wake <= step:
                    requeue.append((next_wake, node))
                else:
                    bucket = math.ceil(next_wake)
                    if bucket <= steps:
                        buckets[bucket].append((next_wake, node))
            queue = requeue
        buckets[step] = []

        # -------------------- attribute churn --------------------
        # One churn event per step at most: a uniform honest node drops one
        # attribute link (tombstoned in the append-only arrays) and re-links
        # via the standard new-vs-existing bounded-retry rule.
        if churn_enabled and uniform() < churn_rate:
            churner = honest[int(uniform() * len(honest))]
            held = node_attrs[churner]
            if held:
                drop_index = int(uniform() * len(held))
                dropped = held[drop_index]
                drop_position = node_attr_pos[churner][drop_index]
                link_alive[drop_position] = False
                removed_log.append(drop_position)
                num_alive_links -= 1
                del held[drop_index]
                del node_attr_pos[churner][drop_index]
                members[dropped].remove(churner)
                if track_attr_mass:
                    degree_pool[dropped] = [
                        member for member in degree_pool[dropped] if member != churner
                    ]
                if event_log is not None:
                    event_log.append((_EVENT_ATTRIBUTE_REMOVE, churner, dropped))
                replacement = -1
                for _attempt in range(ATTRIBUTE_LINK_RETRIES):
                    pool_size = link_attr.size
                    if uniform() < p_new_attribute or not num_alive_links:
                        replacement = num_attrs
                        num_attrs += 1
                        label = f"attr:{replacement - num_seed_attrs}"
                        attr_labels.append(label)
                        attr_info.append(AttributeInfo(attr_type="model", value=label))
                        attr_weight.append(type_weights.get("model", 1.0))
                        members.append([])
                        degree_pool.append([])
                        break
                    position = int(uniform() * pool_size)
                    while not link_alive[position]:
                        position = int(uniform() * pool_size)
                    candidate = int(link_attr.data[position])
                    if candidate != dropped and candidate not in held:
                        replacement = candidate
                        break
                if replacement >= 0:
                    node_attr_pos[churner].append(link_social.size)
                    link_alive.append(True)
                    link_social.append(churner)
                    link_attr.append(replacement)
                    num_alive_links += 1
                    members[replacement].append(churner)
                    held.append(replacement)
                    if track_attr_mass and in_degree[churner]:
                        # Unlike arrivals (in-degree 0 at link time), a churner
                        # carries existing in-links into its new community.
                        degree_pool[replacement].extend(
                            [churner] * in_degree[churner]
                        )
                    if event_log is not None:
                        event_log.append((_EVENT_ATTRIBUTE, churner, replacement))

        if snapshot_every is not None and step % snapshot_every == 0:
            marks.append(
                SnapshotMark(
                    step,
                    num_nodes,
                    esrc.size,
                    num_attrs,
                    link_social.size - len(removed_log),
                    len(removed_log),
                )
            )

    if snapshot_every is not None and (not marks or marks[-1].step != steps):
        marks.append(
            SnapshotMark(
                steps,
                num_nodes,
                esrc.size,
                num_attrs,
                link_social.size - len(removed_log),
                len(removed_log),
            )
        )

    return FastSANModelRun(
        parameters=params,
        num_social_nodes=num_nodes,
        social_src=esrc.view().copy(),
        social_dst=edst.view().copy(),
        link_social=link_social.view().copy(),
        link_attr=link_attr.view().copy(),
        attribute_labels=attr_labels,
        attribute_info=attr_info,
        marks=marks,
        link_removed_positions=np.asarray(removed_log, dtype=np.int64),
        sybil_nodes=sybil_nodes,
        _event_log=event_log,
    )


# ----------------------------------------------------------------------
# Engine-registry routing
# ----------------------------------------------------------------------
def _loop_generate(
    params: SANModelParameters,
    rng: RngLike = None,
    snapshot_every: Optional[int] = None,
    record_history: bool = False,
) -> SANModelRun:
    """Portable fallback: the reference per-node loop implementation."""
    return SANGenerativeModel(params=params, rng=rng).generate(
        snapshot_every=snapshot_every, record_history=record_history
    )


engine_registry.register(SAN_GENERATE_OP, _loop_generate, backend=LOOP_ENGINE)
engine_registry.register(
    SAN_GENERATE_OP, generate_san_fast, backend=VECTORIZED_ENGINE, priority=10
)


def san_generate(
    params: Optional[SANModelParameters] = None,
    rng: RngLike = None,
    snapshot_every: Optional[int] = None,
    record_history: bool = False,
    engine: str = "auto",
) -> Union[SANModelRun, FastSANModelRun]:
    """Generate a SAN with Algorithm 1, routed through the engine registry.

    ``engine`` selects the backend registered under the ``"san_generate"``
    operation: ``"vectorized"`` (array engine, returns
    :class:`FastSANModelRun`), ``"loop"`` (reference implementation, returns
    :class:`~repro.models.san_model.SANModelRun`), or ``"auto"`` — the
    vectorized engine whenever its ``alpha = 1`` requirement holds, the loop
    engine otherwise.  Unlike :func:`~repro.models.san_model.generate_san`,
    ``record_history`` defaults to ``False`` (generation-scale runs rarely
    want the event log).
    """
    params = params if params is not None else SANModelParameters()
    if engine == "auto":
        engine = VECTORIZED_ENGINE if params.attachment.alpha == 1.0 else LOOP_ENGINE
    kernel = engine_registry.select(SAN_GENERATE_OP, engine)
    if kernel is None:
        known = sorted({entry.backend for entry in engine_registry.kernels_for(SAN_GENERATE_OP)})
        raise engine_registry.NoKernelError(
            f"unknown generation engine {engine!r}; registered engines: {known}"
        )
    return kernel.fn(
        params, rng=rng, snapshot_every=snapshot_every, record_history=record_history
    )
