"""Parameter containers for the SAN generative model and its baselines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..utils.validation import require_non_negative, require_positive, require_probability


@dataclass(frozen=True)
class FlashCrowd:
    """A burst of extra arrivals at one step, breaking the steady schedule.

    ``arrivals`` nodes join at ``step`` *on top of* the configured
    ``arrivals_per_step`` — the generative-model analogue of a public-launch
    surge (the Google+ Phase III jump).
    """

    step: int
    arrivals: int

    def __post_init__(self) -> None:
        require_positive(self.step, "step")
        require_positive(self.arrivals, "arrivals")


@dataclass(frozen=True)
class SybilWave:
    """A wave of Sybil identities injected at one step (Section 6.3 attack).

    Each of the ``num_sybils`` identities creates ``attack_edges_per_sybil``
    directed links to uniformly chosen honest nodes, and the wave wires
    ``intra_links`` mutual links among its own members.  Sybils declare no
    attributes and never enter the wake process — they exist to stress the
    attack-edge cut the SybilRank-style defense relies on.
    """

    step: int
    num_sybils: int
    attack_edges_per_sybil: int = 1
    intra_links: int = 0

    def __post_init__(self) -> None:
        require_positive(self.step, "step")
        require_positive(self.num_sybils, "num_sybils")
        require_non_negative(self.attack_edges_per_sybil, "attack_edges_per_sybil")
        require_non_negative(self.intra_links, "intra_links")


@dataclass
class AttachmentParameters:
    """Parameters of the attribute-augmented preferential attachment models.

    ``alpha`` is the exponent on the target's social in-degree, ``beta`` the
    attribute coefficient.  ``alpha = 1, beta = 0`` is classical preferential
    attachment; ``alpha = beta = 0`` is the uniform model.  ``smoothing`` is
    added to the in-degree before exponentiation so zero-in-degree nodes remain
    reachable (the paper's formulation leaves this implementation detail open;
    the same smoothing is applied to every model being compared, so relative
    improvements are unaffected).
    """

    alpha: float = 1.0
    beta: float = 0.0
    smoothing: float = 1.0
    type_weights: Optional[Dict[str, float]] = None

    def __post_init__(self) -> None:
        require_non_negative(self.alpha, "alpha")
        require_non_negative(self.beta, "beta")
        require_non_negative(self.smoothing, "smoothing")


@dataclass
class LifetimeParameters:
    """Truncated-normal lifetime and degree-dependent sleep-time parameters.

    A node's lifetime ``l`` is drawn from ``Normal(mu, sigma)`` truncated to
    ``l >= 0`` and counts simulated time steps during which the node may wake
    up and add links.  Sleep times are exponential with mean
    ``mean_sleep / out_degree`` (the model only depends on the mean, per the
    paper's Section 5.3).
    """

    mu: float = 3.0
    sigma: float = 2.5
    mean_sleep: float = 2.0

    def __post_init__(self) -> None:
        require_positive(self.sigma, "sigma")
        require_positive(self.mean_sleep, "mean_sleep")


@dataclass
class SANModelParameters:
    """Full parameter set of the Algorithm 1 generative model.

    Attributes
    ----------
    steps:
        Number of simulated time steps ``T``; with ``arrivals_per_step = 1``
        this equals the number of social nodes added.
    arrivals_per_step:
        The node arrival function ``N(t)``; constant by default as in the paper.
    attribute_mu, attribute_sigma:
        Lognormal parameters of the attribute degree of new social nodes.
    new_attribute_probability:
        Probability ``p`` that an attribute link goes to a brand-new attribute
        node instead of an existing one chosen preferentially by social degree.
    attachment:
        LAPA parameters for the first outgoing link of a new node.
    lifetime:
        Lifetime / sleep-time parameters controlling subsequent outgoing links.
    focal_weight:
        Weight ``fc`` of attribute neighbors relative to social neighbors in
        the RR-SAN triangle-closing step; ``0`` disables focal closure
        (reducing RR-SAN to RR).
    reciprocation_probability:
        Probability that the target of a new outgoing link immediately creates
        the reverse link; keeps the generated SAN's reciprocity in the range
        observed for Google+ without affecting the degree-distribution theory.
    seed_social_nodes, seed_attribute_nodes:
        Size of the complete seed SAN used for initialization.
    use_lapa:
        Ablation switch: ``False`` replaces LAPA with classical PA (Figure 18a).
    use_focal_closure:
        Ablation switch: ``False`` replaces RR-SAN with classical RR (Figure 18b).
    attribute_churn_rate:
        Per-step probability of one churn event: a uniformly chosen existing
        node drops one of its attribute links (a user changing employers) and
        immediately re-links via the standard new-vs-existing attribute rule.
        ``0`` (the default) reproduces the paper's append-only growth exactly.
    flash_crowds:
        Extra arrival bursts at fixed steps (see :class:`FlashCrowd`).
    sybil_waves:
        Sybil-identity injections at fixed steps (see :class:`SybilWave`).
    """

    steps: int = 2000
    arrivals_per_step: int = 1
    attribute_mu: float = 1.0
    attribute_sigma: float = 0.8
    new_attribute_probability: float = 0.25
    attachment: AttachmentParameters = field(
        default_factory=lambda: AttachmentParameters(alpha=1.0, beta=200.0)
    )
    lifetime: LifetimeParameters = field(default_factory=LifetimeParameters)
    focal_weight: float = 1.0
    reciprocation_probability: float = 0.4
    seed_social_nodes: int = 5
    seed_attribute_nodes: int = 5
    use_lapa: bool = True
    use_focal_closure: bool = True
    attribute_churn_rate: float = 0.0
    flash_crowds: Tuple[FlashCrowd, ...] = ()
    sybil_waves: Tuple[SybilWave, ...] = ()

    def __post_init__(self) -> None:
        require_positive(self.steps, "steps")
        require_positive(self.arrivals_per_step, "arrivals_per_step")
        require_positive(self.attribute_sigma, "attribute_sigma")
        require_probability(self.new_attribute_probability, "new_attribute_probability")
        require_non_negative(self.focal_weight, "focal_weight")
        require_probability(self.reciprocation_probability, "reciprocation_probability")
        require_positive(self.seed_social_nodes, "seed_social_nodes")
        require_positive(self.seed_attribute_nodes, "seed_attribute_nodes")
        require_probability(self.attribute_churn_rate, "attribute_churn_rate")
        self.flash_crowds = tuple(self.flash_crowds)
        self.sybil_waves = tuple(self.sybil_waves)

    def total_arrivals(self) -> int:
        """Total non-seed nodes the model will create, regimes included."""
        extra = sum(crowd.arrivals for crowd in self.flash_crowds)
        extra += sum(wave.num_sybils for wave in self.sybil_waves)
        return self.steps * self.arrivals_per_step + extra


@dataclass
class ZhelModelParameters:
    """Parameters of the directed extension of the Zheleva et al. baseline.

    The original model co-evolves an undirected social network and group
    affiliations where the *social structure drives group membership* (the
    converse of our model).  Links form via preferential attachment and
    triangle closing without any attribute influence.
    """

    steps: int = 2000
    arrivals_per_step: int = 1
    links_per_wakeup: int = 1
    triangle_probability: float = 0.5
    mean_groups_per_node: float = 2.0
    new_group_probability: float = 0.25
    copy_friend_group_probability: float = 0.5
    reciprocation_probability: float = 0.4
    lifetime: LifetimeParameters = field(default_factory=LifetimeParameters)
    #: Tail exponent of the power-law out-degree produced by the exponential
    #: lifetime + degree-proportional wake rate (prior models' setting); the
    #: exponential lifetime mean is derived from it as mean_sleep / (exp - 1).
    lifetime_tail_exponent: float = 2.5
    seed_social_nodes: int = 5
    seed_attribute_nodes: int = 5

    def __post_init__(self) -> None:
        require_positive(self.steps, "steps")
        require_positive(self.arrivals_per_step, "arrivals_per_step")
        require_probability(self.triangle_probability, "triangle_probability")
        require_positive(self.mean_groups_per_node, "mean_groups_per_node")
        require_probability(self.new_group_probability, "new_group_probability")
        require_probability(
            self.copy_friend_group_probability, "copy_friend_group_probability"
        )
        require_probability(self.reciprocation_probability, "reciprocation_probability")
        if self.lifetime_tail_exponent <= 1.0:
            raise ValueError("lifetime_tail_exponent must be > 1")


@dataclass
class MAGModelParameters:
    """Parameters of the Kim-Leskovec multiplicative attribute graph baseline.

    Every node draws ``num_attributes`` i.i.d. Bernoulli latent attributes; the
    probability of a directed link is the product over attributes of an
    affinity matrix entry selected by the endpoint attribute values.  Both the
    social degrees and attribute degrees it produces are binomial-like, which
    is the mismatch with real SANs the paper points out.
    """

    num_nodes: int = 2000
    num_attributes: int = 4
    attribute_probability: float = 0.5
    target_mean_degree: float = 10.0
    affinity: Dict[str, float] = field(
        default_factory=lambda: {"11": 0.9, "10": 0.3, "01": 0.3, "00": 0.1}
    )

    def __post_init__(self) -> None:
        require_positive(self.num_nodes, "num_nodes")
        require_positive(self.num_attributes, "num_attributes")
        require_probability(self.attribute_probability, "attribute_probability")
        require_positive(self.target_mean_degree, "target_mean_degree")
        for key in ("11", "10", "01", "00"):
            if key not in self.affinity:
                raise ValueError(f"affinity matrix is missing entry {key!r}")
            require_probability(self.affinity[key], f"affinity[{key}]")
