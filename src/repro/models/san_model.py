"""The paper's generative model for Social-Attribute Networks (Algorithm 1).

The stochastic process, per simulated time step ``t``:

1. **Social node arrival** — ``N(t)`` new social nodes join (``N(t) = 1`` by
   default, as in the paper).
2. For each new node:
   a. **Attribute degree sampling** — the number of attributes is drawn from a
      lognormal distribution.
   b. **Attribute linking** — each attribute link goes to a brand-new attribute
      node with probability ``p``, otherwise to an existing attribute node
      chosen with probability proportional to its social degree.
   c. **First outgoing link** — chosen with the LAPA model (attribute-augmented
      preferential attachment); the classical PA model when ``use_lapa`` is
      off (the Figure 18a ablation).
   d. **Lifetime sampling** — truncated normal.
   e. **Sleep time sampling** — exponential with mean ``m_s / out_degree``.
3. **Outgoing linking** — every node whose sleep expired this step (and whose
   lifetime has not) issues one outgoing link via the RR-SAN triangle-closing
   model (classical RR when ``use_focal_closure`` is off — Figure 18b), then
   sleeps again.

Incoming links arrive implicitly as other nodes' outgoing links; an optional
reciprocation probability creates immediate back-links so the generated SAN's
reciprocity matches the 0.38-0.46 range measured on Google+.

Initialization follows Section 5.3: the process starts from a small complete
SAN whose seed social nodes sample lifetimes and sleep times at step 0, so
they participate in outgoing linking exactly like later arrivals.  Attribute
links whose existing-attribute draw collides with an attribute the node
already holds are re-drawn (bounded by ``ATTRIBUTE_LINK_RETRIES``) so the
realized attribute degree tracks the sampled lognormal.

This module is the reference *loop* engine — the portable fallback
registered under the ``san_generate`` operation.  The array-backed
vectorized engine in :mod:`repro.models.fast_sim` implements the identical
process at scale; :func:`repro.models.fast_sim.san_generate` routes between
them.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from ..graph.builders import complete_seed_san
from ..graph.san import SAN
from ..utils.rng import RngLike, ensure_rng
from .attachment import sample_lapa_target_fast
from .history import ArrivalHistory
from .lifetime import sample_sleep_time, sample_truncated_normal_lifetime
from .parameters import AttachmentParameters, SANModelParameters
from .triangle_closing import RandomRandomClosing, RandomRandomSANClosing

Node = Hashable

#: Bounded retries for one attribute-link draw whose existing-attribute pick
#: collides with an attribute the node already holds.  Dropping the draw (the
#: pre-fix behaviour) silently biased realized attribute degree below the
#: sampled lognormal; re-drawing keeps the marginal new-vs-existing split
#: intact while preserving the sampled degree.  Shared with the vectorized
#: engine so both implement the same bounded-retry distribution.
ATTRIBUTE_LINK_RETRIES = 10


@dataclass
class SANModelRun:
    """Output of one generative-model run."""

    san: SAN
    history: ArrivalHistory
    snapshots: List[Tuple[int, SAN]] = field(default_factory=list)
    parameters: Optional[SANModelParameters] = None
    sybil_nodes: List[Node] = field(default_factory=list)


class SANGenerativeModel:
    """Generator implementing Algorithm 1 with the LAPA and RR-SAN building blocks."""

    def __init__(self, params: Optional[SANModelParameters] = None, rng: RngLike = None) -> None:
        self.params = params if params is not None else SANModelParameters()
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def generate(
        self, snapshot_every: Optional[int] = None, record_history: bool = True
    ) -> SANModelRun:
        """Run the stochastic process for ``params.steps`` time steps.

        ``snapshot_every`` stores a copy of the SAN every that-many steps
        (plus the final state), producing a snapshot sequence usable by the
        evolution metrics.  ``record_history`` controls whether an
        :class:`ArrivalHistory` (needed by the likelihood analyses) is kept.
        """
        params = self.params
        rng = self._rng

        san = complete_seed_san(params.seed_social_nodes, params.seed_attribute_nodes)
        history = ArrivalHistory(initial=san.copy()) if record_history else ArrivalHistory()

        # Incremental sampling pools.
        node_pool: List[Node] = list(san.social_nodes())
        in_degree_pool: List[Node] = [target for _, target in san.social_edges()]
        attribute_pool: List[Node] = [attr for _, attr in san.attribute_edges()]
        next_social_id = max(int(n) for n in node_pool) + 1
        next_attribute_id = 0

        death_time: Dict[Node, float] = {}
        wake_heap: List[Tuple[float, int, Node]] = []
        heap_counter = 0

        # Seed social nodes follow the same lifetime/sleep process as every
        # later arrival (Algorithm 1 draws them at step 0); without this they
        # would never wake and hence never issue outgoing links after seeding.
        for node in node_pool:
            lifetime = sample_truncated_normal_lifetime(params.lifetime, rng=rng)
            death_time[node] = lifetime
            sleep = sample_sleep_time(
                params.lifetime, san.social_out_degree(node), rng=rng
            )
            heap_counter += 1
            heapq.heappush(wake_heap, (sleep, heap_counter, node))

        closing_model = (
            RandomRandomSANClosing(attribute_weight=params.focal_weight)
            if params.use_focal_closure
            else RandomRandomClosing()
        )
        attachment_params = params.attachment if params.use_lapa else AttachmentParameters(
            alpha=params.attachment.alpha, beta=0.0, smoothing=params.attachment.smoothing
        )

        snapshots: List[Tuple[int, SAN]] = []
        sybil_nodes: List[Node] = []
        flash_by_step: Dict[int, int] = {}
        for crowd in params.flash_crowds:
            flash_by_step[crowd.step] = flash_by_step.get(crowd.step, 0) + crowd.arrivals
        waves_by_step: Dict[int, List] = {}
        for wave in params.sybil_waves:
            waves_by_step.setdefault(wave.step, []).append(wave)

        def add_social_edge(source: Node, target: Node) -> bool:
            """Insert a social edge, updating pools and the history."""
            if source == target or san.has_social_edge(source, target):
                return False
            san.add_social_edge(source, target)
            in_degree_pool.append(target)
            if record_history:
                history.record_social_link(source, target)
            return True

        for step in range(1, params.steps + 1):
            # -------------------- social node arrival --------------------
            arrivals = params.arrivals_per_step + flash_by_step.get(step, 0)
            for _ in range(arrivals):
                new_node = next_social_id
                next_social_id += 1
                san.add_social_node(new_node)
                node_pool.append(new_node)
                if record_history:
                    history.record_node(new_node)

                # ---------------- attribute degree & linking ----------------
                num_attributes = self._sample_attribute_degree(rng)
                for _ in range(num_attributes):
                    attribute = None
                    for _attempt in range(ATTRIBUTE_LINK_RETRIES):
                        if rng.random() < params.new_attribute_probability or not attribute_pool:
                            attribute = f"attr:{next_attribute_id}"
                            next_attribute_id += 1
                            break
                        candidate = attribute_pool[rng.randrange(len(attribute_pool))]
                        if not san.has_attribute_edge(new_node, candidate):
                            attribute = candidate
                            break
                    if attribute is None:
                        continue  # every retry collided with an existing link
                    san.add_attribute_edge(new_node, attribute, attr_type="model")
                    attribute_pool.append(attribute)
                    if record_history:
                        history.record_attribute_link(
                            new_node, attribute, attr_type="model"
                        )

                # ---------------- first outgoing link (LAPA) ----------------
                target = sample_lapa_target_fast(
                    san,
                    new_node,
                    attachment_params,
                    rng=rng,
                    in_degree_pool=in_degree_pool,
                    node_pool=node_pool,
                )
                if target is not None and add_social_edge(new_node, target):
                    if rng.random() < params.reciprocation_probability:
                        add_social_edge(target, new_node)

                # ---------------- lifetime & first sleep ----------------
                lifetime = sample_truncated_normal_lifetime(params.lifetime, rng=rng)
                death_time[new_node] = step + lifetime
                sleep = sample_sleep_time(
                    params.lifetime, san.social_out_degree(new_node), rng=rng
                )
                heap_counter += 1
                heapq.heappush(wake_heap, (step + sleep, heap_counter, new_node))

            # -------------------- Sybil infiltration waves --------------------
            # Sybils join the graph but stay out of the sampling pools: they
            # declare no attributes, never wake, and are never LAPA/uniform
            # targets — only their attack edges touch the honest region.
            for wave in waves_by_step.get(step, ()):
                wave_members: List[Node] = []
                for _ in range(wave.num_sybils):
                    sybil = next_social_id
                    next_social_id += 1
                    san.add_social_node(sybil)
                    if record_history:
                        history.record_node(sybil)
                    sybil_nodes.append(sybil)
                    wave_members.append(sybil)
                    for _ in range(wave.attack_edges_per_sybil):
                        victim = node_pool[rng.randrange(len(node_pool))]
                        add_social_edge(sybil, victim)
                if len(wave_members) >= 2:
                    for _ in range(wave.intra_links):
                        first = wave_members[rng.randrange(len(wave_members))]
                        second = wave_members[rng.randrange(len(wave_members))]
                        if first == second:
                            continue
                        add_social_edge(first, second)
                        add_social_edge(second, first)

            # -------------------- woken nodes add links --------------------
            while wake_heap and wake_heap[0][0] <= step:
                wake_time, _, node = heapq.heappop(wake_heap)
                # Strict lookup: every scheduled node has a sampled death time
                # (a silent default would wrongly kill a missing node).
                if wake_time > death_time[node]:
                    continue  # the node's lifetime expired while sleeping
                target = closing_model.sample_target(san, node, rng=rng)
                if target is None:
                    target = sample_lapa_target_fast(
                        san,
                        node,
                        attachment_params,
                        rng=rng,
                        in_degree_pool=in_degree_pool,
                        node_pool=node_pool,
                    )
                if target is not None and san.is_social_node(target):
                    if add_social_edge(node, target) and rng.random() < params.reciprocation_probability:
                        add_social_edge(target, node)
                sleep = sample_sleep_time(
                    params.lifetime, san.social_out_degree(node), rng=rng
                )
                heap_counter += 1
                heapq.heappush(wake_heap, (wake_time + sleep, heap_counter, node))

            # -------------------- attribute churn --------------------
            if params.attribute_churn_rate and rng.random() < params.attribute_churn_rate:
                churner = node_pool[rng.randrange(len(node_pool))]
                held = list(san.attribute_neighbors(churner))
                if held:
                    dropped = held[rng.randrange(len(held))]
                    san.remove_attribute_edge(churner, dropped)
                    attribute_pool.remove(dropped)
                    if record_history:
                        history.record_attribute_removal(churner, dropped)
                    replacement = None
                    for _attempt in range(ATTRIBUTE_LINK_RETRIES):
                        if rng.random() < params.new_attribute_probability or not attribute_pool:
                            replacement = f"attr:{next_attribute_id}"
                            next_attribute_id += 1
                            break
                        candidate = attribute_pool[rng.randrange(len(attribute_pool))]
                        if candidate != dropped and not san.has_attribute_edge(
                            churner, candidate
                        ):
                            replacement = candidate
                            break
                    if replacement is not None:
                        san.add_attribute_edge(churner, replacement, attr_type="model")
                        attribute_pool.append(replacement)
                        if record_history:
                            history.record_attribute_link(
                                churner, replacement, attr_type="model"
                            )

            if snapshot_every is not None and step % snapshot_every == 0:
                snapshots.append((step, san.copy()))

        if snapshot_every is not None and (not snapshots or snapshots[-1][0] != params.steps):
            snapshots.append((params.steps, san.copy()))

        return SANModelRun(
            san=san,
            history=history,
            snapshots=snapshots,
            parameters=params,
            sybil_nodes=sybil_nodes,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _sample_attribute_degree(self, rng) -> int:
        """Lognormal attribute degree, rounded to an integer (possibly zero)."""
        draw = rng.lognormvariate(self.params.attribute_mu, self.params.attribute_sigma)
        return int(round(draw))


def generate_san(
    params: Optional[SANModelParameters] = None,
    rng: RngLike = None,
    snapshot_every: Optional[int] = None,
    record_history: bool = True,
) -> SANModelRun:
    """Convenience wrapper: build the model and run it once."""
    return SANGenerativeModel(params=params, rng=rng).generate(
        snapshot_every=snapshot_every, record_history=record_history
    )
