"""Parameter estimation: fit generative-model parameters to a reference SAN.

The paper uses a "guided greedy search" to choose model parameters that make
the generated SAN match a Google+ snapshot.  The estimator here follows the
same spirit:

1. **Closed-form initialisation** — invert the model's theory:
   * lognormal fit of the reference out-degrees + Theorem 1 → lifetime
     parameters;
   * lognormal fit of the reference attribute degrees → (mu_a, sigma_a);
   * power-law fit of the reference attribute social degrees + Theorem 2 →
     the new-attribute probability ``p``;
   * measured reciprocity → the reciprocation probability.
2. **Greedy refinement** — optionally generate small pilot SANs and nudge one
   parameter at a time to reduce a weighted distance over summary metrics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..fitting.mle import fit_lognormal, fit_power_law
from ..graph.san import SAN
from ..metrics.degrees import (
    attribute_degrees_of_social_nodes,
    social_degrees_of_attribute_nodes,
    social_out_degrees,
)
from ..metrics.reciprocity import global_reciprocity
from ..utils.rng import RngLike, ensure_rng
from .fast_sim import san_generate
from .parameters import AttachmentParameters, SANModelParameters
from .theory import invert_theorem_one, invert_theorem_two


@dataclass
class EstimationResult:
    """Estimated parameters plus the diagnostics collected along the way."""

    parameters: SANModelParameters
    diagnostics: Dict[str, float]


def estimate_parameters(
    reference: SAN,
    mean_sleep: float = 2.0,
    beta: float = 200.0,
    steps: Optional[int] = None,
) -> EstimationResult:
    """Closed-form initial estimate of the generative-model parameters."""
    out_degrees = [d for d in social_out_degrees(reference) if d >= 1]
    attribute_degrees = [d for d in attribute_degrees_of_social_nodes(reference) if d >= 1]
    attribute_social_degrees = [
        d for d in social_degrees_of_attribute_nodes(reference) if d >= 1
    ]
    diagnostics: Dict[str, float] = {}

    if len(out_degrees) >= 10:
        out_fit = fit_lognormal(out_degrees)
        target_mu = out_fit.distribution.mu
        target_sigma = out_fit.distribution.sigma
    else:
        target_mu, target_sigma = 1.5, 1.0
    diagnostics["outdegree_mu"] = target_mu
    diagnostics["outdegree_sigma"] = target_sigma
    lifetime = invert_theorem_one(target_mu, target_sigma, mean_sleep=mean_sleep)

    if len(attribute_degrees) >= 10:
        attr_fit = fit_lognormal(attribute_degrees)
        attribute_mu = attr_fit.distribution.mu
        attribute_sigma = max(attr_fit.distribution.sigma, 0.1)
    else:
        attribute_mu, attribute_sigma = 1.0, 0.8
    diagnostics["attribute_mu"] = attribute_mu
    diagnostics["attribute_sigma"] = attribute_sigma

    # Each attribute node is created by exactly one attribute link, so the
    # fraction of links that spawned a new node is a direct moment estimator of
    # ``p`` (more robust at small scale than inverting the fitted exponent,
    # which is extremely sensitive near alpha = 2).  Theorem 2 provides the
    # independent cross-check: the fitted attribute-social-degree exponent
    # inverts to ``p = (exponent - 2) / (exponent - 1)``, and that inversion
    # takes over whenever the moment estimator is degenerate (no attribute
    # links, or a ratio clamped at the admissible bounds).
    num_attribute_links = reference.number_of_attribute_edges()
    if num_attribute_links > 0:
        moment_probability: Optional[float] = (
            reference.number_of_attribute_nodes() / num_attribute_links
        )
    else:
        moment_probability = None
    if len(attribute_social_degrees) >= 10:
        exponent = fit_power_law(attribute_social_degrees).distribution.alpha
    else:
        exponent = 2.33
    diagnostics["attribute_social_degree_exponent"] = exponent
    theorem_probability = invert_theorem_two(exponent) if exponent > 2.0 else None

    probability_floor, probability_ceiling = 0.02, 0.9
    moment_degenerate = (
        moment_probability is None
        or moment_probability <= probability_floor
        or moment_probability >= probability_ceiling
    )
    if moment_degenerate and theorem_probability is not None:
        new_attribute_probability = theorem_probability
        from_theorem = 1.0
    elif moment_probability is not None:
        new_attribute_probability = moment_probability
        from_theorem = 0.0
    else:
        new_attribute_probability = 0.25
        from_theorem = 0.0
    new_attribute_probability = min(
        max(new_attribute_probability, probability_floor), probability_ceiling
    )
    diagnostics["new_attribute_probability_moment"] = (
        moment_probability if moment_probability is not None else math.nan
    )
    diagnostics["new_attribute_probability_theorem2"] = (
        theorem_probability if theorem_probability is not None else math.nan
    )
    diagnostics["new_attribute_probability_from_theorem2"] = from_theorem

    reciprocity = global_reciprocity(reference)
    diagnostics["reciprocity"] = reciprocity

    if steps is None:
        steps = max(200, reference.number_of_social_nodes())

    parameters = SANModelParameters(
        steps=steps,
        attribute_mu=attribute_mu,
        attribute_sigma=attribute_sigma,
        new_attribute_probability=new_attribute_probability,
        attachment=AttachmentParameters(alpha=1.0, beta=beta),
        lifetime=lifetime,
        reciprocation_probability=min(max(reciprocity, 0.0), 1.0),
    )
    return EstimationResult(parameters=parameters, diagnostics=diagnostics)


def _default_distance(reference_summary: Dict[str, float], candidate_summary: Dict[str, float]) -> float:
    """Relative-error distance over a few robust summary metrics."""
    keys = (
        "mean_out_degree",
        "mean_attribute_degree",
        "reciprocity",
        "social_density",
        "attribute_density",
    )
    distance = 0.0
    for key in keys:
        reference_value = reference_summary.get(key, 0.0)
        candidate_value = candidate_summary.get(key, 0.0)
        scale = max(abs(reference_value), 1e-9)
        distance += abs(candidate_value - reference_value) / scale
    return distance


def _summarise(san) -> Dict[str, float]:
    """Summary metrics for either backend (mutable pilot SANs or FrozenSAN)."""
    from ..metrics.degrees import degree_summary
    from ..metrics.density import attribute_density, social_density

    summary = degree_summary(san)
    summary["reciprocity"] = global_reciprocity(san)
    summary["social_density"] = social_density(san)
    summary["attribute_density"] = attribute_density(san)
    return summary


def greedy_refine(
    reference: SAN,
    initial: SANModelParameters,
    pilot_steps: int = 800,
    iterations: int = 4,
    rng: RngLike = None,
    distance: Callable[[Dict[str, float], Dict[str, float]], float] = _default_distance,
) -> EstimationResult:
    """Guided greedy search: perturb one parameter at a time, keep improvements.

    Pilot runs use ``pilot_steps`` nodes to keep the search fast; the returned
    parameters retain the caller's original ``steps``.
    """
    generator = ensure_rng(rng)
    reference_summary = _summarise(reference)

    def evaluate(params: SANModelParameters) -> float:
        # Pilot runs ride the engine registry: alpha = 1 pilots (the common
        # case) run on the vectorized array engine and are summarised
        # directly on the FrozenSAN it materializes.
        pilot = replace(params, steps=pilot_steps)
        run = san_generate(pilot, rng=generator.getrandbits(32), engine="auto")
        return distance(reference_summary, _summarise(run.san))

    current = initial
    current_score = evaluate(current)
    history: Dict[str, float] = {"initial_score": current_score}

    perturbations: List[Tuple[str, Callable[[SANModelParameters, float], SANModelParameters]]] = [
        ("mean_sleep", lambda p, f: replace(
            p, lifetime=replace(p.lifetime, mean_sleep=max(0.2, p.lifetime.mean_sleep * f)))),
        ("attribute_mu", lambda p, f: replace(p, attribute_mu=p.attribute_mu * f)),
        ("new_attribute_probability", lambda p, f: replace(
            p, new_attribute_probability=min(0.95, max(0.02, p.new_attribute_probability * f)))),
        ("reciprocation_probability", lambda p, f: replace(
            p, reciprocation_probability=min(1.0, max(0.0, p.reciprocation_probability * f)))),
    ]

    for _ in range(iterations):
        improved = False
        for name, perturb in perturbations:
            for factor in (0.8, 1.25):
                candidate = perturb(current, factor)
                score = evaluate(candidate)
                if score < current_score:
                    current, current_score = candidate, score
                    history[f"accepted_{name}_{factor}"] = score
                    improved = True
        if not improved:
            break
    history["final_score"] = current_score
    return EstimationResult(parameters=current, diagnostics=history)
