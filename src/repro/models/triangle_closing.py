"""Triangle-closing models: Baseline, Random-Random, and RR-SAN (Section 5.2).

All three models describe how a woken node ``u`` chooses the target of a new
outgoing link from its two-hop neighborhood:

* **Baseline** — pick a node within a two-hop *social* radius uniformly at
  random.
* **Random-Random (RR)** — pick a social neighbor ``w`` of ``u`` uniformly,
  then a social neighbor ``v`` of ``w`` uniformly (Leskovec et al.).
* **Random-Random-SAN (RR-SAN)** — the first hop may also go through an
  attribute neighbor of ``u`` (weighted by ``attribute_weight``, the paper's
  ``fc``), so shared attributes can spawn *focal closures* in addition to the
  triadic closures produced by the social first hop.

Besides sampling (used inside the generative model), each model can compute
the probability it assigns to a specific observed closure edge, which is what
the Section 5.2 comparison ("RR is 14% better than Baseline, RR-SAN is 36%
better than RR") needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..algorithms.triangles import two_hop_social_neighbors
from ..graph.san import SAN
from ..utils.rng import RngLike, ensure_rng

Node = Hashable

#: Bounded attempts at finding a non-empty two-hop candidate set before a
#: closure sampler gives up and returns ``None`` (the generative model then
#: falls back to attachment).  Shared with the vectorized engine in
#: :mod:`repro.models.fast_sim`.
CLOSURE_SAMPLE_TRIES = 10


class TriangleClosingModel:
    """Interface: sample a closure target and score observed closures."""

    name = "triangle_closing"

    def sample_target(self, san: SAN, source: Node, rng: RngLike = None) -> Optional[Node]:
        raise NotImplementedError

    def target_probability(self, san: SAN, source: Node, target: Node) -> float:
        raise NotImplementedError


class BaselineClosing(TriangleClosingModel):
    """Uniform choice within the two-hop social neighborhood."""

    name = "baseline"

    def sample_target(self, san: SAN, source: Node, rng: RngLike = None) -> Optional[Node]:
        generator = ensure_rng(rng)
        candidates = list(two_hop_social_neighbors(san, source))
        if not candidates:
            return None
        return candidates[generator.randrange(len(candidates))]

    def target_probability(self, san: SAN, source: Node, target: Node) -> float:
        candidates = two_hop_social_neighbors(san, source)
        if target not in candidates:
            return 0.0
        return 1.0 / len(candidates)


class RandomRandomClosing(TriangleClosingModel):
    """Leskovec-style RR closure: uniform neighbor, then uniform neighbor-of-neighbor."""

    name = "random_random"

    def sample_target(self, san: SAN, source: Node, rng: RngLike = None) -> Optional[Node]:
        generator = ensure_rng(rng)
        first_hops = list(san.social_neighbors(source))
        if not first_hops:
            return None
        for _ in range(CLOSURE_SAMPLE_TRIES):
            intermediate = first_hops[generator.randrange(len(first_hops))]
            second_hops = [
                node for node in san.social_neighbors(intermediate) if node != source
            ]
            if second_hops:
                return second_hops[generator.randrange(len(second_hops))]
        return None

    def target_probability(self, san: SAN, source: Node, target: Node) -> float:
        first_hops = san.social_neighbors(source)
        if not first_hops:
            return 0.0
        probability = 0.0
        for intermediate in first_hops:
            second_hops = san.social_neighbors(intermediate) - {source}
            if target in second_hops:
                probability += 1.0 / (len(first_hops) * len(second_hops))
        return probability


class RandomRandomSANClosing(TriangleClosingModel):
    """RR-SAN closure: the first hop may traverse an attribute node.

    ``attribute_weight`` (the paper's ``fc``) scales the probability of taking
    an attribute first hop relative to a social first hop; ``0`` disables
    focal closure and recovers the RR model, ``1`` treats social and attribute
    neighbors uniformly (the Section 5.2 formulation).
    """

    name = "rr_san"

    def __init__(self, attribute_weight: float = 1.0) -> None:
        if attribute_weight < 0:
            raise ValueError("attribute_weight must be >= 0")
        self.attribute_weight = attribute_weight

    def _first_hop_weights(self, san: SAN, source: Node) -> Tuple[List[Node], List[float]]:
        social_hops = list(san.social_neighbors(source))
        attribute_hops = list(san.attribute_neighbors(source)) if self.attribute_weight > 0 else []
        nodes = social_hops + attribute_hops
        weights = [1.0] * len(social_hops) + [self.attribute_weight] * len(attribute_hops)
        return nodes, weights

    def _second_hop_candidates(self, san: SAN, intermediate: Node, source: Node) -> List[Node]:
        if san.is_social_node(intermediate):
            pool = san.social_neighbors(intermediate)
        else:
            pool = san.attributes.members_of(intermediate)
        return [node for node in pool if node != source]

    def sample_target(self, san: SAN, source: Node, rng: RngLike = None) -> Optional[Node]:
        generator = ensure_rng(rng)
        nodes, weights = self._first_hop_weights(san, source)
        if not nodes:
            return None
        total = sum(weights)
        if total <= 0:
            return None
        for _ in range(CLOSURE_SAMPLE_TRIES):
            threshold = generator.random() * total
            cumulative = 0.0
            intermediate = nodes[-1]
            for node, weight in zip(nodes, weights):
                cumulative += weight
                if cumulative >= threshold:
                    intermediate = node
                    break
            second_hops = self._second_hop_candidates(san, intermediate, source)
            if second_hops:
                return second_hops[generator.randrange(len(second_hops))]
        return None

    def target_probability(self, san: SAN, source: Node, target: Node) -> float:
        nodes, weights = self._first_hop_weights(san, source)
        total = sum(weights)
        if total <= 0:
            return 0.0
        probability = 0.0
        for intermediate, weight in zip(nodes, weights):
            second_hops = self._second_hop_candidates(san, intermediate, source)
            if target in second_hops:
                probability += (weight / total) * (1.0 / len(second_hops))
        return probability


@dataclass
class ClosureModelComparison:
    """Average per-edge log-probability for each closure model plus improvements."""

    average_log_probabilities: Dict[str, float]
    num_edges_scored: int

    def relative_improvement(self, model: str, baseline: str) -> float:
        """``(l_baseline - l_model) / l_baseline`` on average log-probabilities."""
        baseline_value = self.average_log_probabilities[baseline]
        model_value = self.average_log_probabilities[model]
        if baseline_value == 0:
            return 0.0
        return (baseline_value - model_value) / baseline_value


def evaluate_closure_models(
    san: SAN,
    closure_edges: Sequence[Tuple[Node, Node]],
    models: Optional[Sequence[TriangleClosingModel]] = None,
    floor_probability: float = 1e-6,
) -> ClosureModelComparison:
    """Score triangle-closing models on observed closure edges.

    ``san`` must be the network state *before* the closure edges were added
    (or at least before most of them; daily snapshot granularity is accepted
    the same way the paper accepts it).  Edges the model assigns probability
    zero receive ``floor_probability`` so a single miss does not dominate the
    average log-probability.
    """
    if models is None:
        models = [BaselineClosing(), RandomRandomClosing(), RandomRandomSANClosing()]
    totals = {model.name: 0.0 for model in models}
    scored = 0
    for source, target in closure_edges:
        if not (san.is_social_node(source) and san.is_social_node(target)):
            continue
        if source == target or san.has_social_edge(source, target):
            continue
        scored += 1
        for model in models:
            probability = model.target_probability(san, source, target)
            totals[model.name] += math.log(max(probability, floor_probability))
    if scored == 0:
        raise ValueError("no closure edges could be scored against the SAN")
    averages = {name: total / scored for name, total in totals.items()}
    return ClosureModelComparison(average_log_probabilities=averages, num_edges_scored=scored)
