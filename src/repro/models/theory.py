"""Closed-form predictions of the generative model (Theorems 1 and 2).

* **Theorem 1** — with lifetimes ``Normal(mu_l, sigma_l)`` truncated at zero
  and sleep times of mean ``m_s / d_o``, the social out-degree is lognormal
  with log-mean ``(mu_l + sigma_l g(gamma)) / m_s`` and log-variance
  ``sigma_l^2 (1 - delta(gamma)) / m_s^2`` where ``gamma = -mu_l / sigma_l``,
  ``g = phi / (1 - Phi)`` and ``delta = g (g - gamma)``.
* **Theorem 2** — the social degree of attribute nodes follows a power law
  with exponent ``(2 - p) / (1 - p)`` where ``p`` is the new-attribute
  probability.

These functions are used by the theory-validation bench and by the parameter
estimation code (inverting Theorem 1 to pick lifetime parameters that match a
target out-degree distribution).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .lifetime import truncated_normal_moments
from .parameters import LifetimeParameters, SANModelParameters


@dataclass(frozen=True)
class LognormalPrediction:
    """Predicted lognormal parameters (log-mean and log-standard-deviation)."""

    mu: float
    sigma: float


def predicted_outdegree_lognormal(params: SANModelParameters) -> LognormalPrediction:
    """Theorem 1: lognormal parameters of the model's social out-degree."""
    lifetime = params.lifetime
    mean, variance = truncated_normal_moments(lifetime.mu, lifetime.sigma)
    mu = mean / lifetime.mean_sleep
    sigma = math.sqrt(max(variance, 0.0)) / lifetime.mean_sleep
    return LognormalPrediction(mu=mu, sigma=sigma)


def predicted_attribute_degree_lognormal(params: SANModelParameters) -> LognormalPrediction:
    """By construction, the attribute degree of social nodes is lognormal."""
    return LognormalPrediction(mu=params.attribute_mu, sigma=params.attribute_sigma)


def predicted_attribute_social_degree_exponent(params: SANModelParameters) -> float:
    """Theorem 2: power-law exponent ``(2 - p) / (1 - p)`` of attribute social degree."""
    p = params.new_attribute_probability
    if p >= 1.0:
        raise ValueError("new_attribute_probability must be < 1 for a power-law tail")
    return (2 - p) / (1 - p)


def invert_theorem_one(
    target_mu: float, target_sigma: float, mean_sleep: float = 2.0
) -> LifetimeParameters:
    """Choose lifetime parameters whose Theorem-1 prediction matches a target.

    Given the lognormal (mu, sigma) fitted on a real out-degree distribution
    and a chosen mean sleep time, search for ``(mu_l, sigma_l)`` such that the
    truncated-normal mean and standard deviation divided by ``mean_sleep``
    equal the targets.  The search is a simple two-dimensional fixed-point /
    grid refinement (the mapping is smooth and monotone in both coordinates).
    """
    if target_sigma <= 0:
        raise ValueError("target_sigma must be positive")
    desired_mean = target_mu * mean_sleep
    desired_std = target_sigma * mean_sleep

    # Initial guess: ignore truncation.
    mu_l, sigma_l = desired_mean, desired_std
    for _ in range(200):
        mean, variance = truncated_normal_moments(mu_l, max(sigma_l, 1e-6))
        std = math.sqrt(max(variance, 1e-12))
        mean_error = mean - desired_mean
        std_error = std - desired_std
        if abs(mean_error) < 1e-6 and abs(std_error) < 1e-6:
            break
        mu_l -= 0.5 * mean_error
        sigma_l -= 0.5 * std_error
        sigma_l = max(sigma_l, 1e-3)
    return LifetimeParameters(mu=mu_l, sigma=sigma_l, mean_sleep=mean_sleep)


def invert_theorem_two(target_exponent: float) -> float:
    """Solve ``(2 - p) / (1 - p) = exponent`` for the new-attribute probability."""
    if target_exponent <= 2.0:
        raise ValueError("the Theorem 2 exponent is always > 2; got "
                         f"{target_exponent}")
    return (target_exponent - 2) / (target_exponent - 1)


def harmonic_outdegree_approximation(lifetime: float, mean_sleep: float) -> float:
    """The mean-field relation ``ln(D_o) ≈ lifetime / mean_sleep`` from the proof.

    Returns the predicted out-degree for one node given its realised lifetime;
    used by tests to validate the mean-field step of Theorem 1 directly.
    """
    if mean_sleep <= 0:
        raise ValueError("mean_sleep must be positive")
    return math.exp(lifetime / mean_sleep)
