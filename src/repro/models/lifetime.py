"""Lifetime and sleep-time sampling for the generative model (Section 5.3).

* Node lifetimes follow a normal distribution truncated at zero — the key
  ingredient that makes the social out-degree lognormal (Theorem 1).
* Sleep times have mean ``mean_sleep / out_degree``: higher-out-degree nodes
  wake up more often.  Only the mean matters for the theory; an exponential
  distribution is used here.
"""

from __future__ import annotations

import math
from typing import Tuple

from ..utils.rng import RngLike, ensure_rng
from .parameters import LifetimeParameters


def sample_truncated_normal_lifetime(
    params: LifetimeParameters, rng: RngLike = None, max_rejections: int = 1000
) -> float:
    """Draw a lifetime from ``Normal(mu, sigma)`` truncated to ``[0, inf)``.

    Rejection sampling is exact and fast for the parameter ranges used by the
    model (the acceptance probability is ``1 - Phi(-mu/sigma)``); a fallback of
    ``max(0, draw)`` guards against pathological parameters.
    """
    generator = ensure_rng(rng)
    for _ in range(max_rejections):
        draw = generator.gauss(params.mu, params.sigma)
        if draw >= 0:
            return draw
    return max(0.0, generator.gauss(params.mu, params.sigma))


def truncated_normal_block(
    params: LifetimeParameters, generator, size: int, max_refills: int = 50
):
    """Vectorized batch of truncated-normal lifetime draws.

    ``generator`` is a ``numpy.random.Generator``; the returned numpy array
    holds exactly ``size`` draws from ``Normal(mu, sigma)`` truncated to
    ``[0, inf)``, produced by vectorized rejection (draw a block, keep the
    non-negative entries, repeat).  The vectorized simulation engine consumes
    lifetimes from these blocks instead of calling
    :func:`sample_truncated_normal_lifetime` per node.  After ``max_refills``
    rounds (pathological parameters only) the remainder is filled with
    zero-clamped draws, mirroring the scalar sampler's fallback.
    """
    import numpy as np

    if size <= 0:
        return np.empty(0, dtype=np.float64)
    kept = []
    remaining = size
    for _ in range(max_refills):
        if remaining <= 0:
            break
        # Oversample by the acceptance rate's inverse would be ideal; a flat
        # 2x keeps refills rare for every parameter range the model uses.
        draws = generator.normal(params.mu, params.sigma, max(2 * remaining, 16))
        accepted = draws[draws >= 0]
        kept.append(accepted[:remaining])
        remaining -= accepted[:remaining].size
    if remaining > 0:
        kept.append(np.maximum(generator.normal(params.mu, params.sigma, remaining), 0.0))
    return np.concatenate(kept) if len(kept) != 1 else kept[0]


def sample_sleep_time(
    params: LifetimeParameters, out_degree: int, rng: RngLike = None
) -> float:
    """Exponential sleep time with mean ``mean_sleep / max(out_degree, 1)``."""
    generator = ensure_rng(rng)
    mean = params.mean_sleep / max(out_degree, 1)
    return generator.expovariate(1.0 / mean) if mean > 0 else 0.0


def truncated_normal_moments(mu: float, sigma: float) -> Tuple[float, float]:
    """Mean and variance of ``Normal(mu, sigma)`` truncated to ``[0, inf)``.

    Matches the quantities used in Theorem 1: with ``gamma = -mu / sigma``,
    ``g(gamma) = phi(gamma) / (1 - Phi(gamma))`` and ``delta = g (g - gamma)``,
    the truncated mean is ``mu + sigma g`` and the variance
    ``sigma^2 (1 - delta)``.
    """
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    gamma = -mu / sigma
    phi = math.exp(-gamma * gamma / 2) / math.sqrt(2 * math.pi)
    capital_phi = 0.5 * (1 + math.erf(gamma / math.sqrt(2)))
    survival = 1 - capital_phi
    if survival <= 1e-12:
        return max(mu, 0.0), 0.0
    g = phi / survival
    delta = g * (g - gamma)
    return mu + sigma * g, sigma * sigma * (1 - delta)


def expected_lifetime(params: LifetimeParameters) -> float:
    """Expected truncated-normal lifetime under ``params``."""
    mean, _ = truncated_normal_moments(params.mu, params.sigma)
    return mean
