"""Kim-Leskovec multiplicative attribute graph (MAG) baseline.

The paper's related-work section contrasts its model with Kim and Leskovec's
MAG model: every node carries ``L`` i.i.d. Bernoulli latent attributes, and
the probability of a directed link ``u -> v`` is the product over attributes
of an affinity value indexed by the pair of attribute values.  Both the social
degrees and attribute degrees this produces are binomial-like, which is the
stated mismatch with empirically observed SANs.

The implementation below generates a SAN: latent attributes become attribute
nodes (one per (index, value) combination) so the standard attribute metrics
apply directly.
"""

from __future__ import annotations

from typing import List, Optional

from ..graph.san import SAN
from ..utils.rng import RngLike, ensure_rng
from .parameters import MAGModelParameters


def generate_mag_san(
    params: Optional[MAGModelParameters] = None, rng: RngLike = None
) -> SAN:
    """Generate a directed SAN from the MAG model.

    Note the O(n^2) pair loop: the MAG model defines a probability for every
    ordered pair, so this baseline is intended for moderate sizes (a few
    thousand nodes), which is all the comparison benches need.
    """
    parameters = params if params is not None else MAGModelParameters()
    generator = ensure_rng(rng)

    san = SAN()
    attribute_vectors: List[List[int]] = []
    for node in range(parameters.num_nodes):
        san.add_social_node(node)
        vector = [
            1 if generator.random() < parameters.attribute_probability else 0
            for _ in range(parameters.num_attributes)
        ]
        attribute_vectors.append(vector)
        for index, value in enumerate(vector):
            if value == 1:
                san.add_attribute_edge(
                    node, f"mag:{index}", attr_type="latent", value=str(index)
                )

    affinity = parameters.affinity
    scale = _probability_scale(parameters)
    for source in range(parameters.num_nodes):
        source_vector = attribute_vectors[source]
        for target in range(parameters.num_nodes):
            if source == target:
                continue
            probability = 1.0
            target_vector = attribute_vectors[target]
            for index in range(parameters.num_attributes):
                key = f"{source_vector[index]}{target_vector[index]}"
                probability *= affinity[key]
                if probability == 0.0:
                    break
            if generator.random() < min(1.0, probability * scale):
                san.add_social_edge(source, target)
    return san


def _mean_affinity(params: MAGModelParameters) -> float:
    """Expected single-attribute affinity under the Bernoulli attribute prior."""
    mu = params.attribute_probability
    return (
        mu * mu * params.affinity["11"]
        + mu * (1 - mu) * (params.affinity["10"] + params.affinity["01"])
        + (1 - mu) * (1 - mu) * params.affinity["00"]
    )


def _probability_scale(params: MAGModelParameters) -> float:
    """Scale factor so the expected out-degree matches ``target_mean_degree``.

    The affinity product over ``L`` attributes is a *relative* connection
    strength; scaling it keeps the MAG structure while making the generated
    graph's density comparable to the reference SANs used in the evaluation.
    """
    mean_product = _mean_affinity(params) ** params.num_attributes
    if mean_product <= 0:
        return 0.0
    return params.target_mean_degree / ((params.num_nodes - 1) * mean_product)


def expected_degree(params: MAGModelParameters) -> float:
    """Expected out-degree under the scaled link probability (≈ target_mean_degree)."""
    mean_product = _mean_affinity(params) ** params.num_attributes
    per_pair = min(1.0, mean_product * _probability_scale(params))
    return per_pair * (params.num_nodes - 1)
