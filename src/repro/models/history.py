"""Arrival histories: ordered event logs describing how a SAN grew.

The Figure 15 / Section 5.2 evaluations score link-formation models against
*observed* link arrivals: for every new social link we need the state of the
SAN just before the link appeared.  An :class:`ArrivalHistory` captures that
as an initial SAN plus an ordered list of events (node joins, attribute link
additions, social link additions) and supports replay.

Histories come from two sources:

* the synthetic Google+ simulator and the generative models record them
  natively while generating;
* :meth:`ArrivalHistory.from_snapshots` reconstructs one by diffing two
  snapshots (arrival order within the gap is unknown, so new nodes and their
  attributes are applied before the new links — the same approximation one
  has to make with real daily crawls).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator, List, Optional, Tuple

from ..graph.san import SAN

Node = Hashable

EVENT_NODE = "node"
EVENT_ATTRIBUTE = "attribute"
EVENT_SOCIAL = "social"
EVENT_ATTRIBUTE_REMOVE = "attribute_remove"
EVENT_SOCIAL_REMOVE = "social_remove"

_EVENT_KINDS = (
    EVENT_NODE,
    EVENT_ATTRIBUTE,
    EVENT_SOCIAL,
    EVENT_ATTRIBUTE_REMOVE,
    EVENT_SOCIAL_REMOVE,
)


@dataclass(frozen=True)
class ArrivalEvent:
    """A single growth (or churn) event.

    ``kind`` is one of ``"node"`` (a new social node ``first`` joins),
    ``"attribute"`` (social node ``first`` links to attribute node ``second``
    of type ``attr_type``), ``"social"`` (directed social link ``first ->
    second``), or the churn counterparts ``"attribute_remove"`` /
    ``"social_remove"`` (the named link is deleted — users changing employers,
    unfollows).
    """

    kind: str
    first: Node
    second: Optional[Node] = None
    attr_type: str = "generic"
    value: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in _EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")
        if self.kind != EVENT_NODE and self.second is None:
            raise ValueError(f"{self.kind} events need a second endpoint")


@dataclass
class ArrivalHistory:
    """An initial SAN plus the ordered growth events applied on top of it."""

    initial: SAN = field(default_factory=SAN)
    events: List[ArrivalEvent] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Recording helpers (used by generators)
    # ------------------------------------------------------------------
    def record_node(self, node: Node) -> None:
        self.events.append(ArrivalEvent(EVENT_NODE, node))

    def record_attribute_link(
        self, social: Node, attribute: Node, attr_type: str = "generic", value: str | None = None
    ) -> None:
        self.events.append(
            ArrivalEvent(EVENT_ATTRIBUTE, social, attribute, attr_type=attr_type, value=value)
        )

    def record_social_link(self, source: Node, target: Node) -> None:
        self.events.append(ArrivalEvent(EVENT_SOCIAL, source, target))

    def record_attribute_removal(self, social: Node, attribute: Node) -> None:
        self.events.append(ArrivalEvent(EVENT_ATTRIBUTE_REMOVE, social, attribute))

    def record_social_removal(self, source: Node, target: Node) -> None:
        self.events.append(ArrivalEvent(EVENT_SOCIAL_REMOVE, source, target))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def social_link_events(self) -> List[ArrivalEvent]:
        return [event for event in self.events if event.kind == EVENT_SOCIAL]

    def num_social_links(self) -> int:
        return sum(1 for event in self.events if event.kind == EVENT_SOCIAL)

    def num_node_joins(self) -> int:
        return sum(1 for event in self.events if event.kind == EVENT_NODE)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay(self) -> Iterator[Tuple[SAN, ArrivalEvent]]:
        """Yield ``(san_state_before_event, event)`` pairs in arrival order.

        The yielded SAN object is the live replay state (not a copy); callers
        must not mutate it and must finish reading it before advancing.
        """
        state = self.initial.copy()
        for event in self.events:
            yield state, event
            apply_event(state, event)

    def final_san(self) -> SAN:
        """The SAN obtained by applying every event to the initial state."""
        state = self.initial.copy()
        for event in self.events:
            apply_event(state, event)
        return state

    # ------------------------------------------------------------------
    # Construction from snapshots
    # ------------------------------------------------------------------
    @classmethod
    def from_snapshots(cls, earlier: SAN, later: SAN) -> "ArrivalHistory":
        """Approximate history between two snapshots of the same network.

        New social nodes (with their attribute links) are emitted first, then
        new attribute links of pre-existing nodes, then new social links.
        """
        history = cls(initial=earlier.copy())
        new_nodes = [
            node for node in later.social_nodes() if not earlier.is_social_node(node)
        ]
        for node in new_nodes:
            history.record_node(node)
            for attribute in later.attribute_neighbors(node):
                info = later.attribute_info(attribute)
                history.record_attribute_link(
                    node, attribute, attr_type=info.attr_type, value=info.value
                )
        for social, attribute in later.attribute_edges():
            if earlier.is_social_node(social) and not earlier.has_attribute_edge(
                social, attribute
            ):
                info = later.attribute_info(attribute)
                history.record_attribute_link(
                    social, attribute, attr_type=info.attr_type, value=info.value
                )
        for source, target in later.social_edges():
            if not earlier.has_social_edge(source, target):
                history.record_social_link(source, target)
        return history


def apply_event(san: SAN, event: ArrivalEvent) -> None:
    """Apply one growth or churn event to ``san`` in place."""
    if event.kind == EVENT_NODE:
        san.add_social_node(event.first)
    elif event.kind == EVENT_ATTRIBUTE:
        san.add_attribute_edge(
            event.first, event.second, attr_type=event.attr_type, value=event.value
        )
    elif event.kind == EVENT_ATTRIBUTE_REMOVE:
        san.remove_attribute_edge(event.first, event.second)
    elif event.kind == EVENT_SOCIAL_REMOVE:
        san.remove_social_edge(event.first, event.second)
    else:
        san.add_social_edge(event.first, event.second)
