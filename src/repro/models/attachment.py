"""Attachment models: uniform, PA, PAPA and LAPA (Section 5.1).

Each model assigns an unnormalised weight ``f(u, v)`` to the event "social
node ``u`` issues a new outgoing link to social node ``v``":

* Uniform:  ``f(u, v) = 1``
* PA:       ``f(u, v) ∝ d_i(v)^alpha``                (alpha = 1 classically)
* PAPA:     ``f(u, v) ∝ d_i(v)^alpha (1 + a(u, v)^beta)``
* LAPA:     ``f(u, v) ∝ d_i(v)^alpha (1 + beta * a(u, v))``

where ``d_i(v)`` is the social in-degree of ``v`` and ``a(u, v)`` the number
of attributes shared by ``u`` and ``v`` (optionally weighted per attribute
type, footnote 3 of the paper).  A ``smoothing`` constant is added to the
in-degree so zero-in-degree nodes remain reachable; the same constant is used
across all models being compared.

Two sampling strategies are provided:

* :meth:`AttachmentModel.sample_target` — exact weighted sampling over an
  explicit candidate list (O(|candidates|); used in tests and small runs).
* :func:`sample_lapa_target_fast` — the decomposition-based sampler used by
  the generative model, which draws from the exact LAPA distribution in time
  proportional to the size of ``u``'s attribute communities rather than the
  whole graph (the practical heuristic discussed in the paper's Section 7).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Sequence, Tuple

from ..algorithms.sampling import weighted_choice
from ..graph.san import SAN
from ..utils.rng import RngLike, ensure_rng
from .parameters import AttachmentParameters

Node = Hashable

#: Bounded rejection retries used when a sampled LAPA candidate is excluded
#: (the source itself).  Shared with the vectorized engine in
#: :mod:`repro.models.fast_sim` so both samplers realise the same
#: bounded-retry distribution.
LAPA_MAX_RETRIES = 20


class AttachmentModel:
    """Base class: a weight function over (source, target) social node pairs."""

    name = "attachment"

    def weight(self, san: SAN, source: Node, target: Node) -> float:
        raise NotImplementedError

    def sample_target(
        self,
        san: SAN,
        source: Node,
        candidates: Sequence[Node],
        rng: RngLike = None,
    ) -> Optional[Node]:
        """Draw a target from ``candidates`` with probability ∝ weight."""
        if not candidates:
            return None
        generator = ensure_rng(rng)
        weights = [self.weight(san, source, candidate) for candidate in candidates]
        if all(weight <= 0 for weight in weights):
            return candidates[generator.randrange(len(candidates))]
        return weighted_choice(list(candidates), weights, rng=generator)

    def log_weight_components(
        self, san: SAN, source: Node, target: Node
    ) -> Tuple[float, float]:  # pragma: no cover - overridden where needed
        raise NotImplementedError


class UniformAttachment(AttachmentModel):
    """Every existing node is an equally likely target (alpha = beta = 0)."""

    name = "uniform"

    def weight(self, san: SAN, source: Node, target: Node) -> float:
        return 1.0


class PreferentialAttachment(AttachmentModel):
    """Classical preferential attachment on social in-degree."""

    name = "preferential_attachment"

    def __init__(self, alpha: float = 1.0, smoothing: float = 1.0) -> None:
        self.alpha = alpha
        self.smoothing = smoothing

    def weight(self, san: SAN, source: Node, target: Node) -> float:
        degree = san.social_in_degree(target) + self.smoothing
        return degree ** self.alpha


def shared_attribute_count(
    san: SAN,
    source: Node,
    target: Node,
    type_weights: Optional[Dict[str, float]] = None,
) -> float:
    """The paper's ``a(u, v)``: (optionally type-weighted) shared attributes."""
    common = san.common_attributes(source, target)
    if type_weights is None:
        return float(len(common))
    total = 0.0
    for attribute in common:
        total += type_weights.get(san.attribute_type(attribute), 1.0)
    return total


class PowerAttributePreferentialAttachment(AttachmentModel):
    """PAPA: ``f(u, v) ∝ d_i(v)^alpha (1 + a(u, v)^beta)``."""

    name = "papa"

    def __init__(self, params: AttachmentParameters) -> None:
        self.params = params

    def weight(self, san: SAN, source: Node, target: Node) -> float:
        degree = san.social_in_degree(target) + self.params.smoothing
        shared = shared_attribute_count(san, source, target, self.params.type_weights)
        # 0^0 == 1 by convention so beta = 0 reduces PAPA to 2 * PA ∝ PA.
        attribute_factor = 1.0 + (shared ** self.params.beta if shared > 0 else (1.0 if self.params.beta == 0 else 0.0))
        return (degree ** self.params.alpha) * attribute_factor


class LinearAttributePreferentialAttachment(AttachmentModel):
    """LAPA: ``f(u, v) ∝ d_i(v)^alpha (1 + beta * a(u, v))``."""

    name = "lapa"

    def __init__(self, params: AttachmentParameters) -> None:
        self.params = params

    def weight(self, san: SAN, source: Node, target: Node) -> float:
        degree = san.social_in_degree(target) + self.params.smoothing
        shared = shared_attribute_count(san, source, target, self.params.type_weights)
        return (degree ** self.params.alpha) * (1.0 + self.params.beta * shared)


def make_attachment_model(
    alpha: float = 1.0,
    beta: float = 0.0,
    kind: str = "lapa",
    smoothing: float = 1.0,
    type_weights: Optional[Dict[str, float]] = None,
) -> AttachmentModel:
    """Factory covering the four families used in the Figure 15 sweep."""
    params = AttachmentParameters(
        alpha=alpha, beta=beta, smoothing=smoothing, type_weights=type_weights
    )
    if kind == "uniform" or (alpha == 0 and beta == 0):
        return UniformAttachment()
    if kind == "pa" or beta == 0:
        return PreferentialAttachment(alpha=alpha, smoothing=smoothing)
    if kind == "papa":
        return PowerAttributePreferentialAttachment(params)
    if kind == "lapa":
        return LinearAttributePreferentialAttachment(params)
    raise ValueError(f"unknown attachment kind {kind!r}")


def sample_lapa_target_fast(
    san: SAN,
    source: Node,
    params: AttachmentParameters,
    rng: RngLike = None,
    in_degree_pool: Optional[Sequence[Node]] = None,
    node_pool: Optional[Sequence[Node]] = None,
    exclude: Optional[Iterable[Node]] = None,
    max_retries: int = LAPA_MAX_RETRIES,
) -> Optional[Node]:
    """Draw from the exact LAPA distribution without scanning every node.

    The LAPA weight decomposes (for ``alpha = 1``) into a degree term and an
    attribute term::

        f(u, v) = (d_i(v) + s) * (1 + beta * a(u, v))
                = (d_i(v) + s)  +  beta * a(u, v) * (d_i(v) + s)

    so sampling can proceed in two stages: pick the component proportional to
    its total mass, then sample within it.  The degree component is sampled
    from ``in_degree_pool`` (a list containing each node once per incoming
    link, giving ∝ d_i) mixed with ``node_pool`` (each node once, giving the
    smoothing term); the attribute component only requires iterating over the
    members of ``source``'s attributes.

    ``in_degree_pool`` / ``node_pool`` default to structures recomputed from
    the SAN, so callers that maintain them incrementally (the generative model)
    avoid the O(V) rebuild.
    """
    generator = ensure_rng(rng)
    excluded = set(exclude) if exclude is not None else set()
    excluded.add(source)

    if node_pool is None:
        node_pool = [node for node in san.social_nodes()]
    if in_degree_pool is None:
        in_degree_pool = [target for _, target in san.social_edges()]
    if not node_pool:
        return None

    smoothing = params.smoothing
    alpha = params.alpha
    beta = params.beta

    if alpha != 1.0:
        # Exact-but-slow fallback for non-unit alpha (tests / small graphs).
        model = LinearAttributePreferentialAttachment(params)
        candidates = [node for node in node_pool if node not in excluded]
        return model.sample_target(san, source, candidates, rng=generator)

    # Attribute component: weight beta * a(u, v) * (d_i(v) + smoothing).
    attribute_weights: Dict[Node, float] = {}
    if beta > 0:
        for attribute in san.attribute_neighbors(source):
            type_weight = 1.0
            if params.type_weights is not None:
                type_weight = params.type_weights.get(san.attribute_type(attribute), 1.0)
            for member in san.attributes.members_of(attribute):
                if member in excluded:
                    continue
                increment = beta * type_weight * (san.social_in_degree(member) + smoothing)
                attribute_weights[member] = attribute_weights.get(member, 0.0) + increment

    degree_mass = float(len(in_degree_pool)) + smoothing * len(node_pool)
    attribute_mass = sum(attribute_weights.values())
    total_mass = degree_mass + attribute_mass
    if total_mass <= 0:
        return None

    for _ in range(max_retries):
        if generator.random() * total_mass < attribute_mass and attribute_weights:
            members = list(attribute_weights)
            weights = [attribute_weights[member] for member in members]
            candidate = weighted_choice(members, weights, rng=generator)
        else:
            # Degree component: mix the in-degree pool with the smoothing pool.
            if generator.random() * degree_mass < len(in_degree_pool) and in_degree_pool:
                candidate = in_degree_pool[generator.randrange(len(in_degree_pool))]
            else:
                candidate = node_pool[generator.randrange(len(node_pool))]
        if candidate not in excluded:
            return candidate
    # Retries exhausted (tiny graphs); fall back to any non-excluded node.
    remaining = [node for node in node_pool if node not in excluded]
    if not remaining:
        return None
    return remaining[generator.randrange(len(remaining))]
