"""Evolution drivers: compute metric time series over a sequence of snapshots.

The paper's measurement figures are all time series over 79 daily snapshots.
Here a "snapshot sequence" is any ordered list of ``(day, SAN)`` pairs; the
crawler substrate produces one, and so does slicing a generated SAN model run.
Each driver returns plain ``(day, value)`` lists so that benches and examples
can print or plot them without extra dependencies.

Phase segmentation follows Section 2.2: Phase I (early bootstrap), Phase II
(stabilised invitation-only growth), Phase III (public release surge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..graph.san import SAN
from ..utils.rng import RngLike, ensure_rng
from ..algorithms.approx_clustering import approximate_average_clustering
from .density import attribute_density, social_density
from .diameter import attribute_effective_diameter, social_effective_diameter
from .joint_degree import attribute_assortativity, social_assortativity
from .reciprocity import global_reciprocity

Snapshot = Tuple[int, SAN]
Series = List[Tuple[int, float]]


def ensure_frozen_snapshots(snapshots: Sequence[Snapshot]) -> List[Snapshot]:
    """Freeze-once view of a snapshot sequence.

    Every series driver in this module routes its per-snapshot metrics through
    the engine registry, whose fastest kernels run on the CSR-backed frozen
    backend.  This helper normalises a mixed sequence so each mutable snapshot
    is frozen exactly once (via the engine's version-validated frozen-view
    cache, shared across all series drivers called on the same snapshots);
    already-frozen snapshots pass through untouched.  Node and edge insertion
    order is preserved by ``freeze()``, so sampled estimators draw the same
    populations on either backend.
    """
    from ..engine.registry import FROZEN, backend_of, frozen_view

    result: List[Snapshot] = []
    for day, san in snapshots:
        if backend_of(san) != FROZEN:
            view = frozen_view(san)
            if view is not None:
                san = view
        result.append((day, san))
    return result


@dataclass(frozen=True)
class PhaseBoundaries:
    """Day indices splitting the timeline into the paper's three phases.

    ``phase_one_end`` is the last day of Phase I and ``phase_two_end`` the last
    day of Phase II; Phase III runs to the end of the observation window.  The
    paper uses days 20 and 75 for Google+.
    """

    phase_one_end: int = 20
    phase_two_end: int = 75

    def phase_of(self, day: int) -> int:
        """Return 1, 2, or 3 for the phase containing ``day``."""
        if day <= self.phase_one_end:
            return 1
        if day <= self.phase_two_end:
            return 2
        return 3


def metric_series(
    snapshots: Sequence[Snapshot], metric: Callable[[SAN], float]
) -> Series:
    """Apply ``metric`` to every snapshot, producing a ``(day, value)`` series.

    Snapshots are normalised to the frozen backend first (freeze-once, see
    :func:`ensure_frozen_snapshots`) so registry-dispatched metrics run their
    vectorized kernels instead of recomputing on dict-backed SANs.
    """
    return [(day, metric(san)) for day, san in ensure_frozen_snapshots(snapshots)]


def growth_series(snapshots: Sequence[Snapshot]) -> Dict[str, Series]:
    """Node and link counts over time (Figures 2 and 3)."""
    series: Dict[str, Series] = {
        "social_nodes": [],
        "attribute_nodes": [],
        "social_links": [],
        "attribute_links": [],
    }
    # Counters are O(1) on both backends — no point freezing for them.
    for day, san in snapshots:
        series["social_nodes"].append((day, float(san.number_of_social_nodes())))
        series["attribute_nodes"].append((day, float(san.number_of_attribute_nodes())))
        series["social_links"].append((day, float(san.number_of_social_edges())))
        series["attribute_links"].append((day, float(san.number_of_attribute_edges())))
    return series


def reciprocity_series(snapshots: Sequence[Snapshot]) -> Series:
    """Global reciprocity over time (Figure 4a)."""
    return metric_series(snapshots, global_reciprocity)


def social_density_series(snapshots: Sequence[Snapshot]) -> Series:
    """Social density over time (Figure 4b)."""
    return metric_series(snapshots, social_density)


def attribute_density_series(snapshots: Sequence[Snapshot]) -> Series:
    """Attribute density over time (Figure 8a)."""
    return metric_series(snapshots, attribute_density)


def diameter_series(
    snapshots: Sequence[Snapshot],
    precision: int = 6,
    num_attribute_pairs: int = 60,
    rng: RngLike = None,
) -> Dict[str, Series]:
    """Social and attribute effective diameters over time (Figure 4c)."""
    generator = ensure_rng(rng)
    social_series: Series = []
    attribute_series: Series = []
    for day, san in ensure_frozen_snapshots(snapshots):
        social_series.append(
            (day, social_effective_diameter(san, method="hyperanf", precision=precision))
        )
        attribute_series.append(
            (
                day,
                attribute_effective_diameter(
                    san, num_pairs=num_attribute_pairs, rng=generator, max_depth=12
                ),
            )
        )
    return {"social": social_series, "attribute": attribute_series}


def clustering_series(
    snapshots: Sequence[Snapshot],
    kind: str = "social",
    num_samples: int = 4000,
    rng: RngLike = None,
) -> Series:
    """Average clustering coefficient over time (Figures 4d and 8b).

    Uses the Appendix-A sampled estimator so long snapshot sequences remain
    tractable.
    """
    generator = ensure_rng(rng)
    series: Series = []
    for day, san in ensure_frozen_snapshots(snapshots):
        if kind == "social":
            population = list(san.social_nodes())
        elif kind == "attribute":
            population = list(san.attribute_nodes())
        else:
            raise ValueError(f"kind must be 'social' or 'attribute', got {kind!r}")
        value = approximate_average_clustering(
            san, population=population, num_samples=num_samples, rng=generator
        )
        series.append((day, value))
    return series


def assortativity_series(
    snapshots: Sequence[Snapshot], kind: str = "social"
) -> Series:
    """Assortativity coefficient over time (Figures 7b and 12b)."""
    if kind == "social":
        return metric_series(snapshots, social_assortativity)
    if kind == "attribute":
        return metric_series(snapshots, attribute_assortativity)
    raise ValueError(f"kind must be 'social' or 'attribute', got {kind!r}")


def phase_averages(series: Series, phases: PhaseBoundaries = PhaseBoundaries()) -> Dict[int, float]:
    """Average of a metric series within each of the three phases."""
    sums: Dict[int, float] = {1: 0.0, 2: 0.0, 3: 0.0}
    counts: Dict[int, int] = {1: 0, 2: 0, 3: 0}
    for day, value in series:
        phase = phases.phase_of(day)
        sums[phase] += value
        counts[phase] += 1
    return {
        phase: (sums[phase] / counts[phase]) if counts[phase] else float("nan")
        for phase in (1, 2, 3)
    }


def phase_trends(series: Series, phases: PhaseBoundaries = PhaseBoundaries()) -> Dict[int, float]:
    """Net change of a metric within each phase (last value minus first value)."""
    grouped: Dict[int, List[Tuple[int, float]]] = {1: [], 2: [], 3: []}
    for day, value in series:
        grouped[phases.phase_of(day)].append((day, value))
    trends: Dict[int, float] = {}
    for phase, points in grouped.items():
        if len(points) >= 2:
            points.sort()
            trends[phase] = points[-1][1] - points[0][1]
        else:
            trends[phase] = 0.0
    return trends


def subsample_snapshots(
    snapshots: Sequence[Snapshot], max_snapshots: int
) -> List[Snapshot]:
    """Evenly thin a snapshot sequence to at most ``max_snapshots`` entries.

    Keeps the first and last snapshots so phase boundaries stay visible.
    """
    if max_snapshots <= 0:
        raise ValueError("max_snapshots must be positive")
    if len(snapshots) <= max_snapshots:
        return list(snapshots)
    if max_snapshots == 1:
        return [snapshots[-1]]
    step = (len(snapshots) - 1) / (max_snapshots - 1)
    indices = sorted({int(round(index * step)) for index in range(max_snapshots)})
    return [snapshots[index] for index in indices]
