"""Joint degree distribution: knn curves and assortativity coefficients.

Section 3.6 approximates the social joint degree distribution with the degree
correlation function ``knn`` — mapping out-degree to the average in-degree of
the out-neighbors — and summarises it with Newman's assortativity coefficient
``r`` over directed social links.

Section 4.1 extends the analysis to attribute nodes: for each social degree
``k`` of attribute nodes, ``knn(k)`` is the average attribute degree of the
social members of attribute nodes with ``k`` members, and the attribute
assortativity is the Pearson correlation of (social degree of the attribute
node, attribute degree of the member) over attribute links.

Every function dispatches through the :mod:`repro.engine` registry: on a
frozen backend (:class:`~repro.graph.frozen.FrozenSAN`) the registered
kernels are fully vectorized — per-node neighbor sums come from a
cumulative-sum difference over the CSR ``indices`` array, per-degree
averages from ``np.bincount``, and the assortativity coefficients from
degree arrays indexed by the CSR edge list.

Examples
--------
>>> from repro.graph import san_from_edge_lists
>>> san = san_from_edge_lists([(1, 2), (3, 2)])
>>> social_knn(san)
[(1, 2.0)]
>>> social_knn(san.freeze())
[(1, 2.0)]
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Tuple, Union

import numpy as np

from ..engine import dispatchable, kernel
from ..graph.frozen import FrozenSAN
from ..graph.san import SAN

Node = Hashable
SANLike = Union[SAN, FrozenSAN]


@dispatchable("social_knn")
def social_knn(san: SANLike) -> List[Tuple[int, float]]:
    """Average in-degree of out-neighbors as a function of out-degree (Figure 7a)."""
    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for node in san.social_nodes():
        out_degree = san.social_out_degree(node)
        if out_degree == 0:
            continue
        neighbor_in_degrees = [
            san.social_in_degree(neighbor)
            for neighbor in san.social_out_neighbors(node)
        ]
        average = sum(neighbor_in_degrees) / len(neighbor_in_degrees)
        sums[out_degree] = sums.get(out_degree, 0.0) + average
        counts[out_degree] = counts.get(out_degree, 0) + 1
    return sorted((degree, sums[degree] / counts[degree]) for degree in sums)


@kernel("social_knn")
def _social_knn_frozen(san: FrozenSAN) -> List[Tuple[int, float]]:
    indptr, indices = san.social.out_csr()
    out_degrees = san.social.out_degree_array()
    neighbor_in_degrees = san.social.in_degree_array()[indices]
    return _knn_curve(indptr, out_degrees, neighbor_in_degrees)


@dispatchable("social_assortativity")
def social_assortativity(san: SANLike) -> float:
    """Degree assortativity over directed social links (Figure 7b).

    Computed as the Pearson correlation between the out-degree of the source
    and the in-degree of the target over all directed links — the directed
    analogue used for publisher/subscriber style networks.
    """
    xs: List[float] = []
    ys: List[float] = []
    for source, target in san.social_edges():
        xs.append(float(san.social_out_degree(source)))
        ys.append(float(san.social_in_degree(target)))
    return _pearson(xs, ys)


@kernel("social_assortativity")
def _social_assortativity_frozen(san: FrozenSAN) -> float:
    sources, targets = san.social.edge_arrays()
    return _pearson_arrays(
        san.social.out_degree_array()[sources],
        san.social.in_degree_array()[targets],
    )


@dispatchable("undirected_degree_assortativity")
def undirected_degree_assortativity(san: SANLike) -> float:
    """Assortativity of total (undirected) social degree across links.

    Provided as the classical Newman coefficient for comparison against the
    Flickr / LiveJournal / Orkut values the paper cites.
    """
    xs: List[float] = []
    ys: List[float] = []
    for source, target in san.social_edges():
        xs.append(float(len(san.social.neighbors(source))))
        ys.append(float(len(san.social.neighbors(target))))
    return _pearson(xs, ys)


@kernel("undirected_degree_assortativity")
def _undirected_degree_assortativity_frozen(san: FrozenSAN) -> float:
    sources, targets = san.social.edge_arrays()
    undirected_degrees = san.social.undirected_degree_array()
    return _pearson_arrays(undirected_degrees[sources], undirected_degrees[targets])


@dispatchable("attribute_knn")
def attribute_knn(san: SANLike) -> List[Tuple[int, float]]:
    """Attribute-node knn (Figure 12a).

    For each social degree ``k`` (number of members of an attribute node), the
    average attribute degree of the members of attribute nodes having exactly
    ``k`` members.
    """
    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for attribute in san.attribute_nodes():
        members = san.attributes.members_of(attribute)
        k = len(members)
        if k == 0:
            continue
        average_member_attribute_degree = sum(
            san.attribute_degree(member) for member in members
        ) / k
        sums[k] = sums.get(k, 0.0) + average_member_attribute_degree
        counts[k] = counts.get(k, 0) + 1
    return sorted((degree, sums[degree] / counts[degree]) for degree in sums)


@kernel("attribute_knn")
def _attribute_knn_frozen(san: FrozenSAN) -> List[Tuple[int, float]]:
    indptr, indices = san.attributes.attr_to_social_csr()
    member_counts = san.attributes.social_degree_array()
    member_attr_degrees = san.attributes.attribute_degree_array()[indices]
    return _knn_curve(indptr, member_counts, member_attr_degrees)


@dispatchable("attribute_assortativity")
def attribute_assortativity(san: SANLike) -> float:
    """Attribute assortativity coefficient (Figure 12b).

    Pearson correlation over attribute links between the social degree of the
    attribute endpoint and the attribute degree of the social endpoint.
    """
    xs: List[float] = []
    ys: List[float] = []
    for social, attribute in san.attribute_edges():
        xs.append(float(san.attribute_social_degree(attribute)))
        ys.append(float(san.attribute_degree(social)))
    return _pearson(xs, ys)


@kernel("attribute_assortativity")
def _attribute_assortativity_frozen(san: FrozenSAN) -> float:
    sa_indptr, sa_indices = san.attributes.social_to_attr_csr()
    social_sources = np.repeat(
        np.arange(san.number_of_social_nodes(), dtype=np.int64),
        np.diff(sa_indptr),
    )
    return _pearson_arrays(
        san.attributes.social_degree_array()[sa_indices],
        san.attributes.attribute_degree_array()[social_sources],
    )


def _knn_curve(
    indptr: np.ndarray, row_degrees: np.ndarray, neighbor_values: np.ndarray
) -> List[Tuple[int, float]]:
    """Per-row neighbor-value averages grouped by row degree, vectorized.

    ``neighbor_values`` is aligned with the CSR ``indices`` array; the
    cumulative-sum difference yields each row's neighbor sum in one pass
    (including empty rows), ``np.bincount`` then groups the per-row averages
    by row degree.
    """
    prefix = np.concatenate(
        ([0.0], np.cumsum(neighbor_values.astype(np.float64)))
    )
    row_sums = prefix[indptr[1:]] - prefix[indptr[:-1]]
    mask = row_degrees > 0
    if not np.any(mask):
        return []
    degrees = row_degrees[mask]
    averages = row_sums[mask] / degrees
    sums = np.bincount(degrees, weights=averages)
    counts = np.bincount(degrees)
    present = np.nonzero(counts)[0]
    return [(int(k), float(sums[k] / counts[k])) for k in present]


def _pearson_arrays(xs: np.ndarray, ys: np.ndarray) -> float:
    """Pearson correlation over numpy arrays; 0.0 for degenerate inputs."""
    if xs.size == 0 or xs.size != ys.size:
        return 0.0
    dx = xs.astype(np.float64) - xs.mean()
    dy = ys.astype(np.float64) - ys.mean()
    var_x = float(np.dot(dx, dx))
    var_y = float(np.dot(dy, dy))
    if var_x <= 0 or var_y <= 0:
        return 0.0
    return float(np.dot(dx, dy) / math.sqrt(var_x * var_y))


def _pearson(xs: List[float], ys: List[float]) -> float:
    """Pearson correlation coefficient; 0.0 for degenerate inputs."""
    n = len(xs)
    if n == 0 or n != len(ys):
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = 0.0
    var_x = 0.0
    var_y = 0.0
    for x, y in zip(xs, ys):
        dx = x - mean_x
        dy = y - mean_y
        cov += dx * dy
        var_x += dx * dx
        var_y += dy * dy
    if var_x <= 0 or var_y <= 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)
