"""Joint degree distribution: knn curves and assortativity coefficients.

Section 3.6 approximates the social joint degree distribution with the degree
correlation function ``knn`` — mapping out-degree to the average in-degree of
the out-neighbors — and summarises it with Newman's assortativity coefficient
``r`` over directed social links.

Section 4.1 extends the analysis to attribute nodes: for each social degree
``k`` of attribute nodes, ``knn(k)`` is the average attribute degree of the
social members of attribute nodes with ``k`` members, and the attribute
assortativity is the Pearson correlation of (social degree of the attribute
node, attribute degree of the member) over attribute links.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Tuple

from ..graph.san import SAN

Node = Hashable


def social_knn(san: SAN) -> List[Tuple[int, float]]:
    """Average in-degree of out-neighbors as a function of out-degree (Figure 7a)."""
    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for node in san.social_nodes():
        out_degree = san.social_out_degree(node)
        if out_degree == 0:
            continue
        neighbor_in_degrees = [
            san.social_in_degree(neighbor)
            for neighbor in san.social_out_neighbors(node)
        ]
        average = sum(neighbor_in_degrees) / len(neighbor_in_degrees)
        sums[out_degree] = sums.get(out_degree, 0.0) + average
        counts[out_degree] = counts.get(out_degree, 0) + 1
    return sorted((degree, sums[degree] / counts[degree]) for degree in sums)


def social_assortativity(san: SAN) -> float:
    """Degree assortativity over directed social links (Figure 7b).

    Computed as the Pearson correlation between the out-degree of the source
    and the in-degree of the target over all directed links — the directed
    analogue used for publisher/subscriber style networks.
    """
    xs: List[float] = []
    ys: List[float] = []
    for source, target in san.social_edges():
        xs.append(float(san.social_out_degree(source)))
        ys.append(float(san.social_in_degree(target)))
    return _pearson(xs, ys)


def undirected_degree_assortativity(san: SAN) -> float:
    """Assortativity of total (undirected) social degree across links.

    Provided as the classical Newman coefficient for comparison against the
    Flickr / LiveJournal / Orkut values the paper cites.
    """
    xs: List[float] = []
    ys: List[float] = []
    for source, target in san.social_edges():
        xs.append(float(len(san.social.neighbors(source))))
        ys.append(float(len(san.social.neighbors(target))))
    return _pearson(xs, ys)


def attribute_knn(san: SAN) -> List[Tuple[int, float]]:
    """Attribute-node knn (Figure 12a).

    For each social degree ``k`` (number of members of an attribute node), the
    average attribute degree of the members of attribute nodes having exactly
    ``k`` members.
    """
    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for attribute in san.attribute_nodes():
        members = san.attributes.members_of(attribute)
        k = len(members)
        if k == 0:
            continue
        average_member_attribute_degree = sum(
            san.attribute_degree(member) for member in members
        ) / k
        sums[k] = sums.get(k, 0.0) + average_member_attribute_degree
        counts[k] = counts.get(k, 0) + 1
    return sorted((degree, sums[degree] / counts[degree]) for degree in sums)


def attribute_assortativity(san: SAN) -> float:
    """Attribute assortativity coefficient (Figure 12b).

    Pearson correlation over attribute links between the social degree of the
    attribute endpoint and the attribute degree of the social endpoint.
    """
    xs: List[float] = []
    ys: List[float] = []
    for social, attribute in san.attribute_edges():
        xs.append(float(san.attribute_social_degree(attribute)))
        ys.append(float(san.attribute_degree(social)))
    return _pearson(xs, ys)


def _pearson(xs: List[float], ys: List[float]) -> float:
    """Pearson correlation coefficient; 0.0 for degenerate inputs."""
    n = len(xs)
    if n == 0 or n != len(ys):
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = 0.0
    var_x = 0.0
    var_y = 0.0
    for x, y in zip(xs, ys):
        dx = x - mean_x
        dy = y - mean_y
        cov += dx * dy
        var_x += dx * dx
        var_y += dy * dy
    if var_x <= 0 or var_y <= 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)
