"""Effective diameter of the social layer and the attribute layer.

The social effective diameter follows Section 3.3: the (interpolated) 90th
percentile of directed pairwise distances, approximated with HyperANF.  The
attribute diameter (Section 4.1) applies the same percentile to attribute
distances — one plus the minimum social distance between members of two
attribute nodes — estimated by sampling attribute-node pairs.

Every function accepts either SAN backend: the underlying HyperANF iteration
and BFS sweeps dispatch through the :mod:`repro.engine` registry, so a frozen
input runs the register-matrix / frontier-array kernels on its social CSR.
Above the engine's parallel size threshold the ``neighbourhood_function``
dispatch additionally selects the process-pool HyperANF kernel (register
merges chunked over shared-memory row spans; see
:mod:`repro.engine.parallel`), which is bit-identical to the single-core
register-matrix kernel — diameter numbers never depend on the tier.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..algorithms.hyperanf import effective_diameter as _hyperanf_diameter
from ..algorithms.traversal import (
    effective_diameter_from_histogram,
    sample_attribute_distance_distribution,
    sample_distance_distribution,
)
from ..graph.protocol import SANView
from ..utils.rng import RngLike


def social_effective_diameter(
    san: SANView,
    method: str = "hyperanf",
    precision: int = 7,
    quantile: float = 0.9,
    num_sources: int = 200,
    rng: RngLike = None,
) -> float:
    """Effective diameter of the directed social layer.

    ``method="hyperanf"`` uses the HyperANF approximation (the paper's choice);
    ``method="sampled"`` estimates the pairwise-distance histogram by BFS from
    a random sample of sources, which is exact in expectation but slower per
    source.
    """
    if method == "hyperanf":
        return _hyperanf_diameter(san.social, precision=precision, quantile=quantile)
    if method == "sampled":
        histogram = sample_distance_distribution(
            san.social, num_sources=num_sources, rng=rng
        )
        return effective_diameter_from_histogram(histogram, quantile=quantile)
    raise ValueError(f"unknown diameter method {method!r}")


def attribute_effective_diameter(
    san: SANView,
    num_pairs: int = 100,
    quantile: float = 0.9,
    rng: RngLike = None,
    max_depth: Optional[int] = None,
) -> float:
    """Effective diameter over attribute distances (Figure 4c, 'attribute' curve)."""
    histogram = sample_attribute_distance_distribution(
        san, num_pairs=num_pairs, rng=rng, max_depth=max_depth
    )
    return effective_diameter_from_histogram(histogram, quantile=quantile)


def distance_distribution(
    san: SANView, num_sources: int = 200, rng: RngLike = None
) -> Dict[int, int]:
    """Sampled histogram of directed social distances (Section 3.3 text).

    The paper reports a dominant mode at distance six with 90% of pairs at
    distance 5-7.
    """
    return sample_distance_distribution(san.social, num_sources=num_sources, rng=rng)


def distance_mode(histogram: Dict[int, int]) -> Optional[int]:
    """The most frequent distance in a distance histogram."""
    if not histogram:
        return None
    return max(histogram, key=lambda distance: histogram[distance])
