"""Influence of attributes on the social structure (Section 4.2).

Three analyses:

* fine-grained reciprocity stratified by common social / attribute neighbors
  (Figure 13a) — delegated to :mod:`repro.metrics.reciprocity`;
* community-forming power of attribute types via the per-type average
  attribute clustering coefficient (Figure 13b) — delegated to
  :mod:`repro.metrics.attribute_metrics`;
* social out-degree statistics of users holding specific attribute values
  (Figure 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from ..graph.san import SAN
from ..utils.stats import percentile
from .attribute_metrics import attribute_clustering_by_type, top_attribute_nodes
from .degrees import out_degrees_for_attribute_value
from .reciprocity import FineGrainedReciprocity, fine_grained_reciprocity

Node = Hashable


@dataclass
class DegreeByAttributeValue:
    """Out-degree percentiles of users holding one attribute value (Figure 14)."""

    attribute: Node
    attr_type: str
    value: str
    num_users: int
    median: float
    percentile_25: float
    percentile_75: float
    mean: float


def degree_stats_for_attribute(san: SAN, attribute: Node) -> Optional[DegreeByAttributeValue]:
    """Out-degree summary for the members of one attribute node."""
    degrees = out_degrees_for_attribute_value(san, attribute)
    if not degrees:
        return None
    info = san.attribute_info(attribute)
    return DegreeByAttributeValue(
        attribute=attribute,
        attr_type=info.attr_type,
        value=info.value,
        num_users=len(degrees),
        median=percentile(degrees, 50),
        percentile_25=percentile(degrees, 25),
        percentile_75=percentile(degrees, 75),
        mean=sum(degrees) / len(degrees),
    )


def degree_by_top_attribute_values(
    san: SAN, attr_type: str, count: int = 4
) -> List[DegreeByAttributeValue]:
    """Figure 14: degree percentiles for the most popular values of one type."""
    stats: List[DegreeByAttributeValue] = []
    for attribute, _ in top_attribute_nodes(san, attr_type=attr_type, count=count):
        entry = degree_stats_for_attribute(san, attribute)
        if entry is not None:
            stats.append(entry)
    return stats


def attribute_influence_report(
    earlier: SAN,
    later: SAN,
    attr_types_for_degrees: Tuple[str, ...] = ("employer", "major"),
    top_values: int = 4,
) -> Dict[str, object]:
    """Bundle of the three Section 4.2 analyses, used by the influence bench."""
    reciprocity = fine_grained_reciprocity(earlier, later)
    clustering_by_type = attribute_clustering_by_type(later)
    degree_tables = {
        attr_type: degree_by_top_attribute_values(later, attr_type, count=top_values)
        for attr_type in attr_types_for_degrees
    }
    return {
        "fine_grained_reciprocity": reciprocity,
        "clustering_by_type": clustering_by_type,
        "degree_by_attribute_value": degree_tables,
    }


def reciprocity_boost_from_attributes(reciprocity: FineGrainedReciprocity) -> Optional[float]:
    """Ratio of reciprocation rates: >=1 shared attribute vs no shared attribute.

    The shared buckets (1 and ">=2" common attributes) are pooled by their
    link counts so a nearly-empty ">=2" bucket cannot wash out the signal.
    The paper reports roughly a 2x boost.  Returns ``None`` when either side
    has no observations.
    """
    without = reciprocity.average_rate_for_attribute_bucket(0)
    shared_reciprocated = 0
    shared_total = 0
    for (_, bucket), (reciprocated, total) in reciprocity.counts.items():
        if bucket >= 1:
            shared_reciprocated += reciprocated
            shared_total += total
    if without is None or without == 0 or shared_total == 0:
        return None
    return (shared_reciprocated / shared_total) / without
