"""Attribute-structure metrics (Section 4.1) and per-type breakdowns.

These extend the social metrics to attribute nodes: attribute density,
attribute clustering coefficient, attribute degree distributions, plus helpers
used by the Figure 9 and Figure 13b analyses.

Every function accepts either SAN backend and dispatches through the
:mod:`repro.engine` registry.  On a frozen backend
(:class:`~repro.graph.frozen.FrozenSAN`) the per-type aggregations run as
``np.bincount`` over the interned attribute-type codes and the top-k ranking
as a stable ``argsort`` over the CSR degree array; the clustering-based
functions inherit the vectorized ``L(u)`` kernel of
:mod:`repro.algorithms.clustering`.

Examples
--------
>>> from repro.graph import san_from_edge_lists
>>> san = san_from_edge_lists(
...     [(1, 2)], [(1, "employer", "Google"), (2, "employer", "Google"),
...                (2, "city", "SF")]
... )
>>> attribute_type_counts(san)
{'employer': 1, 'city': 1}
>>> attribute_type_counts(san.freeze()) == attribute_type_counts(san)
True
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple, Union

import numpy as np

from ..algorithms.approx_clustering import approximate_average_clustering
from ..algorithms.clustering import (
    average_attribute_clustering_coefficient,
    average_clustering_by_attribute_type,
    clustering_by_degree,
    node_clustering_coefficient,
)
from ..engine import dispatchable, kernel
from ..graph.frozen import FrozenSAN
from ..graph.san import SAN
from ..utils.rng import RngLike

Node = Hashable
SANLike = Union[SAN, FrozenSAN]


def attribute_clustering_by_type(san: SANLike) -> Dict[str, float]:
    """Average attribute clustering coefficient per attribute type (Figure 13b)."""
    return average_clustering_by_attribute_type(san)


def attribute_clustering_distribution(san: SANLike) -> List[Tuple[int, float]]:
    """Average attribute clustering coefficient vs attribute-node social degree."""
    return clustering_by_degree(san, kind="attribute")


def social_clustering_distribution(san: SANLike) -> List[Tuple[int, float]]:
    """Average social clustering coefficient vs social-node degree (Figure 9a)."""
    return clustering_by_degree(san, kind="social")


def approximate_attribute_clustering_coefficient(
    san: SANLike,
    epsilon: float = 0.002,
    nu: float = 100.0,
    num_samples: Optional[int] = None,
    rng: RngLike = None,
) -> float:
    """Sampled average attribute clustering coefficient (Algorithm 2, Omega = V_a)."""
    return approximate_average_clustering(
        san,
        population=list(san.attribute_nodes()),
        epsilon=epsilon,
        nu=nu,
        num_samples=num_samples,
        rng=rng,
    )


def exact_attribute_clustering_coefficient(san: SANLike) -> float:
    """Exact average attribute clustering coefficient (small SANs / tests)."""
    return average_attribute_clustering_coefficient(san)


@dispatchable("top_attribute_nodes")
def top_attribute_nodes(
    san: SANLike, attr_type: Optional[str] = None, count: int = 10
) -> List[Tuple[Node, int]]:
    """Attribute nodes with the most members, optionally restricted to one type.

    Ties are broken by attribute-node insertion order on both backends.
    """
    if attr_type is None:
        candidates = list(san.attribute_nodes())
    else:
        candidates = list(san.attributes.attribute_nodes_of_type(attr_type))
    ranked = sorted(
        ((node, san.attribute_social_degree(node)) for node in candidates),
        key=lambda pair: pair[1],
        reverse=True,
    )
    return ranked[:count]


@kernel("top_attribute_nodes")
def _top_attribute_nodes_frozen(
    san: FrozenSAN, attr_type: Optional[str] = None, count: int = 10
) -> List[Tuple[Node, int]]:
    degrees = san.attributes.social_degree_array()
    labels = san.attributes.attribute_labels()
    if attr_type is None:
        candidate_ids = np.arange(degrees.size, dtype=np.int64)
    else:
        type_names = san.attributes.type_names()
        if attr_type not in type_names:
            return []
        code = type_names.index(attr_type)
        candidate_ids = np.nonzero(san.attributes.type_codes() == code)[0]
    order = np.argsort(-degrees[candidate_ids], kind="stable")
    ranked_ids = candidate_ids[order[:count]]
    return [(labels[i], int(degrees[i])) for i in ranked_ids]


@dispatchable("attribute_type_counts")
def attribute_type_counts(san: SANLike) -> Dict[str, int]:
    """Number of distinct attribute nodes per attribute type."""
    counts: Dict[str, int] = {}
    for node in san.attribute_nodes():
        attr_type = san.attribute_type(node)
        counts[attr_type] = counts.get(attr_type, 0) + 1
    return counts


@kernel("attribute_type_counts")
def _attribute_type_counts_frozen(san: FrozenSAN) -> Dict[str, int]:
    type_names = san.attributes.type_names()
    counts = np.bincount(san.attributes.type_codes(), minlength=len(type_names))
    return _per_type_dict(san, type_names, counts)


@dispatchable("attribute_link_counts_by_type")
def attribute_link_counts_by_type(san: SANLike) -> Dict[str, int]:
    """Number of attribute links per attribute type."""
    counts: Dict[str, int] = {}
    for _, attribute in san.attribute_edges():
        attr_type = san.attribute_type(attribute)
        counts[attr_type] = counts.get(attr_type, 0) + 1
    return counts


@kernel("attribute_link_counts_by_type")
def _attribute_link_counts_by_type_frozen(san: FrozenSAN) -> Dict[str, int]:
    type_names = san.attributes.type_names()
    link_counts = np.bincount(
        san.attributes.type_codes(),
        weights=san.attributes.social_degree_array(),
        minlength=len(type_names),
    )
    return _per_type_dict(san, type_names, link_counts, skip_zero=True)


def _per_type_dict(
    san: FrozenSAN,
    type_names: List[str],
    values: np.ndarray,
    skip_zero: bool = False,
) -> Dict[str, int]:
    """Assemble a per-type dict in first-seen attribute-node order.

    Dict *contents* match the mutable backend exactly (``==`` holds); key
    order may differ for the link counts, whose mutable accumulation order
    follows per-user set iteration rather than attribute-node insertion.
    """
    codes = san.attributes.type_codes()
    present, first_seen = np.unique(codes, return_index=True)
    result: Dict[str, int] = {}
    for code in present[np.argsort(first_seen)]:
        if not skip_zero or values[code] > 0:
            result[type_names[code]] = int(values[code])
    return result


def attribute_node_clustering(san: SANLike, attribute: Node) -> float:
    """Clustering coefficient of a single attribute node."""
    return node_clustering_coefficient(san, attribute)
