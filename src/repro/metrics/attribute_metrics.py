"""Attribute-structure metrics (Section 4.1) and per-type breakdowns.

These extend the social metrics to attribute nodes: attribute density,
attribute clustering coefficient, attribute degree distributions, plus helpers
used by the Figure 9 and Figure 13b analyses.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from ..algorithms.approx_clustering import approximate_average_clustering
from ..algorithms.clustering import (
    average_attribute_clustering_coefficient,
    average_clustering_for_attribute_type,
    clustering_by_degree,
    node_clustering_coefficient,
)
from ..graph.san import SAN
from ..utils.rng import RngLike

Node = Hashable


def attribute_clustering_by_type(san: SAN) -> Dict[str, float]:
    """Average attribute clustering coefficient per attribute type (Figure 13b)."""
    return {
        attr_type: average_clustering_for_attribute_type(san, attr_type)
        for attr_type in sorted(san.attributes.attribute_types())
    }


def attribute_clustering_distribution(san: SAN) -> List[Tuple[int, float]]:
    """Average attribute clustering coefficient vs attribute-node social degree."""
    return clustering_by_degree(san, kind="attribute")


def social_clustering_distribution(san: SAN) -> List[Tuple[int, float]]:
    """Average social clustering coefficient vs social-node degree (Figure 9a)."""
    return clustering_by_degree(san, kind="social")


def approximate_attribute_clustering_coefficient(
    san: SAN,
    epsilon: float = 0.002,
    nu: float = 100.0,
    num_samples: Optional[int] = None,
    rng: RngLike = None,
) -> float:
    """Sampled average attribute clustering coefficient (Algorithm 2, Omega = V_a)."""
    return approximate_average_clustering(
        san,
        population=list(san.attribute_nodes()),
        epsilon=epsilon,
        nu=nu,
        num_samples=num_samples,
        rng=rng,
    )


def exact_attribute_clustering_coefficient(san: SAN) -> float:
    """Exact average attribute clustering coefficient (small SANs / tests)."""
    return average_attribute_clustering_coefficient(san)


def top_attribute_nodes(
    san: SAN, attr_type: Optional[str] = None, count: int = 10
) -> List[Tuple[Node, int]]:
    """Attribute nodes with the most members, optionally restricted to one type."""
    if attr_type is None:
        candidates = list(san.attribute_nodes())
    else:
        candidates = list(san.attributes.attribute_nodes_of_type(attr_type))
    ranked = sorted(
        ((node, san.attribute_social_degree(node)) for node in candidates),
        key=lambda pair: pair[1],
        reverse=True,
    )
    return ranked[:count]


def attribute_type_counts(san: SAN) -> Dict[str, int]:
    """Number of distinct attribute nodes per attribute type."""
    counts: Dict[str, int] = {}
    for node in san.attribute_nodes():
        attr_type = san.attribute_type(node)
        counts[attr_type] = counts.get(attr_type, 0) + 1
    return counts


def attribute_link_counts_by_type(san: SAN) -> Dict[str, int]:
    """Number of attribute links per attribute type."""
    counts: Dict[str, int] = {}
    for _, attribute in san.attribute_edges():
        attr_type = san.attribute_type(attribute)
        counts[attr_type] = counts.get(attr_type, 0) + 1
    return counts


def attribute_node_clustering(san: SAN, attribute: Node) -> float:
    """Clustering coefficient of a single attribute node."""
    return node_clustering_coefficient(san, attribute)
