"""Density metrics (Sections 3.2 and 4.1).

Following the paper (and Kumar et al.), *density* here is the links-to-nodes
ratio, not the graph-theoretic edge fraction:

* social density     ``|E_s| / |V_s|``
* attribute density  ``|E_a| / |V_a|``
"""

from __future__ import annotations

from ..graph.protocol import SANView


def social_density(san: SANView) -> float:
    """Directed social links per social node (``|E_s| / |V_s|``)."""
    nodes = san.number_of_social_nodes()
    if nodes == 0:
        return 0.0
    return san.number_of_social_edges() / nodes


def attribute_density(san: SANView) -> float:
    """Attribute links per attribute node (``|E_a| / |V_a|``)."""
    nodes = san.number_of_attribute_nodes()
    if nodes == 0:
        return 0.0
    return san.number_of_attribute_edges() / nodes


def graph_theoretic_social_density(san: SANView) -> float:
    """Fraction of existing directed links among all possible ordered pairs.

    Provided for comparison with the classical definition the paper's footnote
    distinguishes from the links-per-node ratio.
    """
    nodes = san.number_of_social_nodes()
    if nodes < 2:
        return 0.0
    return san.number_of_social_edges() / (nodes * (nodes - 1))


def attribute_declaration_fraction(san: SANView) -> float:
    """Fraction of social nodes declaring at least one attribute.

    The paper reports roughly 22% for Google+ (Section 2.2).
    """
    nodes = list(san.social_nodes())
    if not nodes:
        return 0.0
    declared = sum(1 for node in nodes if san.attribute_degree(node) > 0)
    return declared / len(nodes)
