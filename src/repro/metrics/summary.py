"""Whole-SAN metric reports combining the social and attribute analyses.

Two report depths are provided:

* :func:`san_metric_report` — the headline metrics (sizes, degrees,
  reciprocity, densities, assortativities, sampled clustering, effective
  diameter).  Accepts either SAN backend; pass ``freeze=True`` to compact a
  mutable input to the frozen CSR backend *once* before measuring.
* :func:`frozen_san_report` — the freeze-once pipeline behind
  ``python -m repro report``: freezes the SAN a single time, then runs the
  full metric *and* algorithm battery (everything above plus exact clustering
  coefficients, triangle count, and weak-component structure) on the frozen
  backend, so every kernel shares the same memoized CSR products.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from ..algorithms.approx_clustering import approximate_average_clustering
from ..algorithms.clustering import (
    average_attribute_clustering_coefficient,
    average_social_clustering_coefficient,
)
from ..algorithms.components import weakly_connected_components
from ..algorithms.triangles import count_directed_triangles
from ..graph.frozen import FrozenSAN
from ..graph.san import SAN
from ..utils.rng import RngLike, ensure_rng
from .degrees import degree_summary
from .density import attribute_declaration_fraction, attribute_density, social_density
from .diameter import social_effective_diameter
from .joint_degree import attribute_assortativity, social_assortativity
from .reciprocity import global_reciprocity

SANLike = Union[SAN, FrozenSAN]


def san_metric_report(
    san: SANLike,
    include_diameter: bool = True,
    clustering_samples: int = 4000,
    diameter_precision: int = 6,
    rng: RngLike = None,
    freeze: bool = False,
) -> Dict[str, float]:
    """One-call summary of the headline metrics of a SAN.

    Intended for examples, EXPERIMENTS.md tables and quick sanity checks; the
    per-figure benches use the dedicated metric functions directly.  Accepts
    either backend; with ``freeze=True`` a mutable input is compacted to the
    frozen backend once up front so every metric dispatches to the vectorized
    kernels (a no-op when the input is already frozen).
    """
    if freeze:
        san = san.freeze()
    generator = ensure_rng(rng)
    report: Dict[str, float] = {}
    report.update(san.summary())
    report.update(degree_summary(san))
    report["reciprocity"] = global_reciprocity(san)
    report["social_density"] = social_density(san)
    report["attribute_density"] = attribute_density(san)
    report["attribute_declaration_fraction"] = attribute_declaration_fraction(san)
    report["social_assortativity"] = social_assortativity(san)
    report["attribute_assortativity"] = attribute_assortativity(san)
    report["avg_social_clustering"] = approximate_average_clustering(
        san,
        population=list(san.social_nodes()),
        num_samples=clustering_samples,
        rng=generator,
    )
    report["avg_attribute_clustering"] = approximate_average_clustering(
        san,
        population=list(san.attribute_nodes()),
        num_samples=clustering_samples,
        rng=generator,
    )
    if include_diameter:
        report["social_effective_diameter"] = social_effective_diameter(
            san, method="hyperanf", precision=diameter_precision
        )
    return report


def frozen_san_report(
    san: SANLike,
    include_diameter: bool = True,
    clustering_samples: int = 4000,
    diameter_precision: int = 6,
    rng: RngLike = None,
) -> Dict[str, float]:
    """The freeze-once full battery: headline metrics + algorithm sweeps.

    The SAN is frozen exactly once (``freeze()`` is the identity on an
    already-frozen input); every subsequent metric and algorithm dispatches to
    the frozen kernels and shares the memoized CSR products (undirected
    projection, sparse adjacency matrices), so nothing is rebuilt per metric.

    Beyond :func:`san_metric_report`, the battery adds the exact clustering
    coefficients, the triangle count, and the weak-component structure.
    """
    frozen = san.freeze()
    report = san_metric_report(
        frozen,
        include_diameter=include_diameter,
        clustering_samples=clustering_samples,
        diameter_precision=diameter_precision,
        rng=rng,
    )
    report["exact_social_clustering"] = average_social_clustering_coefficient(frozen)
    report["exact_attribute_clustering"] = average_attribute_clustering_coefficient(
        frozen
    )
    report["triangles"] = count_directed_triangles(frozen)
    components = weakly_connected_components(frozen.social)
    largest = len(components[0]) if components else 0
    num_nodes = frozen.number_of_social_nodes()
    report["wcc_count"] = len(components)
    report["largest_wcc_size"] = largest
    report["wcc_fraction"] = largest / num_nodes if num_nodes else 0.0
    return report


def format_report(report: Dict[str, float], title: Optional[str] = None) -> str:
    """Render a metric report as an aligned text block."""
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    width = max((len(key) for key in report), default=0)
    for key, value in report.items():
        if isinstance(value, float):
            lines.append(f"{key.ljust(width)}  {value:.6g}")
        else:
            lines.append(f"{key.ljust(width)}  {value}")
    return "\n".join(lines)
