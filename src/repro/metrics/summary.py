"""Whole-SAN metric reports combining the social and attribute analyses."""

from __future__ import annotations

from typing import Dict, Optional

from ..algorithms.approx_clustering import approximate_average_clustering
from ..graph.san import SAN
from ..utils.rng import RngLike, ensure_rng
from .degrees import degree_summary
from .density import attribute_declaration_fraction, attribute_density, social_density
from .diameter import social_effective_diameter
from .joint_degree import attribute_assortativity, social_assortativity
from .reciprocity import global_reciprocity


def san_metric_report(
    san: SAN,
    include_diameter: bool = True,
    clustering_samples: int = 4000,
    diameter_precision: int = 6,
    rng: RngLike = None,
) -> Dict[str, float]:
    """One-call summary of the headline metrics of a SAN.

    Intended for examples, EXPERIMENTS.md tables and quick sanity checks; the
    per-figure benches use the dedicated metric functions directly.
    """
    generator = ensure_rng(rng)
    report: Dict[str, float] = {}
    report.update(san.summary())
    report.update(degree_summary(san))
    report["reciprocity"] = global_reciprocity(san)
    report["social_density"] = social_density(san)
    report["attribute_density"] = attribute_density(san)
    report["attribute_declaration_fraction"] = attribute_declaration_fraction(san)
    report["social_assortativity"] = social_assortativity(san)
    report["attribute_assortativity"] = attribute_assortativity(san)
    report["avg_social_clustering"] = approximate_average_clustering(
        san,
        population=list(san.social_nodes()),
        num_samples=clustering_samples,
        rng=generator,
    )
    report["avg_attribute_clustering"] = approximate_average_clustering(
        san,
        population=list(san.attribute_nodes()),
        num_samples=clustering_samples,
        rng=generator,
    )
    if include_diameter:
        report["social_effective_diameter"] = social_effective_diameter(
            san, method="hyperanf", precision=diameter_precision
        )
    return report


def format_report(report: Dict[str, float], title: Optional[str] = None) -> str:
    """Render a metric report as an aligned text block."""
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    width = max((len(key) for key in report), default=0)
    for key, value in report.items():
        if isinstance(value, float):
            lines.append(f"{key.ljust(width)}  {value:.6g}")
        else:
            lines.append(f"{key.ljust(width)}  {value}")
    return "\n".join(lines)
