"""Reciprocity metrics (Sections 3.1 and 4.2 of the paper).

*Global reciprocity* is the fraction of directed social links whose reverse
link also exists.  The *fine-grained reciprocity* ``r_{s,a}`` of Section 4.2
measures, for one-directional links observed at an earlier snapshot, the
probability that the reverse link exists by a later snapshot, stratified by
the number of common social neighbors ``s`` and common attribute neighbors
``a`` of the endpoints at the earlier snapshot.

On a frozen backend (:class:`~repro.graph.frozen.FrozenSAN`) the global
reciprocity needs no per-edge membership test at all: for every node,
``|succ(v) ∩ pred(v)| = outdeg(v) + indeg(v) - |succ(v) ∪ pred(v)|`` and the
union sizes are exactly the undirected-projection degrees, so the mutual-link
count is one vectorized sum over three degree arrays (self-loops, which count
as mutual, are added back separately).

Examples
--------
>>> from repro.graph import san_from_edge_lists
>>> san = san_from_edge_lists([(1, 2), (2, 1), (1, 3)])
>>> reciprocal_edge_count(san)
(2, 3)
>>> global_reciprocity(san.freeze()) == global_reciprocity(san)
True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple, Union

import numpy as np

from ..engine import dispatchable, kernel
from ..graph.frozen import FrozenSAN
from ..graph.san import SAN

Node = Hashable
SANLike = Union[SAN, FrozenSAN]


def global_reciprocity(san: SANLike) -> float:
    """Fraction of directed social links that are mutual."""
    mutual, total = reciprocal_edge_count(san)
    return mutual / total if total else 0.0


@dispatchable("reciprocal_edge_count")
def reciprocal_edge_count(san: SANLike) -> Tuple[int, int]:
    """Return ``(mutual_links, total_links)`` over the directed social layer."""
    total = 0
    mutual = 0
    for source, target in san.social_edges():
        total += 1
        if san.social.has_edge(target, source):
            mutual += 1
    return mutual, total


@kernel("reciprocal_edge_count")
def _reciprocal_edge_count_frozen(san: FrozenSAN) -> Tuple[int, int]:
    total = san.social.number_of_edges()
    if total == 0:
        return 0, 0
    sources, targets = san.social.edge_arrays()
    loops_per_node = np.bincount(
        sources[sources == targets], minlength=san.social.number_of_nodes()
    )
    num_loops = int(loops_per_node.sum())
    # Per node: |succ ∩ pred| = |succ| + |pred| - |succ ∪ pred|, with the
    # union degree read off the undirected CSR (which drops self-loops).
    mutual = int(
        (
            san.social.out_degree_array()
            + san.social.in_degree_array()
            - 2 * loops_per_node
            - san.social.undirected_degree_array()
        ).sum()
    )
    return mutual + num_loops, total


@dataclass
class FineGrainedReciprocity:
    """Reciprocation rates stratified by common social / attribute neighbors.

    ``rates[(s, a_bucket)] = (reciprocated, total)`` where ``s`` is the number
    of common social neighbors and ``a_bucket`` is the common-attribute bucket
    (0, 1, or 2 meaning ">= 2").
    """

    counts: Dict[Tuple[int, int], Tuple[int, int]] = field(default_factory=dict)

    def rate(self, common_social: int, attribute_bucket: int) -> Optional[float]:
        entry = self.counts.get((common_social, attribute_bucket))
        if entry is None or entry[1] == 0:
            return None
        return entry[0] / entry[1]

    def series_for_attribute_bucket(
        self, attribute_bucket: int
    ) -> List[Tuple[int, float]]:
        """``(common_social_neighbors, reciprocity)`` curve for one attribute bucket."""
        points = []
        for (social, bucket), (reciprocated, total) in sorted(self.counts.items()):
            if bucket == attribute_bucket and total > 0:
                points.append((social, reciprocated / total))
        return points

    def average_rate_for_attribute_bucket(self, attribute_bucket: int) -> Optional[float]:
        reciprocated = 0
        total = 0
        for (_, bucket), (r, t) in self.counts.items():
            if bucket == attribute_bucket:
                reciprocated += r
                total += t
        if total == 0:
            return None
        return reciprocated / total


def attribute_bucket(num_common_attributes: int) -> int:
    """Bucket common-attribute counts the way Figure 13a does: 0, 1, >=2."""
    if num_common_attributes <= 0:
        return 0
    if num_common_attributes == 1:
        return 1
    return 2


def fine_grained_reciprocity(
    earlier: SANLike,
    later: SANLike,
    max_common_social: int = 50,
    max_links: Optional[int] = None,
) -> FineGrainedReciprocity:
    """Compute the Section 4.2 fine-grained reciprocity.

    For every one-directional link ``u -> v`` present in ``earlier`` (i.e. the
    reverse link is absent there), determine whether ``v -> u`` exists in
    ``later``, and stratify by the endpoints' common social neighbors and
    common attribute bucket *measured on the earlier snapshot*.  Both
    snapshots may be mutable or frozen; frozen snapshots answer the per-link
    common-neighbor queries via sorted-array intersections.
    """
    result = FineGrainedReciprocity()
    processed = 0
    for source, target in earlier.social_edges():
        if earlier.social.has_edge(target, source):
            continue  # already mutual at the earlier snapshot
        common_social = len(earlier.common_social_neighbors(source, target))
        if common_social > max_common_social:
            common_social = max_common_social
        bucket = attribute_bucket(len(earlier.common_attributes(source, target)))
        reciprocated = int(
            later.is_social_node(target)
            and later.is_social_node(source)
            and later.social.has_edge(target, source)
        )
        key = (common_social, bucket)
        previous = result.counts.get(key, (0, 0))
        result.counts[key] = (previous[0] + reciprocated, previous[1] + 1)
        processed += 1
        if max_links is not None and processed >= max_links:
            break
    return result


def reciprocity_by_common_attributes(
    earlier: SANLike, later: SANLike
) -> Dict[int, float]:
    """Reciprocation rate as a function of the common-attribute bucket only."""
    fine = fine_grained_reciprocity(earlier, later)
    rates: Dict[int, float] = {}
    for bucket in (0, 1, 2):
        rate = fine.average_rate_for_attribute_bucket(bucket)
        if rate is not None:
            rates[bucket] = rate
    return rates
