"""Degree sequences and distributions for social and attribute nodes.

Four degree notions appear in the paper:

* social out-degree and in-degree of social nodes (Figure 5, lognormal),
* attribute degree of social nodes — how many attributes a user declares
  (Figure 10a, lognormal),
* social degree of attribute nodes — how many users hold an attribute
  (Figure 10b, power-law).

Every public function accepts either backend of the SAN and routes through
the :mod:`repro.engine` kernel registry: on the mutable
:class:`~repro.graph.san.SAN` the portable per-node implementation runs; on
the frozen :class:`~repro.graph.frozen.FrozenSAN` the registered kernels read
the degree sequences straight off the CSR ``indptr`` arrays in one vectorized
operation.

Examples
--------
>>> from repro.graph import san_from_edge_lists
>>> san = san_from_edge_lists([(1, 2), (2, 1), (1, 3)])
>>> social_out_degrees(san)
[2, 1, 0]
>>> social_out_degrees(san.freeze())
[2, 1, 0]
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple, Union

from ..engine import dispatchable, kernel
from ..graph.frozen import FrozenSAN
from ..graph.san import SAN
from ..utils.stats import empirical_pmf, log_binned_histogram

Node = Hashable
SANLike = Union[SAN, FrozenSAN]


@dispatchable("social_out_degrees")
def social_out_degrees(san: SANLike) -> List[int]:
    """Out-degree of every social node (in social-node iteration order)."""
    return [san.social_out_degree(node) for node in san.social_nodes()]


@kernel("social_out_degrees")
def _social_out_degrees_frozen(san: FrozenSAN) -> List[int]:
    return san.social.out_degree_array().tolist()


@dispatchable("social_in_degrees")
def social_in_degrees(san: SANLike) -> List[int]:
    """In-degree of every social node (in social-node iteration order)."""
    return [san.social_in_degree(node) for node in san.social_nodes()]


@kernel("social_in_degrees")
def _social_in_degrees_frozen(san: FrozenSAN) -> List[int]:
    return san.social.in_degree_array().tolist()


@dispatchable("social_total_degrees")
def social_total_degrees(san: SANLike) -> List[int]:
    """Number of distinct social neighbors of every social node."""
    return [len(san.social.neighbors(node)) for node in san.social_nodes()]


@kernel("social_total_degrees")
def _social_total_degrees_frozen(san: FrozenSAN) -> List[int]:
    return san.social.undirected_degree_array().tolist()


@dispatchable("attribute_degrees_of_social_nodes")
def attribute_degrees_of_social_nodes(san: SANLike) -> List[int]:
    """Attribute degree (number of declared attributes) of every social node."""
    return [san.attribute_degree(node) for node in san.social_nodes()]


@kernel("attribute_degrees_of_social_nodes")
def _attribute_degrees_frozen(san: FrozenSAN) -> List[int]:
    return san.attributes.attribute_degree_array().tolist()


@dispatchable("social_degrees_of_attribute_nodes")
def social_degrees_of_attribute_nodes(san: SANLike) -> List[int]:
    """Social degree (number of members) of every attribute node."""
    return [san.attribute_social_degree(node) for node in san.attribute_nodes()]


@kernel("social_degrees_of_attribute_nodes")
def _social_degrees_of_attributes_frozen(san: FrozenSAN) -> List[int]:
    return san.attributes.social_degree_array().tolist()


def degree_distribution(degrees: List[int]) -> Dict[int, float]:
    """Empirical probability mass function of a degree sequence."""
    return empirical_pmf(degrees)


def log_binned_degree_distribution(
    degrees: List[int], bins_per_decade: int = 10
) -> List[Tuple[float, float]]:
    """Log-binned density of a degree sequence, for log-log plotting."""
    return log_binned_histogram(degrees, bins_per_decade=bins_per_decade)


def degree_summary(san: SANLike) -> Dict[str, float]:
    """Mean degrees of the four degree notions, for quick reports."""
    out_degrees = social_out_degrees(san)
    in_degrees = social_in_degrees(san)
    attr_degrees = attribute_degrees_of_social_nodes(san)
    attr_social_degrees = social_degrees_of_attribute_nodes(san)

    def _mean(values: List[int]) -> float:
        return sum(values) / len(values) if values else 0.0

    return {
        "mean_out_degree": _mean(out_degrees),
        "mean_in_degree": _mean(in_degrees),
        "max_out_degree": max(out_degrees) if out_degrees else 0,
        "max_in_degree": max(in_degrees) if in_degrees else 0,
        "mean_attribute_degree": _mean(attr_degrees),
        "mean_attribute_social_degree": _mean(attr_social_degrees),
    }


@dispatchable("out_degrees_for_attribute_value")
def out_degrees_for_attribute_value(san: SANLike, attribute_node: Node) -> List[int]:
    """Social out-degrees of the users holding a specific attribute node.

    Figure 14 plots percentiles of these per Employer / Major value.
    """
    if not san.is_attribute_node(attribute_node):
        return []
    return [
        san.social_out_degree(member)
        for member in san.attributes.members_of(attribute_node)
    ]


@kernel("out_degrees_for_attribute_value")
def _out_degrees_for_attribute_value_frozen(
    san: FrozenSAN, attribute_node: Node
) -> List[int]:
    if not san.is_attribute_node(attribute_node):
        return []
    members = san.attributes.member_indices_of(attribute_node)
    return san.social.out_degree_array()[members].tolist()
