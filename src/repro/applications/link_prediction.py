"""Link and reciprocity prediction using social and attribute features.

Section 4.2 of the paper argues that reciprocity predictors (and link
predictors generally) should incorporate node attributes: sharing an attribute
roughly doubles the probability that a one-directional link becomes mutual.
This module provides simple, interpretable predictors over SAN features so
that claim can be demonstrated end-to-end:

* feature extraction for a node pair (common social neighbours, common
  attributes, degrees, Adamic-Adar, preferential-attachment score),
* two scoring models — structure-only and structure+attributes — trained by a
  tiny logistic regression (gradient descent; no external ML dependency),
* ranking-based evaluation (AUC) for link prediction and reciprocity
  prediction tasks built from two snapshots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from ..graph.san import SAN
from ..utils.rng import RngLike, ensure_rng

Node = Hashable

#: Feature names in the order they appear in feature vectors.
STRUCTURE_FEATURES = (
    "common_social_neighbors",
    "adamic_adar",
    "preferential_attachment",
    "reverse_link_exists",
)
ATTRIBUTE_FEATURES = ("common_attributes", "common_employer_or_school")
ALL_FEATURES = STRUCTURE_FEATURES + ATTRIBUTE_FEATURES


def pair_features(san: SAN, source: Node, target: Node) -> Dict[str, float]:
    """Feature dictionary describing a candidate (source, target) link."""
    common_social = san.common_social_neighbors(source, target)
    adamic_adar = 0.0
    for neighbor in common_social:
        degree = len(san.social.neighbors(neighbor))
        if degree > 1:
            adamic_adar += 1.0 / math.log(degree)
    common_attrs = san.common_attributes(source, target)
    strong_types = {"employer", "school"}
    strong_common = sum(
        1 for attribute in common_attrs if san.attribute_type(attribute) in strong_types
    )
    return {
        "common_social_neighbors": float(len(common_social)),
        "adamic_adar": adamic_adar,
        "preferential_attachment": math.log1p(
            san.social_in_degree(target) * max(san.social_out_degree(source), 1)
        ),
        "reverse_link_exists": 1.0 if san.has_social_edge(target, source) else 0.0,
        "common_attributes": float(len(common_attrs)),
        "common_employer_or_school": float(strong_common),
    }


def feature_vector(features: Dict[str, float], names: Sequence[str]) -> List[float]:
    return [features.get(name, 0.0) for name in names]


@dataclass
class LogisticPredictor:
    """Minimal logistic-regression scorer over a fixed feature list."""

    feature_names: Sequence[str] = ALL_FEATURES
    weights: List[float] = field(default_factory=list)
    bias: float = 0.0
    learning_rate: float = 0.05
    epochs: int = 200
    l2: float = 1e-3

    def fit(self, features: Sequence[Dict[str, float]], labels: Sequence[int]) -> "LogisticPredictor":
        if len(features) != len(labels):
            raise ValueError("features and labels must have the same length")
        if not features:
            raise ValueError("cannot train on an empty dataset")
        vectors = [feature_vector(f, self.feature_names) for f in features]
        # Standardise features for stable gradient descent.
        dims = len(self.feature_names)
        means = [sum(v[d] for v in vectors) / len(vectors) for d in range(dims)]
        stds = []
        for d in range(dims):
            variance = sum((v[d] - means[d]) ** 2 for v in vectors) / len(vectors)
            stds.append(math.sqrt(variance) if variance > 1e-12 else 1.0)
        self._means, self._stds = means, stds
        scaled = [
            [(v[d] - means[d]) / stds[d] for d in range(dims)] for v in vectors
        ]
        self.weights = [0.0] * dims
        self.bias = 0.0
        n = len(scaled)
        for _ in range(self.epochs):
            gradient_w = [0.0] * dims
            gradient_b = 0.0
            for vector, label in zip(scaled, labels):
                prediction = self._sigmoid(
                    sum(w * x for w, x in zip(self.weights, vector)) + self.bias
                )
                error = prediction - label
                for d in range(dims):
                    gradient_w[d] += error * vector[d]
                gradient_b += error
            for d in range(dims):
                self.weights[d] -= self.learning_rate * (
                    gradient_w[d] / n + self.l2 * self.weights[d]
                )
            self.bias -= self.learning_rate * gradient_b / n
        return self

    def score(self, features: Dict[str, float]) -> float:
        vector = feature_vector(features, self.feature_names)
        scaled = [
            (vector[d] - self._means[d]) / self._stds[d] for d in range(len(vector))
        ]
        return self._sigmoid(sum(w * x for w, x in zip(self.weights, scaled)) + self.bias)

    @staticmethod
    def _sigmoid(value: float) -> float:
        if value >= 0:
            return 1.0 / (1.0 + math.exp(-value))
        exp_value = math.exp(value)
        return exp_value / (1.0 + exp_value)


def auc_score(scores: Sequence[float], labels: Sequence[int]) -> float:
    """Area under the ROC curve via the rank-sum formulation."""
    if len(scores) != len(labels):
        raise ValueError("scores and labels must have the same length")
    positives = [score for score, label in zip(scores, labels) if label == 1]
    negatives = [score for score, label in zip(scores, labels) if label == 0]
    if not positives or not negatives:
        return 0.5
    wins = 0.0
    for positive in positives:
        for negative in negatives:
            if positive > negative:
                wins += 1.0
            elif positive == negative:
                wins += 0.5
    return wins / (len(positives) * len(negatives))


@dataclass
class PredictionDataset:
    """Candidate pairs with features (on the earlier SAN) and labels (from the later)."""

    features: List[Dict[str, float]]
    labels: List[int]
    pairs: List[Tuple[Node, Node]]


def build_reciprocity_dataset(
    earlier: SAN, later: SAN, max_pairs: int = 2000, rng: RngLike = None
) -> PredictionDataset:
    """Reciprocity prediction task: will a one-directional link become mutual?

    Candidates are one-directional links in ``earlier``; the label is whether
    the reverse link exists in ``later``.
    """
    generator = ensure_rng(rng)
    candidates = [
        (source, target)
        for source, target in earlier.social_edges()
        if not earlier.social.has_edge(target, source)
    ]
    if len(candidates) > max_pairs:
        candidates = generator.sample(candidates, max_pairs)
    features: List[Dict[str, float]] = []
    labels: List[int] = []
    for source, target in candidates:
        features.append(pair_features(earlier, source, target))
        labels.append(
            1
            if later.is_social_node(source)
            and later.is_social_node(target)
            and later.social.has_edge(target, source)
            else 0
        )
    return PredictionDataset(features=features, labels=labels, pairs=candidates)


def build_link_prediction_dataset(
    earlier: SAN, later: SAN, max_pairs: int = 2000, rng: RngLike = None
) -> PredictionDataset:
    """Link prediction task: positives are new links in ``later``; negatives are
    random non-links sampled among two-hop pairs of ``earlier``."""
    generator = ensure_rng(rng)
    positives: List[Tuple[Node, Node]] = []
    for source, target in later.social_edges():
        if earlier.is_social_node(source) and earlier.is_social_node(target):
            if not earlier.has_social_edge(source, target):
                positives.append((source, target))
    if len(positives) > max_pairs // 2:
        positives = generator.sample(positives, max_pairs // 2)

    nodes = list(earlier.social_nodes())
    negatives: List[Tuple[Node, Node]] = []
    attempts = 0
    target_count = len(positives)
    while len(negatives) < target_count and attempts < 50 * max(target_count, 1):
        attempts += 1
        source = nodes[generator.randrange(len(nodes))]
        target = nodes[generator.randrange(len(nodes))]
        if source == target or earlier.has_social_edge(source, target):
            continue
        if later.is_social_node(source) and later.has_social_edge(source, target):
            continue
        negatives.append((source, target))

    pairs = positives + negatives
    features = [pair_features(earlier, source, target) for source, target in pairs]
    labels = [1] * len(positives) + [0] * len(negatives)
    return PredictionDataset(features=features, labels=labels, pairs=pairs)


def compare_predictors(
    dataset: PredictionDataset, train_fraction: float = 0.6, rng: RngLike = None
) -> Dict[str, float]:
    """AUC of the structure-only vs structure+attribute predictors on a dataset."""
    generator = ensure_rng(rng)
    indices = list(range(len(dataset.labels)))
    generator.shuffle(indices)
    split = max(1, int(len(indices) * train_fraction))
    train_idx, test_idx = indices[:split], indices[split:]
    if not test_idx:
        train_idx, test_idx = indices, indices

    def subset(idx: List[int]):
        return (
            [dataset.features[i] for i in idx],
            [dataset.labels[i] for i in idx],
        )

    train_features, train_labels = subset(train_idx)
    test_features, test_labels = subset(test_idx)

    results: Dict[str, float] = {}
    for name, feature_names in (
        ("structure_only", STRUCTURE_FEATURES),
        ("structure_plus_attributes", ALL_FEATURES),
    ):
        predictor = LogisticPredictor(feature_names=feature_names)
        predictor.fit(train_features, train_labels)
        scores = [predictor.score(features) for features in test_features]
        results[name] = auc_score(scores, test_labels)
    return results
