"""Link and reciprocity prediction using social and attribute features.

Section 4.2 of the paper argues that reciprocity predictors (and link
predictors generally) should incorporate node attributes: sharing an attribute
roughly doubles the probability that a one-directional link becomes mutual.
This module provides simple, interpretable predictors over SAN features so
that claim can be demonstrated end-to-end:

* feature extraction for a node pair (common social neighbours, common
  attributes, degrees, Adamic-Adar, preferential-attachment score),
* two scoring models — structure-only and structure+attributes — trained by a
  tiny logistic regression (gradient descent; no external ML dependency),
* ranking-based evaluation (AUC) for link prediction and reciprocity
  prediction tasks built from two snapshots.

All feature extraction is *batched* and dispatches through the
:mod:`repro.engine` registry: :func:`pair_features_batch`,
:func:`common_neighbor_counts` and :func:`adamic_adar_scores` accept a list
of candidate pairs.  On a frozen SAN the common-neighbor and Adamic-Adar
scores for the whole batch come from memoized sparse matrix products
(``A @ A`` and ``A @ diag(1/log deg) @ A`` indexed at the pair positions)
when scipy is available, and from sorted CSR-row intersections otherwise;
degrees and reverse-link membership tests are plain array lookups.  The
dataset builders accept either backend and feed every candidate pair through
the batched path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..engine import PARALLEL, dispatchable, kernel
from ..engine import parallel as par
from ..engine.deps import scipy_sparse
from ..graph.frozen import FrozenSAN
from ..graph.san import SAN
from ..utils.rng import RngLike, ensure_rng

Node = Hashable
Pair = Tuple[Node, Node]
SANLike = Union[SAN, FrozenSAN]

#: Feature names in the order they appear in feature vectors.
STRUCTURE_FEATURES = (
    "common_social_neighbors",
    "adamic_adar",
    "preferential_attachment",
    "reverse_link_exists",
)
ATTRIBUTE_FEATURES = ("common_attributes", "common_employer_or_school")
ALL_FEATURES = STRUCTURE_FEATURES + ATTRIBUTE_FEATURES


#: Attribute types whose shared values are the strong homophily signal.
STRONG_ATTRIBUTE_TYPES = frozenset({"employer", "school"})


def pair_features(san: SANLike, source: Node, target: Node) -> Dict[str, float]:
    """Feature dictionary describing a candidate (source, target) link."""
    common_social = san.common_social_neighbors(source, target)
    adamic_adar = 0.0
    for neighbor in common_social:
        degree = len(san.social.neighbors(neighbor))
        if degree > 1:
            adamic_adar += 1.0 / math.log(degree)
    common_attrs = san.common_attributes(source, target)
    strong_common = sum(
        1
        for attribute in common_attrs
        if san.attribute_type(attribute) in STRONG_ATTRIBUTE_TYPES
    )
    return {
        "common_social_neighbors": float(len(common_social)),
        "adamic_adar": adamic_adar,
        "preferential_attachment": math.log1p(
            san.social_in_degree(target) * max(san.social_out_degree(source), 1)
        ),
        "reverse_link_exists": 1.0 if san.has_social_edge(target, source) else 0.0,
        "common_attributes": float(len(common_attrs)),
        "common_employer_or_school": float(strong_common),
    }


@dispatchable("link_prediction.pair_features_batch")
def pair_features_batch(
    san: SANLike, pairs: Sequence[Pair]
) -> List[Dict[str, float]]:
    """Feature dictionaries for a batch of candidate pairs.

    Equivalent to ``[pair_features(san, s, t) for s, t in pairs]``; the frozen
    kernel computes every feature column vectorized (sparse matmuls for the
    neighborhood scores, array indexing for the degree features) before
    assembling the per-pair dictionaries.
    """
    return [pair_features(san, source, target) for source, target in pairs]


def _pair_id_arrays(san: FrozenSAN, pairs: Sequence[Pair]):
    sources = np.fromiter(
        (san.social.index_of(source) for source, _ in pairs),
        dtype=np.int64,
        count=len(pairs),
    )
    targets = np.fromiter(
        (san.social.index_of(target) for _, target in pairs),
        dtype=np.int64,
        count=len(pairs),
    )
    return sources, targets


def _adamic_adar_weights(san: FrozenSAN) -> np.ndarray:
    """Per-node Adamic-Adar weight ``1/log(deg)`` (0 where deg <= 1), memoized."""

    def build(frozen: FrozenSAN) -> np.ndarray:
        degrees = frozen.social.undirected_degree_array().astype(np.float64)
        weights = np.zeros(degrees.size, dtype=np.float64)
        eligible = degrees > 1
        weights[eligible] = 1.0 / np.log(degrees[eligible])
        return weights

    return san.derived("adamic_adar_weights", build)


def _undirected_matrix(san: FrozenSAN):
    """Undirected social adjacency as a scipy CSR matrix, memoized."""

    def build(frozen: FrozenSAN):
        sparse = scipy_sparse()
        indptr, indices = frozen.social.undirected_csr()
        n = frozen.social.number_of_nodes()
        return sparse.csr_matrix(
            (np.ones(indices.size, dtype=np.float64), indices, indptr), shape=(n, n)
        )

    return san.derived("undirected_adjacency_matrix", build)


def _common_neighbor_matrix(san: FrozenSAN):
    """``A @ A``: common-neighbor counts for every 2-hop pair, memoized."""

    def build(frozen: FrozenSAN):
        adjacency = _undirected_matrix(frozen)
        return adjacency @ adjacency

    return san.derived("common_neighbor_matrix", build)


def _adamic_adar_matrix(san: FrozenSAN):
    """``A @ diag(w) @ A`` with ``w = 1/log(deg)``, memoized."""

    def build(frozen: FrozenSAN):
        sparse = scipy_sparse()
        adjacency = _undirected_matrix(frozen)
        weights = sparse.diags(_adamic_adar_weights(frozen))
        return (adjacency @ weights) @ adjacency

    return san.derived("adamic_adar_matrix", build)


def _pairwise_row_intersections(
    indptr: np.ndarray,
    indices: np.ndarray,
    sources: np.ndarray,
    targets: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-pair sorted-row intersection sizes (and optional weight sums)."""
    counts = np.zeros(sources.size, dtype=np.int64)
    sums = np.zeros(sources.size, dtype=np.float64)
    for position in range(sources.size):
        row_u = indices[indptr[sources[position]] : indptr[sources[position] + 1]]
        row_v = indices[indptr[targets[position]] : indptr[targets[position] + 1]]
        shared = np.intersect1d(row_u, row_v, assume_unique=True)
        counts[position] = shared.size
        if weights is not None and shared.size:
            sums[position] = float(weights[shared].sum())
    return counts, sums


@kernel("link_prediction.pair_features_batch")
def _pair_features_batch_frozen(
    san: FrozenSAN, pairs: Sequence[Pair]
) -> List[Dict[str, float]]:
    if not pairs:
        return []
    sources, targets = _pair_id_arrays(san, pairs)
    common_social, adamic = _neighborhood_scores(san, sources, targets)

    out_degrees = san.social.out_degree_array()
    in_degrees = san.social.in_degree_array()
    preferential = np.log1p(
        in_degrees[targets] * np.maximum(out_degrees[sources], 1)
    )

    out_indptr, out_indices = san.social.out_csr()
    reverse = np.zeros(len(pairs), dtype=np.float64)
    for position in range(len(pairs)):
        row = out_indices[
            out_indptr[targets[position]] : out_indptr[targets[position] + 1]
        ]
        slot = int(np.searchsorted(row, sources[position]))
        if slot < row.size and int(row[slot]) == sources[position]:
            reverse[position] = 1.0

    sa_indptr, sa_indices = san.attributes.social_to_attr_csr()
    type_codes = san.attributes.type_codes()
    type_names = san.attributes.type_names()
    strong_codes = np.array(
        [code for code, name in enumerate(type_names) if name in STRONG_ATTRIBUTE_TYPES],
        dtype=np.int64,
    )
    strong_mask = np.zeros(type_codes.size, dtype=bool)
    if strong_codes.size and type_codes.size:
        strong_mask[np.isin(type_codes, strong_codes)] = True
    common_attrs = np.zeros(len(pairs), dtype=np.int64)
    strong_common = np.zeros(len(pairs), dtype=np.int64)
    for position in range(len(pairs)):
        row_u = sa_indices[
            sa_indptr[sources[position]] : sa_indptr[sources[position] + 1]
        ]
        row_v = sa_indices[
            sa_indptr[targets[position]] : sa_indptr[targets[position] + 1]
        ]
        shared = np.intersect1d(row_u, row_v, assume_unique=True)
        common_attrs[position] = shared.size
        if shared.size:
            strong_common[position] = int(np.count_nonzero(strong_mask[shared]))

    return [
        {
            "common_social_neighbors": float(common_social[position]),
            "adamic_adar": float(adamic[position]),
            "preferential_attachment": float(preferential[position]),
            "reverse_link_exists": float(reverse[position]),
            "common_attributes": float(common_attrs[position]),
            "common_employer_or_school": float(strong_common[position]),
        }
        for position in range(len(pairs))
    ]


def _neighborhood_scores(
    san: FrozenSAN,
    sources: np.ndarray,
    targets: np.ndarray,
    need_counts: bool = True,
    need_adamic: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """(common-neighbor counts, Adamic-Adar scores) for id pairs.

    Small batches intersect the two sorted CSR rows per pair.  When every
    *requested* whole-graph sparse product is already memoized (a
    candidate-ranking pass built it) or the batch is large enough to
    amortize its construction, the scores are a single fancy-indexing
    lookup instead.  Only the requested score arrays are computed; the
    other is returned as zeros.
    """
    if scipy_sparse() is not None:
        amortized = sources.size >= san.number_of_social_nodes()
        counts_via_matrix = not need_counts or (
            amortized or san.has_derived("common_neighbor_matrix")
        )
        adamic_via_matrix = not need_adamic or (
            amortized or san.has_derived("adamic_adar_matrix")
        )
        if counts_via_matrix and adamic_via_matrix:
            zeros = np.zeros(sources.size)
            counts = (
                np.asarray(_common_neighbor_matrix(san)[sources, targets]).ravel()
                if need_counts
                else zeros
            )
            adamic = (
                np.asarray(_adamic_adar_matrix(san)[sources, targets]).ravel()
                if need_adamic
                else zeros
            )
            return counts.astype(np.int64), adamic
    indptr, indices = san.social.undirected_csr()
    return _pairwise_row_intersections(
        indptr,
        indices,
        sources,
        targets,
        weights=_adamic_adar_weights(san) if need_adamic else None,
    )


@dispatchable("link_prediction.common_neighbor_counts")
def common_neighbor_counts(san: SANLike, pairs: Sequence[Pair]) -> List[int]:
    """Number of shared (undirected) social neighbors per candidate pair."""
    return [
        len(san.common_social_neighbors(source, target)) for source, target in pairs
    ]


@kernel("link_prediction.common_neighbor_counts")
def _common_neighbor_counts_frozen(san: FrozenSAN, pairs: Sequence[Pair]) -> List[int]:
    if not pairs:
        return []
    sources, targets = _pair_id_arrays(san, pairs)
    counts, _ = _neighborhood_scores(san, sources, targets, need_adamic=False)
    return [int(count) for count in counts]


@dispatchable("link_prediction.adamic_adar_scores")
def adamic_adar_scores(san: SANLike, pairs: Sequence[Pair]) -> List[float]:
    """Adamic-Adar score (sum of ``1/log deg`` over shared neighbors) per pair."""
    scores: List[float] = []
    for source, target in pairs:
        score = 0.0
        for neighbor in san.common_social_neighbors(source, target):
            degree = len(san.social.neighbors(neighbor))
            if degree > 1:
                score += 1.0 / math.log(degree)
        scores.append(score)
    return scores


@kernel("link_prediction.adamic_adar_scores")
def _adamic_adar_scores_frozen(san: FrozenSAN, pairs: Sequence[Pair]) -> List[float]:
    if not pairs:
        return []
    sources, targets = _pair_id_arrays(san, pairs)
    _, adamic = _neighborhood_scores(san, sources, targets, need_counts=False)
    return [float(score) for score in adamic]


@dispatchable("link_prediction.rank_candidate_pairs")
def rank_candidate_pairs(
    san: SANLike, top_k: int = 100, metric: str = "common_neighbors"
) -> List[Tuple[Node, Node, float]]:
    """Top-k non-linked 2-hop pairs ranked by a neighborhood score.

    The whole-graph candidate-generation step of link prediction: every
    unordered pair of distinct social nodes sharing at least one undirected
    neighbor but no direct link is scored by ``metric`` —
    ``"common_neighbors"`` (shared-neighbor count) or ``"adamic_adar"``
    (``sum 1/log deg`` over shared neighbors) — and the ``top_k`` pairs are
    returned as ``(source, target, score)``, score-descending with ties
    broken by node insertion order.  On a frozen SAN with scipy this is the
    sparse-matmul workload the CSR backend exists for: one memoized
    ``A @ A`` (or ``A @ diag(w) @ A``) product scores every candidate at
    once, where the portable implementation walks each wedge in Python.
    """
    _require_metric(metric)
    order = {node: position for position, node in enumerate(san.social_nodes())}
    labels = list(order)
    neighbor_sets = {node: san.social.neighbors(node) for node in labels}
    scores: Dict[Tuple[int, int], float] = {}
    for center, neighbors in neighbor_sets.items():
        degree = len(neighbors)
        if degree < 2:
            continue
        weight = 1.0 if metric == "common_neighbors" else (
            1.0 / math.log(degree) if degree > 1 else 0.0
        )
        ranked = sorted(neighbors, key=order.__getitem__)
        for left_position, left in enumerate(ranked):
            left_neighbors = neighbor_sets[left]
            for right in ranked[left_position + 1 :]:
                if right in left_neighbors:
                    continue  # already linked
                key = (order[left], order[right])
                scores[key] = scores.get(key, 0.0) + weight
    ranked_pairs = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    return [
        (labels[i], labels[j], score) for (i, j), score in ranked_pairs[:top_k]
    ]


def _require_metric(metric: str) -> None:
    if metric not in ("common_neighbors", "adamic_adar"):
        raise ValueError(
            f"metric must be 'common_neighbors' or 'adamic_adar', got {metric!r}"
        )


@kernel("link_prediction.rank_candidate_pairs", requires="scipy")
def _rank_candidate_pairs_frozen(
    san: FrozenSAN, top_k: int = 100, metric: str = "common_neighbors"
) -> List[Tuple[Node, Node, float]]:
    _require_metric(metric)
    sparse = scipy_sparse()
    if metric == "common_neighbors":
        product = _common_neighbor_matrix(san)
    else:
        product = _adamic_adar_matrix(san)
    # Keep each unordered pair once (strict upper triangle, which also drops
    # the diagonal), then remove pairs that are already linked.
    candidates = sparse.triu(product, k=1).tocsr()
    linked = candidates.multiply(_undirected_matrix(san))
    candidates = (candidates - linked).tocoo()
    mask = candidates.data > 0
    rows = candidates.row[mask]
    cols = candidates.col[mask]
    data = candidates.data[mask]
    if data.size == 0:
        return []
    ranked = np.lexsort((cols, rows, -data))[:top_k]
    labels = san.social.labels()
    return [
        (labels[rows[position]], labels[cols[position]], float(data[position]))
        for position in ranked
    ]


def _rank_chunk(
    csr_spec: par.SharedCSRSpec,
    weights_spec: Optional[par.SharedCSRSpec],
    lo: int,
    hi: int,
    metric: str,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pool worker: surviving candidates among global rows ``[lo, hi)``.

    Sparse row-chunk products reproduce the frozen kernel's arithmetic
    exactly: scipy's CSR matmul computes each output row from that row of
    the left operand alone, so ``A[lo:hi] @ A`` equals rows ``[lo, hi)`` of
    ``A @ A`` bit for bit.  The strict-upper-triangle filter shifts with the
    chunk (local row ``r`` is global row ``lo + r``, so ``k = lo + 1`` keeps
    exactly the globally-upper-triangular entries), and already-linked pairs
    are removed against the matching adjacency row chunk.
    """
    sparse = scipy_sparse()
    views = par.attach_views(csr_spec)
    indptr, indices = views["indptr"], views["indices"]
    n = indptr.size - 1
    full = par.attached_derived(
        csr_spec,
        "float_adjacency",
        lambda: sparse.csr_matrix(
            (np.ones(indices.size, dtype=np.float64), indices, indptr),
            shape=(n, n),
        ),
    )
    start, stop = indptr[lo], indptr[hi]
    adjacency_chunk = sparse.csr_matrix(
        (
            np.ones(stop - start, dtype=np.float64),
            indices[start:stop],
            indptr[lo : hi + 1] - start,
        ),
        shape=(hi - lo, n),
    )
    if metric == "common_neighbors":
        product = adjacency_chunk @ full
    else:
        weights = par.attach_views(weights_spec)["weights"]
        product = (adjacency_chunk @ sparse.diags(weights)) @ full
    candidates = sparse.triu(product, k=lo + 1).tocsr()
    linked = candidates.multiply(adjacency_chunk)
    candidates = (candidates - linked).tocoo()
    mask = candidates.data > 0
    return (
        candidates.row[mask].astype(np.int64) + lo,
        candidates.col[mask].astype(np.int64),
        candidates.data[mask],
    )


@kernel(
    "link_prediction.rank_candidate_pairs",
    backend=PARALLEL,
    requires=("scipy", "parallel"),
    priority=20,
)
def _rank_candidate_pairs_parallel(
    san: FrozenSAN, top_k: int = 100, metric: str = "common_neighbors"
) -> List[Tuple[Node, Node, float]]:
    """Process-pool candidate ranking over row chunks of ``A @ A``.

    The final ``lexsort`` keys (score descending, then row, then column)
    fully disambiguate every candidate — each unordered pair appears exactly
    once across chunks — so concatenation order cannot affect the ranking
    and the result matches the frozen kernel exactly.
    """
    _require_metric(metric)
    n = san.social.number_of_nodes()
    csr_spec = par.shared_undirected_csr(san.social)
    weights_spec = None
    if metric == "adamic_adar":
        weights_spec = par.shared_arrays(
            san,
            "adamic_adar_weights",
            lambda: {"weights": _adamic_adar_weights(san)},
        )
    chunks = par.chunk_ranges(n, par.max_workers())
    parts = par.run_chunks(
        _rank_chunk,
        [(csr_spec, weights_spec, lo, hi, metric) for lo, hi in chunks],
    )
    if not parts:
        return []
    rows = np.concatenate([part[0] for part in parts])
    cols = np.concatenate([part[1] for part in parts])
    data = np.concatenate([part[2] for part in parts])
    if data.size == 0:
        return []
    ranked = np.lexsort((cols, rows, -data))[:top_k]
    labels = san.social.labels()
    return [
        (labels[rows[position]], labels[cols[position]], float(data[position]))
        for position in ranked
    ]


def feature_vector(features: Dict[str, float], names: Sequence[str]) -> List[float]:
    return [features.get(name, 0.0) for name in names]


@dataclass
class LogisticPredictor:
    """Minimal logistic-regression scorer over a fixed feature list."""

    feature_names: Sequence[str] = ALL_FEATURES
    weights: List[float] = field(default_factory=list)
    bias: float = 0.0
    learning_rate: float = 0.05
    epochs: int = 200
    l2: float = 1e-3

    def fit(self, features: Sequence[Dict[str, float]], labels: Sequence[int]) -> "LogisticPredictor":
        if len(features) != len(labels):
            raise ValueError("features and labels must have the same length")
        if not features:
            raise ValueError("cannot train on an empty dataset")
        vectors = [feature_vector(f, self.feature_names) for f in features]
        # Standardise features for stable gradient descent.
        dims = len(self.feature_names)
        means = [sum(v[d] for v in vectors) / len(vectors) for d in range(dims)]
        stds = []
        for d in range(dims):
            variance = sum((v[d] - means[d]) ** 2 for v in vectors) / len(vectors)
            stds.append(math.sqrt(variance) if variance > 1e-12 else 1.0)
        self._means, self._stds = means, stds
        scaled = [
            [(v[d] - means[d]) / stds[d] for d in range(dims)] for v in vectors
        ]
        self.weights = [0.0] * dims
        self.bias = 0.0
        n = len(scaled)
        for _ in range(self.epochs):
            gradient_w = [0.0] * dims
            gradient_b = 0.0
            for vector, label in zip(scaled, labels):
                prediction = self._sigmoid(
                    sum(w * x for w, x in zip(self.weights, vector)) + self.bias
                )
                error = prediction - label
                for d in range(dims):
                    gradient_w[d] += error * vector[d]
                gradient_b += error
            for d in range(dims):
                self.weights[d] -= self.learning_rate * (
                    gradient_w[d] / n + self.l2 * self.weights[d]
                )
            self.bias -= self.learning_rate * gradient_b / n
        return self

    def score(self, features: Dict[str, float]) -> float:
        vector = feature_vector(features, self.feature_names)
        scaled = [
            (vector[d] - self._means[d]) / self._stds[d] for d in range(len(vector))
        ]
        return self._sigmoid(sum(w * x for w, x in zip(self.weights, scaled)) + self.bias)

    @staticmethod
    def _sigmoid(value: float) -> float:
        if value >= 0:
            return 1.0 / (1.0 + math.exp(-value))
        exp_value = math.exp(value)
        return exp_value / (1.0 + exp_value)


def auc_score(scores: Sequence[float], labels: Sequence[int]) -> float:
    """Area under the ROC curve via the rank-sum formulation."""
    if len(scores) != len(labels):
        raise ValueError("scores and labels must have the same length")
    positives = [score for score, label in zip(scores, labels) if label == 1]
    negatives = [score for score, label in zip(scores, labels) if label == 0]
    if not positives or not negatives:
        return 0.5
    wins = 0.0
    for positive in positives:
        for negative in negatives:
            if positive > negative:
                wins += 1.0
            elif positive == negative:
                wins += 0.5
    return wins / (len(positives) * len(negatives))


@dataclass
class PredictionDataset:
    """Candidate pairs with features (on the earlier SAN) and labels (from the later)."""

    features: List[Dict[str, float]]
    labels: List[int]
    pairs: List[Tuple[Node, Node]]


def build_reciprocity_dataset(
    earlier: SANLike, later: SANLike, max_pairs: int = 2000, rng: RngLike = None
) -> PredictionDataset:
    """Reciprocity prediction task: will a one-directional link become mutual?

    Candidates are one-directional links in ``earlier``; the label is whether
    the reverse link exists in ``later``.
    """
    generator = ensure_rng(rng)
    candidates = [
        (source, target)
        for source, target in earlier.social_edges()
        if not earlier.social.has_edge(target, source)
    ]
    if len(candidates) > max_pairs:
        candidates = generator.sample(candidates, max_pairs)
    features = pair_features_batch(earlier, candidates)
    labels = [
        1
        if later.is_social_node(source)
        and later.is_social_node(target)
        and later.social.has_edge(target, source)
        else 0
        for source, target in candidates
    ]
    return PredictionDataset(features=features, labels=labels, pairs=candidates)


def build_link_prediction_dataset(
    earlier: SANLike, later: SANLike, max_pairs: int = 2000, rng: RngLike = None
) -> PredictionDataset:
    """Link prediction task: positives are new links in ``later``; negatives are
    random non-links sampled among two-hop pairs of ``earlier``."""
    generator = ensure_rng(rng)
    positives: List[Tuple[Node, Node]] = []
    for source, target in later.social_edges():
        if earlier.is_social_node(source) and earlier.is_social_node(target):
            if not earlier.has_social_edge(source, target):
                positives.append((source, target))
    if len(positives) > max_pairs // 2:
        positives = generator.sample(positives, max_pairs // 2)

    nodes = list(earlier.social_nodes())
    negatives: List[Tuple[Node, Node]] = []
    attempts = 0
    target_count = len(positives)
    while len(negatives) < target_count and attempts < 50 * max(target_count, 1):
        attempts += 1
        source = nodes[generator.randrange(len(nodes))]
        target = nodes[generator.randrange(len(nodes))]
        if source == target or earlier.has_social_edge(source, target):
            continue
        if later.is_social_node(source) and later.has_social_edge(source, target):
            continue
        negatives.append((source, target))

    pairs = positives + negatives
    features = pair_features_batch(earlier, pairs)
    labels = [1] * len(positives) + [0] * len(negatives)
    return PredictionDataset(features=features, labels=labels, pairs=pairs)


def compare_predictors(
    dataset: PredictionDataset, train_fraction: float = 0.6, rng: RngLike = None
) -> Dict[str, float]:
    """AUC of the structure-only vs structure+attribute predictors on a dataset."""
    generator = ensure_rng(rng)
    indices = list(range(len(dataset.labels)))
    generator.shuffle(indices)
    split = max(1, int(len(indices) * train_fraction))
    train_idx, test_idx = indices[:split], indices[split:]
    if not test_idx:
        train_idx, test_idx = indices, indices

    def subset(idx: List[int]):
        return (
            [dataset.features[i] for i in idx],
            [dataset.labels[i] for i in idx],
        )

    train_features, train_labels = subset(train_idx)
    test_features, test_labels = subset(test_idx)

    results: Dict[str, float] = {}
    for name, feature_names in (
        ("structure_only", STRUCTURE_FEATURES),
        ("structure_plus_attributes", ALL_FEATURES),
    ):
        predictor = LogisticPredictor(feature_names=feature_names)
        predictor.fit(train_features, train_labels)
        scores = [predictor.score(features) for features in test_features]
        results[name] = auc_score(scores, test_labels)
    return results
