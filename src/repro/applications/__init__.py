"""Application benchmarks: Sybil defense, anonymous communication, prediction."""

from .anonymity import (
    AnonymityParameters,
    AnonymityResult,
    attack_probability_vs_compromised,
    end_to_end_attack_probability,
)
from .link_prediction import (
    ALL_FEATURES,
    STRUCTURE_FEATURES,
    LogisticPredictor,
    PredictionDataset,
    adamic_adar_scores,
    auc_score,
    build_link_prediction_dataset,
    build_reciprocity_dataset,
    common_neighbor_counts,
    compare_predictors,
    pair_features,
    pair_features_batch,
    rank_candidate_pairs,
)
from .sybil import (
    SybilDefenseResult,
    SybilLimitParameters,
    acceptance_probability,
    count_attack_edges,
    sybil_identities_vs_compromised,
)

__all__ = [
    "AnonymityParameters",
    "AnonymityResult",
    "attack_probability_vs_compromised",
    "end_to_end_attack_probability",
    "ALL_FEATURES",
    "STRUCTURE_FEATURES",
    "LogisticPredictor",
    "PredictionDataset",
    "adamic_adar_scores",
    "auc_score",
    "build_link_prediction_dataset",
    "build_reciprocity_dataset",
    "common_neighbor_counts",
    "compare_predictors",
    "pair_features",
    "pair_features_batch",
    "rank_candidate_pairs",
    "SybilDefenseResult",
    "SybilLimitParameters",
    "acceptance_probability",
    "count_attack_edges",
    "sybil_identities_vs_compromised",
]
