"""Application benchmarks: Sybil defense, anonymous communication, prediction."""

from .anonymity import (
    AnonymityParameters,
    AnonymityResult,
    attack_probability_vs_compromised,
    end_to_end_attack_probability,
)
from .link_prediction import (
    ALL_FEATURES,
    STRUCTURE_FEATURES,
    LogisticPredictor,
    PredictionDataset,
    auc_score,
    build_link_prediction_dataset,
    build_reciprocity_dataset,
    compare_predictors,
    pair_features,
)
from .sybil import (
    SybilDefenseResult,
    SybilLimitParameters,
    acceptance_probability,
    count_attack_edges,
    sybil_identities_vs_compromised,
)

__all__ = [
    "AnonymityParameters",
    "AnonymityResult",
    "attack_probability_vs_compromised",
    "end_to_end_attack_probability",
    "ALL_FEATURES",
    "STRUCTURE_FEATURES",
    "LogisticPredictor",
    "PredictionDataset",
    "auc_score",
    "build_link_prediction_dataset",
    "build_reciprocity_dataset",
    "compare_predictors",
    "pair_features",
    "SybilDefenseResult",
    "SybilLimitParameters",
    "acceptance_probability",
    "count_attack_edges",
    "sybil_identities_vs_compromised",
]
