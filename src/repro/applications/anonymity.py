"""Social-network-based anonymous communication (Figure 19b).

Drac-style systems select relay proxies by performing a random walk over the
social network.  For low-latency traffic, anonymity is broken when both the
first and the last relay of a circuit are compromised (end-to-end timing
analysis).  The paper's experiment compromises nodes uniformly at random
(with the same degree bound of 100 used in the Sybil experiment) and reports
the probability that a random-walk-built circuit has compromised first and
last hops, comparing the real Google+ topology against model-generated ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Sequence, Set, Union

import numpy as np

from ..algorithms.random_walk import (
    batched_walk_ids,
    capped_undirected_adjacency,
    capped_undirected_csr,
    random_walk,
)
from ..engine import dispatchable, kernel
from ..graph.frozen import FrozenSAN, sorted_membership
from ..graph.san import SAN
from ..utils.rng import RngLike, ensure_rng

Node = Hashable
SANLike = Union[SAN, FrozenSAN]


@dataclass(frozen=True)
class AnonymityParameters:
    """Parameters of the timing-analysis experiment."""

    circuit_length: int = 3      # number of relays in a circuit
    degree_bound: int = 100      # effective node degree cap
    num_circuits: int = 2000     # Monte-Carlo circuits per compromise level


@dataclass
class AnonymityResult:
    """Outcome of one compromise level."""

    num_compromised: int
    attack_probability: float


@dispatchable("anonymity.end_to_end_attack_probability")
def end_to_end_attack_probability(
    san: SANLike,
    compromised: Set[Node],
    params: AnonymityParameters = AnonymityParameters(),
    rng: RngLike = None,
) -> float:
    """Monte-Carlo probability that a circuit's first and last relays are compromised.

    Circuits are built by a random walk of ``circuit_length`` hops starting at
    a uniformly random honest initiator; the first relay is the first hop and
    the last relay the final hop of the walk.
    """
    generator = ensure_rng(rng)
    adjacency = capped_undirected_adjacency(
        san.social, degree_cap=params.degree_bound, rng=generator
    )
    nodes = [node for node in adjacency if node not in compromised]
    if not nodes:
        return 0.0
    attacks = 0
    built = 0
    for _ in range(params.num_circuits):
        initiator = nodes[generator.randrange(len(nodes))]
        path = random_walk(adjacency, initiator, params.circuit_length, rng=generator)
        if len(path) < params.circuit_length + 1:
            continue
        built += 1
        first_relay = path[1]
        last_relay = path[-1]
        if first_relay in compromised and last_relay in compromised:
            attacks += 1
    if built == 0:
        return 0.0
    return attacks / built


@kernel("anonymity.end_to_end_attack_probability")
def _end_to_end_attack_probability_frozen(
    san: FrozenSAN,
    compromised: Set[Node],
    params: AnonymityParameters = AnonymityParameters(),
    rng: RngLike = None,
) -> float:
    """All Monte-Carlo circuits advance together as one batched walk."""
    generator = ensure_rng(rng)
    indptr, indices = capped_undirected_csr(
        san.social, degree_cap=params.degree_bound, rng=generator
    )
    compromised_ids = np.array(
        sorted(
            san.social.index_of(node)
            for node in compromised
            if san.social.has_node(node)
        ),
        dtype=np.int64,
    )
    num_nodes = san.social.number_of_nodes()
    honest = np.setdiff1d(
        np.arange(num_nodes, dtype=np.int64), compromised_ids, assume_unique=True
    )
    if honest.size == 0:
        return 0.0
    np_rng = np.random.default_rng(generator.getrandbits(64))
    initiators = honest[np_rng.integers(0, honest.size, size=params.num_circuits)]
    paths = batched_walk_ids(
        indptr, indices, initiators, params.circuit_length, np_rng
    )
    complete = paths[:, -1] >= 0  # circuits that survived every hop
    if not np.any(complete):
        return 0.0
    first_relays = paths[complete, 1]
    last_relays = paths[complete, -1]
    attacks = sorted_membership(compromised_ids, first_relays) & sorted_membership(
        compromised_ids, last_relays
    )
    return float(np.count_nonzero(attacks) / int(np.count_nonzero(complete)))


def attack_probability_vs_compromised(
    san: SANLike,
    compromised_counts: Sequence[int],
    params: AnonymityParameters = AnonymityParameters(),
    rng: RngLike = None,
) -> List[AnonymityResult]:
    """The Figure 19b experiment: timing-analysis probability per compromise level."""
    generator = ensure_rng(rng)
    nodes = list(san.social_nodes())
    results: List[AnonymityResult] = []
    for count in compromised_counts:
        actual = min(count, len(nodes))
        compromised = set(generator.sample(nodes, actual)) if actual else set()
        probability = end_to_end_attack_probability(
            san, compromised, params=params, rng=generator
        )
        results.append(AnonymityResult(num_compromised=actual, attack_probability=probability))
    return results
