"""SybilLimit-style Sybil-defense simulation (Figure 19a).

SybilLimit (Yu et al., S&P 2008) lets honest nodes accept other identities via
intersections of short random routes; the number of Sybil identities an
adversary can get accepted is bounded by ``O(log n)`` per *attack edge* (an
edge between a compromised honest node and the rest of the honest region).

The paper uses SybilLimit purely as a topology-sensitive application metric:
compromise ``c`` nodes uniformly at random (respecting a degree bound of 100),
count the attack edges ``g`` this creates, and report the number of Sybil
identities ``g * w`` the adversary can insert, where ``w`` is the random-route
length parameter (set to 10).  The comparison is then between the values this
yields on the real Google+ topology and on synthetic topologies from the
generative models.

This module implements that experiment faithfully — including the degree cap —
plus the random-route machinery itself (so the acceptance bound can also be
exercised directly in tests).

Both experiment drivers dispatch through the :mod:`repro.engine` registry: on
a frozen SAN the degree-capped topology is a capped CSR, the attack-edge
count per compromise level is one gather + sorted-membership pass over the
compromised rows, and the random routes of the acceptance experiment advance
as one batched vectorized walk instead of one Python walk per route.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..algorithms.random_walk import (
    batched_walk_ids,
    capped_undirected_adjacency,
    capped_undirected_csr,
    random_walk,
)
from ..engine import dispatchable, kernel
from ..graph.frozen import FrozenSAN, gather_rows, sorted_membership
from ..graph.san import SAN
from ..utils.rng import RngLike, ensure_rng

Node = Hashable
SANLike = Union[SAN, FrozenSAN]


@dataclass(frozen=True)
class SybilLimitParameters:
    """Parameters of the SybilLimit experiment (paper defaults)."""

    walk_length: int = 10          # the paper's w
    degree_bound: int = 100        # effective node degree cap
    sybils_per_attack_edge: Optional[float] = None
    # ``None`` means use walk_length (SybilLimit admits ~w Sybils per attack edge).

    @property
    def sybil_bound_per_edge(self) -> float:
        return (
            self.sybils_per_attack_edge
            if self.sybils_per_attack_edge is not None
            else float(self.walk_length)
        )


@dataclass
class SybilDefenseResult:
    """Outcome of one compromise level."""

    num_compromised: int
    num_attack_edges: int
    num_sybil_identities: float


def count_attack_edges(
    adjacency: Dict[Node, List[Node]], compromised: Set[Node]
) -> int:
    """Number of (undirected) edges between compromised and honest nodes."""
    attack_edges = 0
    for node in compromised:
        for neighbor in adjacency.get(node, ()):  # capped adjacency
            if neighbor not in compromised:
                attack_edges += 1
    return attack_edges


@dispatchable("sybil.identities_vs_compromised")
def sybil_identities_vs_compromised(
    san: SANLike,
    compromised_counts: Sequence[int],
    params: SybilLimitParameters = SybilLimitParameters(),
    rng: RngLike = None,
) -> List[SybilDefenseResult]:
    """The Figure 19a experiment on one SAN.

    For each compromise level, nodes are compromised uniformly at random, the
    attack edges are counted on the degree-capped topology, and the number of
    acceptable Sybil identities is ``attack_edges * w``.
    """
    generator = ensure_rng(rng)
    adjacency = capped_undirected_adjacency(
        san.social, degree_cap=params.degree_bound, rng=generator
    )
    nodes = list(adjacency)
    results: List[SybilDefenseResult] = []
    for count in compromised_counts:
        actual = min(count, len(nodes))
        compromised = set(generator.sample(nodes, actual)) if actual else set()
        attack_edges = count_attack_edges(adjacency, compromised)
        results.append(
            SybilDefenseResult(
                num_compromised=actual,
                num_attack_edges=attack_edges,
                num_sybil_identities=attack_edges * params.sybil_bound_per_edge,
            )
        )
    return results


@kernel("sybil.identities_vs_compromised")
def _sybil_identities_frozen(
    san: FrozenSAN,
    compromised_counts: Sequence[int],
    params: SybilLimitParameters = SybilLimitParameters(),
    rng: RngLike = None,
) -> List[SybilDefenseResult]:
    generator = ensure_rng(rng)
    indptr, indices = capped_undirected_csr(
        san.social, degree_cap=params.degree_bound, rng=generator
    )
    labels = san.social.labels()
    num_nodes = len(labels)
    results: List[SybilDefenseResult] = []
    for count in compromised_counts:
        actual = min(count, num_nodes)
        if actual:
            compromised_ids = np.array(
                sorted(generator.sample(range(num_nodes), actual)), dtype=np.int64
            )
            # Attack edges from the compromised side: gather the capped rows
            # of every compromised node and count neighbors outside the set.
            neighbors, _ = gather_rows(indptr, indices, compromised_ids)
            internal = sorted_membership(compromised_ids, neighbors)
            attack_edges = int(neighbors.size - np.count_nonzero(internal))
        else:
            attack_edges = 0
        results.append(
            SybilDefenseResult(
                num_compromised=actual,
                num_attack_edges=attack_edges,
                num_sybil_identities=attack_edges * params.sybil_bound_per_edge,
            )
        )
    return results


def random_route_tails(
    adjacency: Dict[Node, List[Node]],
    node: Node,
    num_routes: int,
    walk_length: int,
    rng: RngLike = None,
) -> List[Tuple[Node, Node]]:
    """Tails (last edge) of ``num_routes`` random routes from ``node``.

    SybilLimit verifiers and suspects exchange route tails and accept when the
    tails intersect; we approximate random routes by independent random walks,
    which preserves the statistical behaviour the benchmark depends on.
    """
    generator = ensure_rng(rng)
    tails: List[Tuple[Node, Node]] = []
    for _ in range(num_routes):
        path = random_walk(adjacency, node, walk_length, rng=generator)
        if len(path) >= 2:
            tails.append((path[-2], path[-1]))
    return tails


@dispatchable("sybil.acceptance_probability")
def acceptance_probability(
    san: SANLike,
    verifier: Node,
    suspect: Node,
    params: SybilLimitParameters = SybilLimitParameters(),
    num_routes: Optional[int] = None,
    rng: RngLike = None,
) -> float:
    """Estimated probability that a verifier accepts a suspect via tail intersection.

    ``num_routes`` defaults to ``sqrt(|E|)`` (the SybilLimit guideline).  This
    is used by tests to confirm the protocol machinery behaves sensibly (honest
    suspects in the same region are almost always accepted).
    """
    generator = ensure_rng(rng)
    adjacency = capped_undirected_adjacency(
        san.social, degree_cap=params.degree_bound, rng=generator
    )
    num_edges = sum(len(neighbors) for neighbors in adjacency.values()) // 2
    routes = num_routes if num_routes is not None else max(4, int(math.sqrt(max(num_edges, 1))))
    verifier_tails = set(
        random_route_tails(adjacency, verifier, routes, params.walk_length, rng=generator)
    )
    if not verifier_tails:
        return 0.0
    suspect_tails = random_route_tails(
        adjacency, suspect, routes, params.walk_length, rng=generator
    )
    if not suspect_tails:
        return 0.0
    intersections = sum(
        1 for tail in suspect_tails if tail in verifier_tails or tail[::-1] in verifier_tails
    )
    return intersections / len(suspect_tails)


@kernel("sybil.acceptance_probability")
def _acceptance_probability_frozen(
    san: FrozenSAN,
    verifier: Node,
    suspect: Node,
    params: SybilLimitParameters = SybilLimitParameters(),
    num_routes: Optional[int] = None,
    rng: RngLike = None,
) -> float:
    generator = ensure_rng(rng)
    indptr, indices = capped_undirected_csr(
        san.social, degree_cap=params.degree_bound, rng=generator
    )
    num_edges = int(indices.size) // 2
    routes = num_routes if num_routes is not None else max(4, int(math.sqrt(max(num_edges, 1))))
    np_rng = np.random.default_rng(generator.getrandbits(64))

    def tails_of(node: Node) -> List[Tuple[int, int]]:
        start_ids = np.full(routes, san.social.index_of(node), dtype=np.int64)
        paths = batched_walk_ids(indptr, indices, start_ids, params.walk_length, np_rng)
        # A route contributes its last edge only if it survived >= 1 step.
        tails: List[Tuple[int, int]] = []
        for row in paths:
            walk = row[row >= 0]
            if walk.size >= 2:
                tails.append((int(walk[-2]), int(walk[-1])))
        return tails

    verifier_tails = set(tails_of(verifier))
    if not verifier_tails:
        return 0.0
    suspect_tails = tails_of(suspect)
    if not suspect_tails:
        return 0.0
    intersections = sum(
        1
        for tail in suspect_tails
        if tail in verifier_tails or tail[::-1] in verifier_tails
    )
    return intersections / len(suspect_tails)
