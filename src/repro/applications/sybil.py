"""SybilLimit-style Sybil-defense simulation (Figure 19a).

SybilLimit (Yu et al., S&P 2008) lets honest nodes accept other identities via
intersections of short random routes; the number of Sybil identities an
adversary can get accepted is bounded by ``O(log n)`` per *attack edge* (an
edge between a compromised honest node and the rest of the honest region).

The paper uses SybilLimit purely as a topology-sensitive application metric:
compromise ``c`` nodes uniformly at random (respecting a degree bound of 100),
count the attack edges ``g`` this creates, and report the number of Sybil
identities ``g * w`` the adversary can insert, where ``w`` is the random-route
length parameter (set to 10).  The comparison is then between the values this
yields on the real Google+ topology and on synthetic topologies from the
generative models.

This module implements that experiment faithfully — including the degree cap —
plus the random-route machinery itself (so the acceptance bound can also be
exercised directly in tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from ..algorithms.random_walk import capped_undirected_adjacency, random_walk
from ..graph.san import SAN
from ..utils.rng import RngLike, ensure_rng

Node = Hashable


@dataclass(frozen=True)
class SybilLimitParameters:
    """Parameters of the SybilLimit experiment (paper defaults)."""

    walk_length: int = 10          # the paper's w
    degree_bound: int = 100        # effective node degree cap
    sybils_per_attack_edge: Optional[float] = None
    # ``None`` means use walk_length (SybilLimit admits ~w Sybils per attack edge).

    @property
    def sybil_bound_per_edge(self) -> float:
        return (
            self.sybils_per_attack_edge
            if self.sybils_per_attack_edge is not None
            else float(self.walk_length)
        )


@dataclass
class SybilDefenseResult:
    """Outcome of one compromise level."""

    num_compromised: int
    num_attack_edges: int
    num_sybil_identities: float


def count_attack_edges(
    adjacency: Dict[Node, List[Node]], compromised: Set[Node]
) -> int:
    """Number of (undirected) edges between compromised and honest nodes."""
    attack_edges = 0
    for node in compromised:
        for neighbor in adjacency.get(node, ()):  # capped adjacency
            if neighbor not in compromised:
                attack_edges += 1
    return attack_edges


def sybil_identities_vs_compromised(
    san: SAN,
    compromised_counts: Sequence[int],
    params: SybilLimitParameters = SybilLimitParameters(),
    rng: RngLike = None,
) -> List[SybilDefenseResult]:
    """The Figure 19a experiment on one SAN.

    For each compromise level, nodes are compromised uniformly at random, the
    attack edges are counted on the degree-capped topology, and the number of
    acceptable Sybil identities is ``attack_edges * w``.
    """
    generator = ensure_rng(rng)
    adjacency = capped_undirected_adjacency(
        san.social, degree_cap=params.degree_bound, rng=generator
    )
    nodes = list(adjacency)
    results: List[SybilDefenseResult] = []
    for count in compromised_counts:
        actual = min(count, len(nodes))
        compromised = set(generator.sample(nodes, actual)) if actual else set()
        attack_edges = count_attack_edges(adjacency, compromised)
        results.append(
            SybilDefenseResult(
                num_compromised=actual,
                num_attack_edges=attack_edges,
                num_sybil_identities=attack_edges * params.sybil_bound_per_edge,
            )
        )
    return results


def random_route_tails(
    adjacency: Dict[Node, List[Node]],
    node: Node,
    num_routes: int,
    walk_length: int,
    rng: RngLike = None,
) -> List[Tuple[Node, Node]]:
    """Tails (last edge) of ``num_routes`` random routes from ``node``.

    SybilLimit verifiers and suspects exchange route tails and accept when the
    tails intersect; we approximate random routes by independent random walks,
    which preserves the statistical behaviour the benchmark depends on.
    """
    generator = ensure_rng(rng)
    tails: List[Tuple[Node, Node]] = []
    for _ in range(num_routes):
        path = random_walk(adjacency, node, walk_length, rng=generator)
        if len(path) >= 2:
            tails.append((path[-2], path[-1]))
    return tails


def acceptance_probability(
    san: SAN,
    verifier: Node,
    suspect: Node,
    params: SybilLimitParameters = SybilLimitParameters(),
    num_routes: Optional[int] = None,
    rng: RngLike = None,
) -> float:
    """Estimated probability that a verifier accepts a suspect via tail intersection.

    ``num_routes`` defaults to ``sqrt(|E|)`` (the SybilLimit guideline).  This
    is used by tests to confirm the protocol machinery behaves sensibly (honest
    suspects in the same region are almost always accepted).
    """
    generator = ensure_rng(rng)
    adjacency = capped_undirected_adjacency(
        san.social, degree_cap=params.degree_bound, rng=generator
    )
    num_edges = sum(len(neighbors) for neighbors in adjacency.values()) // 2
    routes = num_routes if num_routes is not None else max(4, int(math.sqrt(max(num_edges, 1))))
    verifier_tails = set(
        random_route_tails(adjacency, verifier, routes, params.walk_length, rng=generator)
    )
    if not verifier_tails:
        return 0.0
    suspect_tails = random_route_tails(
        adjacency, suspect, routes, params.walk_length, rng=generator
    )
    if not suspect_tails:
        return 0.0
    intersections = sum(
        1 for tail in suspect_tails if tail in verifier_tails or tail[::-1] in verifier_tails
    )
    return intersections / len(suspect_tails)
