"""Discrete heavy-tailed distributions used to fit degree data.

The paper fits degree distributions against power-law, discrete lognormal and
power-law-with-cutoff candidates (using the Clauset-Shalizi-Newman framework)
and reports that Google+ social degrees are best modeled by a *discrete
lognormal* while the social degree of attribute nodes is best modeled by a
*power law*.  This module provides the candidate families: normalised pmfs on
``{xmin, xmin+1, ...}``, log-pmfs, sampling, and moments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

#: Truncation point used to normalise discrete distributions numerically.  The
#: tail mass beyond this support is negligible for every fit the library runs.
DEFAULT_SUPPORT_MAX = 10 ** 6


def _support(xmin: int, support_max: int) -> np.ndarray:
    if xmin < 1:
        raise ValueError(f"xmin must be >= 1, got {xmin}")
    return np.arange(xmin, max(xmin + 1, support_max) + 1, dtype=float)


#: xmin -> read-only ``log(arange(xmin, xmin + n))`` array, grown on demand.
#: The discrete-lognormal normaliser evaluates ``log k`` over tens of
#: thousands of support points *per golden-section iterate*; the values only
#: ever depend on (xmin, length), so one shared array serves every fit.
#: Slicing a prefix is bit-exact with recomputing: ``np.log`` is elementwise.
_SUPPORT_LOG_CACHE: Dict[int, np.ndarray] = {}


def _support_logs(xmin: int, count: int) -> np.ndarray:
    cached = _SUPPORT_LOG_CACHE.get(xmin)
    if cached is None or cached.size < count:
        size = count if cached is None else max(count, 2 * cached.size)
        grown = np.log(np.arange(xmin, xmin + size, dtype=float))
        grown.setflags(write=False)
        _SUPPORT_LOG_CACHE[xmin] = grown
        cached = grown
    return cached[:count]


@dataclass(frozen=True)
class PowerLaw:
    """Discrete power law ``p(k) ∝ k^(-alpha)`` for ``k >= xmin``."""

    alpha: float
    xmin: int = 1

    def _normaliser(self, support_max: int = DEFAULT_SUPPORT_MAX) -> float:
        # Hurwitz zeta via direct summation with an integral tail correction.
        ks = np.arange(self.xmin, 100000, dtype=float)
        head = np.sum(ks ** -self.alpha)
        if self.alpha > 1:
            tail = (100000.0 ** (1 - self.alpha)) / (self.alpha - 1)
        else:
            tail = 0.0
        return float(head + tail)

    def log_pmf(self, values: Sequence[int]) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        if np.any(values < self.xmin):
            raise ValueError("all values must be >= xmin")
        return -self.alpha * np.log(values) - math.log(self._normaliser())

    def pmf(self, values: Sequence[int]) -> np.ndarray:
        return np.exp(self.log_pmf(values))

    def sample(self, size: int, rng: np.random.Generator, table_size: int = 100000) -> np.ndarray:
        """Exact inverse-CDF sampling over a finite table, continuous tail beyond it.

        The head (``k <= table_size``) is sampled from the exact discrete CDF;
        the residual tail mass uses the standard continuous approximation,
        which is accurate there because the discreteness correction vanishes
        for large ``k``.
        """
        ks = np.arange(self.xmin, table_size + 1, dtype=float)
        pmf = ks ** -self.alpha
        pmf /= self._normaliser()
        cdf = np.cumsum(pmf)
        head_mass = float(cdf[-1])
        uniforms = rng.random(size)
        samples = np.empty(size, dtype=int)
        in_head = uniforms < head_mass
        samples[in_head] = self.xmin + np.searchsorted(cdf, uniforms[in_head])
        num_tail = int(np.sum(~in_head))
        if num_tail:
            tail_uniforms = rng.random(num_tail)
            continuous = (table_size + 0.5) * (1 - tail_uniforms) ** (-1 / (self.alpha - 1))
            samples[~in_head] = np.floor(continuous + 0.5).astype(int)
        return samples

    @property
    def name(self) -> str:
        return "power_law"

    def parameters(self) -> Dict[str, float]:
        return {"alpha": self.alpha, "xmin": self.xmin}


@dataclass(frozen=True)
class DiscreteLognormal:
    """Discrete lognormal ``p(k) ∝ (1/k) exp(-(ln k - mu)^2 / (2 sigma^2))``.

    This is the DGX-style parameterisation the paper cites (Bi, Faloutsos,
    Korn) for ``k >= xmin``.
    """

    mu: float
    sigma: float
    xmin: int = 1

    def _log_weights_from_logs(self, logs: np.ndarray) -> np.ndarray:
        return -logs - (logs - self.mu) ** 2 / (2 * self.sigma ** 2)

    def _log_weights(self, values: np.ndarray) -> np.ndarray:
        return self._log_weights_from_logs(np.log(values))

    def _log_normaliser(self, support_max: int = DEFAULT_SUPPORT_MAX) -> float:
        # Sum over a generous support; weights decay fast enough in k.  The
        # support logs come from the shared prefix cache (bit-identical to
        # recomputing them) since this runs once per optimiser iterate.
        cutoff = min(support_max, max(1000, int(math.exp(self.mu + 8 * self.sigma))))
        logs = _support_logs(self.xmin, cutoff - self.xmin + 1)
        log_weights = self._log_weights_from_logs(logs)
        peak = float(np.max(log_weights))
        return peak + math.log(float(np.sum(np.exp(log_weights - peak))))

    def log_pmf(self, values: Sequence[int]) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        if np.any(values < self.xmin):
            raise ValueError("all values must be >= xmin")
        return self._log_weights(values) - self._log_normaliser()

    def pmf(self, values: Sequence[int]) -> np.ndarray:
        return np.exp(self.log_pmf(values))

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Sample by rounding continuous lognormal draws, rejecting below xmin."""
        result = np.empty(size, dtype=int)
        filled = 0
        while filled < size:
            draws = rng.lognormal(self.mu, self.sigma, size=size - filled)
            discrete = np.maximum(1, np.round(draws)).astype(int)
            accepted = discrete[discrete >= self.xmin]
            count = min(len(accepted), size - filled)
            result[filled : filled + count] = accepted[:count]
            filled += count
        return result

    @property
    def name(self) -> str:
        return "lognormal"

    def parameters(self) -> Dict[str, float]:
        return {"mu": self.mu, "sigma": self.sigma, "xmin": self.xmin}


@dataclass(frozen=True)
class PowerLawWithCutoff:
    """Power law with exponential cutoff ``p(k) ∝ k^(-alpha) e^(-lambda k)``."""

    alpha: float
    cutoff_rate: float
    xmin: int = 1

    def _log_weights(self, values: np.ndarray) -> np.ndarray:
        return -self.alpha * np.log(values) - self.cutoff_rate * values

    def _log_normaliser(self) -> float:
        cutoff = max(1000, int(20 / max(self.cutoff_rate, 1e-6)))
        cutoff = min(cutoff, DEFAULT_SUPPORT_MAX)
        ks = np.arange(self.xmin, cutoff + 1, dtype=float)
        log_weights = self._log_weights(ks)
        peak = float(np.max(log_weights))
        return peak + math.log(float(np.sum(np.exp(log_weights - peak))))

    def log_pmf(self, values: Sequence[int]) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        if np.any(values < self.xmin):
            raise ValueError("all values must be >= xmin")
        return self._log_weights(values) - self._log_normaliser()

    def pmf(self, values: Sequence[int]) -> np.ndarray:
        return np.exp(self.log_pmf(values))

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Rejection-sample from the pure power law with acceptance e^(-lambda k)."""
        base = PowerLaw(alpha=self.alpha, xmin=self.xmin)
        result = np.empty(size, dtype=int)
        filled = 0
        while filled < size:
            candidates = base.sample(size - filled, rng)
            accept = rng.random(len(candidates)) < np.exp(
                -self.cutoff_rate * (candidates - self.xmin)
            )
            accepted = candidates[accept]
            count = min(len(accepted), size - filled)
            result[filled : filled + count] = accepted[:count]
            filled += count
        return result

    @property
    def name(self) -> str:
        return "power_law_with_cutoff"

    def parameters(self) -> Dict[str, float]:
        return {"alpha": self.alpha, "cutoff_rate": self.cutoff_rate, "xmin": self.xmin}


@dataclass(frozen=True)
class DiscreteExponential:
    """Geometric-style exponential ``p(k) ∝ e^(-lambda k)`` for ``k >= xmin``."""

    rate: float
    xmin: int = 1

    def log_pmf(self, values: Sequence[int]) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        if np.any(values < self.xmin):
            raise ValueError("all values must be >= xmin")
        # Geometric series normaliser: sum_{k>=xmin} e^(-rate k)
        log_norm = -self.rate * self.xmin - math.log1p(-math.exp(-self.rate))
        return -self.rate * values - log_norm

    def pmf(self, values: Sequence[int]) -> np.ndarray:
        return np.exp(self.log_pmf(values))

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        geometric = rng.geometric(p=1 - math.exp(-self.rate), size=size)
        return geometric + self.xmin - 1

    @property
    def name(self) -> str:
        return "exponential"

    def parameters(self) -> Dict[str, float]:
        return {"rate": self.rate, "xmin": self.xmin}


def truncated_normal_mean_variance(mu: float, sigma: float) -> tuple:
    """Mean and variance of a normal truncated to ``[0, inf)``.

    Used by Theorem 1: with ``gamma = -mu/sigma``, ``g(gamma) = phi / (1-Phi)``
    and ``delta = g (g - gamma)``, the truncated mean is ``mu + sigma g`` and
    the variance ``sigma^2 (1 - delta)``.
    """
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    gamma = -mu / sigma
    phi = math.exp(-gamma * gamma / 2) / math.sqrt(2 * math.pi)
    capital_phi = 0.5 * (1 + math.erf(gamma / math.sqrt(2)))
    survival = 1 - capital_phi
    if survival <= 0:
        return mu, sigma ** 2
    g = phi / survival
    delta = g * (g - gamma)
    return mu + sigma * g, sigma ** 2 * (1 - delta)
