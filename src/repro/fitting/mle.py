"""Maximum-likelihood fits for the candidate degree distributions.

Each ``fit_*`` function takes an integer sample (degrees >= xmin are used, the
rest discarded) and returns the fitted distribution object together with its
log-likelihood so the model-selection layer can compare candidates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .distributions import (
    DiscreteExponential,
    DiscreteLognormal,
    PowerLaw,
    PowerLawWithCutoff,
)


@dataclass(frozen=True)
class FitResult:
    """A fitted distribution plus the log-likelihood it achieves on the data."""

    distribution: object
    log_likelihood: float
    num_samples: int

    @property
    def name(self) -> str:
        return self.distribution.name

    def parameters(self) -> Dict[str, float]:
        return self.distribution.parameters()

    @property
    def aic(self) -> float:
        """Akaike information criterion (2k - 2 lnL) with k free parameters."""
        num_parameters = len(self.distribution.parameters()) - 1  # xmin is fixed
        return 2 * num_parameters - 2 * self.log_likelihood


def _clean(values: Sequence[int], xmin: int) -> np.ndarray:
    data = np.asarray([int(v) for v in values if v >= xmin], dtype=int)
    if data.size == 0:
        raise ValueError(f"no samples >= xmin={xmin}")
    return data


def fit_power_law(values: Sequence[int], xmin: int = 1) -> FitResult:
    """MLE power-law exponent via the discrete Clauset-Shalizi-Newman estimator.

    Uses the standard approximation ``alpha = 1 + n / sum(ln(k / (xmin - 0.5)))``
    followed by a golden-section refinement of the exact discrete likelihood.
    """
    data = _clean(values, xmin)
    shifted = np.log(data / (xmin - 0.5))
    total = float(np.sum(shifted))
    if total <= 0:
        alpha_hat = 3.5
    else:
        alpha_hat = 1.0 + data.size / total
    alpha_hat = min(max(alpha_hat, 1.01), 6.0)

    def negative_log_likelihood(alpha: float) -> float:
        dist = PowerLaw(alpha=alpha, xmin=xmin)
        return -float(np.sum(dist.log_pmf(data)))

    alpha_best = _golden_section(
        negative_log_likelihood, max(1.01, alpha_hat - 0.75), min(6.0, alpha_hat + 0.75)
    )
    distribution = PowerLaw(alpha=alpha_best, xmin=xmin)
    log_likelihood = float(np.sum(distribution.log_pmf(data)))
    return FitResult(distribution, log_likelihood, data.size)


def fit_lognormal(values: Sequence[int], xmin: int = 1) -> FitResult:
    """MLE fit of the discrete lognormal (mu, sigma).

    Initialised at the moments of ``ln k`` and refined by coordinate-wise
    golden-section search on the exact discrete likelihood.
    """
    data = _clean(values, xmin)
    logs = np.log(data)
    mu_hat = float(np.mean(logs))
    sigma_hat = float(np.std(logs))
    sigma_hat = max(sigma_hat, 0.05)

    def negative_log_likelihood(mu: float, sigma: float) -> float:
        dist = DiscreteLognormal(mu=mu, sigma=sigma, xmin=xmin)
        return -float(np.sum(dist.log_pmf(data)))

    mu_best, sigma_best = mu_hat, sigma_hat
    for _ in range(3):
        mu_best = _golden_section(
            lambda m: negative_log_likelihood(m, sigma_best),
            mu_best - 1.5,
            mu_best + 1.5,
        )
        sigma_best = _golden_section(
            lambda s: negative_log_likelihood(mu_best, s),
            max(0.05, sigma_best * 0.4),
            sigma_best * 2.5 + 0.1,
        )
    distribution = DiscreteLognormal(mu=mu_best, sigma=sigma_best, xmin=xmin)
    log_likelihood = float(np.sum(distribution.log_pmf(data)))
    return FitResult(distribution, log_likelihood, data.size)


def fit_power_law_with_cutoff(values: Sequence[int], xmin: int = 1) -> FitResult:
    """MLE fit of the power law with exponential cutoff (alpha, lambda)."""
    data = _clean(values, xmin)
    initial_alpha = fit_power_law(data, xmin=xmin).distribution.alpha
    initial_rate = 1.0 / max(float(np.mean(data)), 1.0)

    def negative_log_likelihood(alpha: float, rate: float) -> float:
        dist = PowerLawWithCutoff(alpha=alpha, cutoff_rate=rate, xmin=xmin)
        return -float(np.sum(dist.log_pmf(data)))

    alpha_best, rate_best = initial_alpha, initial_rate
    for _ in range(5):
        alpha_best = _golden_section(
            lambda a: negative_log_likelihood(a, rate_best),
            max(0.05, alpha_best - 1.0),
            alpha_best + 1.0,
        )
        rate_best = _golden_section(
            lambda r: negative_log_likelihood(alpha_best, r),
            1e-7,
            rate_best * 10 + 1e-4,
        )
    # The pure power law is the rate -> 0 limit; never report a worse fit than it.
    candidates = [(alpha_best, rate_best), (initial_alpha, 1e-7)]
    best = min(candidates, key=lambda pair: negative_log_likelihood(*pair))
    distribution = PowerLawWithCutoff(alpha=best[0], cutoff_rate=best[1], xmin=xmin)
    log_likelihood = float(np.sum(distribution.log_pmf(data)))
    return FitResult(distribution, log_likelihood, data.size)


def fit_exponential(values: Sequence[int], xmin: int = 1) -> FitResult:
    """MLE fit of the discrete exponential distribution."""
    data = _clean(values, xmin)
    mean_excess = float(np.mean(data)) - xmin + 1.0
    rate_hat = math.log(1 + 1 / max(mean_excess, 1e-9))

    def negative_log_likelihood(rate: float) -> float:
        dist = DiscreteExponential(rate=rate, xmin=xmin)
        return -float(np.sum(dist.log_pmf(data)))

    rate_best = _golden_section(
        negative_log_likelihood, max(1e-6, rate_hat * 0.2), rate_hat * 5 + 1e-3
    )
    distribution = DiscreteExponential(rate=rate_best, xmin=xmin)
    log_likelihood = float(np.sum(distribution.log_pmf(data)))
    return FitResult(distribution, log_likelihood, data.size)


def fit_lognormal_parameters_over_time(
    degree_sequences: Sequence[Tuple[int, Sequence[int]]], xmin: int = 1
) -> List[Tuple[int, float, float]]:
    """Fit a lognormal per snapshot, returning ``(day, mu, sigma)`` (Figures 6 / 11a)."""
    series = []
    for day, degrees in degree_sequences:
        positive = [d for d in degrees if d >= xmin]
        if len(positive) < 10:
            continue
        fit = fit_lognormal(positive, xmin=xmin)
        series.append((day, fit.distribution.mu, fit.distribution.sigma))
    return series


def fit_power_law_exponent_over_time(
    degree_sequences: Sequence[Tuple[int, Sequence[int]]], xmin: int = 1
) -> List[Tuple[int, float]]:
    """Fit a power law per snapshot, returning ``(day, alpha)`` (Figure 11b)."""
    series = []
    for day, degrees in degree_sequences:
        positive = [d for d in degrees if d >= xmin]
        if len(positive) < 10:
            continue
        fit = fit_power_law(positive, xmin=xmin)
        series.append((day, fit.distribution.alpha))
    return series


def _golden_section(objective, low: float, high: float, tolerance: float = 1e-4) -> float:
    """Minimise a unimodal 1-D objective on [low, high] by golden-section search."""
    if high <= low:
        return low
    inverse_phi = (math.sqrt(5) - 1) / 2
    left = high - inverse_phi * (high - low)
    right = low + inverse_phi * (high - low)
    value_left = objective(left)
    value_right = objective(right)
    for _ in range(200):
        if high - low < tolerance:
            break
        if value_left < value_right:
            high, right, value_right = right, left, value_left
            left = high - inverse_phi * (high - low)
            value_left = objective(left)
        else:
            low, left, value_left = left, right, value_right
            right = low + inverse_phi * (high - low)
            value_right = objective(right)
    return (low + high) / 2
