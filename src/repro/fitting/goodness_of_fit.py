"""Goodness-of-fit and model-comparison statistics.

Provides the Kolmogorov-Smirnov distance between an empirical sample and a
fitted discrete distribution, a parametric-bootstrap p-value in the style of
Clauset-Shalizi-Newman, and the Vuong-corrected log-likelihood-ratio test used
to compare two candidate distributions on the same data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np


def empirical_cdf(values: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
    """Support points and empirical CDF values for an integer sample."""
    data = np.sort(np.asarray(values, dtype=float))
    unique, counts = np.unique(data, return_counts=True)
    cumulative = np.cumsum(counts) / data.size
    return unique, cumulative


def ks_statistic(values: Sequence[int], distribution) -> float:
    """Kolmogorov-Smirnov distance between the sample and a fitted distribution.

    The model CDF is evaluated by summing the pmf from ``xmin`` to the largest
    observed value, which is exact for the discrete families in this package.
    """
    data = np.asarray([int(v) for v in values if v >= distribution.xmin], dtype=int)
    if data.size == 0:
        raise ValueError("no samples at or above the distribution's xmin")
    support_points, empirical = empirical_cdf(data)
    max_value = int(support_points[-1])
    ks = np.arange(distribution.xmin, max_value + 1)
    model_pmf = distribution.pmf(ks)
    model_cdf = np.cumsum(model_pmf)
    model_at_points = model_cdf[(support_points - distribution.xmin).astype(int)]
    return float(np.max(np.abs(empirical - model_at_points)))


@dataclass(frozen=True)
class LikelihoodRatioResult:
    """Result of a Vuong log-likelihood-ratio comparison between two fits.

    ``ratio > 0`` favours the first distribution.  ``p_value`` is the two-sided
    significance of the normalised ratio; a large p-value means the data cannot
    distinguish the two candidates.
    """

    ratio: float
    normalised_ratio: float
    p_value: float

    @property
    def favours_first(self) -> bool:
        return self.ratio > 0

    @property
    def significant(self) -> bool:
        return self.p_value < 0.1


def likelihood_ratio_test(
    values: Sequence[int], first_distribution, second_distribution
) -> LikelihoodRatioResult:
    """Vuong-corrected log-likelihood ratio test between two fitted distributions."""
    xmin = max(first_distribution.xmin, second_distribution.xmin)
    data = np.asarray([int(v) for v in values if v >= xmin], dtype=int)
    if data.size == 0:
        raise ValueError("no samples above both xmins")
    first_ll = first_distribution.log_pmf(data)
    second_ll = second_distribution.log_pmf(data)
    pointwise = first_ll - second_ll
    ratio = float(np.sum(pointwise))
    n = data.size
    variance = float(np.var(pointwise))
    if variance <= 0 or n < 2:
        return LikelihoodRatioResult(ratio=ratio, normalised_ratio=0.0, p_value=1.0)
    normalised = ratio / math.sqrt(n * variance)
    p_value = math.erfc(abs(normalised) / math.sqrt(2))
    return LikelihoodRatioResult(ratio=ratio, normalised_ratio=normalised, p_value=p_value)


def bootstrap_p_value(
    values: Sequence[int],
    fit_function,
    num_bootstraps: int = 50,
    rng: Optional[np.random.Generator] = None,
    xmin: int = 1,
) -> float:
    """Parametric-bootstrap goodness-of-fit p-value (Clauset et al. procedure).

    Fit the sample, record its KS distance, then repeatedly (i) sample a
    synthetic dataset of the same size from the fitted model, (ii) refit and
    (iii) record the synthetic KS distance.  The p-value is the fraction of
    synthetic KS distances at least as large as the observed one; small values
    reject the candidate family.
    """
    generator = rng if rng is not None else np.random.default_rng(0)
    data = [int(v) for v in values if v >= xmin]
    observed_fit = fit_function(data, xmin=xmin)
    observed_ks = ks_statistic(data, observed_fit.distribution)
    exceed = 0
    for _ in range(num_bootstraps):
        synthetic = observed_fit.distribution.sample(len(data), generator)
        synthetic_fit = fit_function(synthetic, xmin=xmin)
        synthetic_ks = ks_statistic(synthetic, synthetic_fit.distribution)
        if synthetic_ks >= observed_ks:
            exceed += 1
    return exceed / num_bootstraps
