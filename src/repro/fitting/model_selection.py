"""Best-fit selection among the candidate degree distributions.

Mirrors the paper's use of the Clauset-Shalizi-Newman toolchain: fit each
candidate family by maximum likelihood, then rank by log-likelihood (with the
pairwise Vuong test available for significance statements).  The headline
results in the paper — Google+ social degrees are lognormal, the social degree
of attribute nodes is power-law — correspond to :func:`best_fit` returning the
corresponding family name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .goodness_of_fit import LikelihoodRatioResult, ks_statistic, likelihood_ratio_test
from .mle import (
    FitResult,
    fit_exponential,
    fit_lognormal,
    fit_power_law,
    fit_power_law_with_cutoff,
)

#: The candidate families compared by default (name -> fit function).
DEFAULT_CANDIDATES: Dict[str, Callable[..., FitResult]] = {
    "lognormal": fit_lognormal,
    "power_law": fit_power_law,
    "power_law_with_cutoff": fit_power_law_with_cutoff,
    "exponential": fit_exponential,
}


@dataclass
class ModelComparison:
    """All candidate fits for one sample, ranked by log-likelihood."""

    fits: Dict[str, FitResult] = field(default_factory=dict)
    ks: Dict[str, float] = field(default_factory=dict)

    @property
    def best_name(self) -> str:
        return max(self.fits, key=lambda name: self.fits[name].log_likelihood)

    @property
    def best_fit(self) -> FitResult:
        return self.fits[self.best_name]

    def ranked(self) -> List[str]:
        return sorted(
            self.fits, key=lambda name: self.fits[name].log_likelihood, reverse=True
        )

    def compare(self, values: Sequence[int], first: str, second: str) -> LikelihoodRatioResult:
        return likelihood_ratio_test(
            values, self.fits[first].distribution, self.fits[second].distribution
        )


def compare_distributions(
    values: Sequence[int],
    xmin: int = 1,
    candidates: Optional[Dict[str, Callable[..., FitResult]]] = None,
    compute_ks: bool = True,
) -> ModelComparison:
    """Fit every candidate family to ``values`` and collect the results."""
    chosen = candidates if candidates is not None else DEFAULT_CANDIDATES
    comparison = ModelComparison()
    for name, fit_function in chosen.items():
        try:
            result = fit_function(values, xmin=xmin)
        except (ValueError, FloatingPointError):
            continue
        comparison.fits[name] = result
        if compute_ks:
            try:
                comparison.ks[name] = ks_statistic(values, result.distribution)
            except (ValueError, MemoryError):
                comparison.ks[name] = float("nan")
    if not comparison.fits:
        raise ValueError("no candidate distribution could be fitted to the sample")
    return comparison


def best_fit(values: Sequence[int], xmin: int = 1) -> FitResult:
    """The single best-fitting candidate by log-likelihood."""
    return compare_distributions(values, xmin=xmin, compute_ks=False).best_fit


def best_fit_name(values: Sequence[int], xmin: int = 1) -> str:
    """Name of the best-fitting candidate family ('lognormal', 'power_law', ...)."""
    return compare_distributions(values, xmin=xmin, compute_ks=False).best_name


def lognormal_vs_power_law(values: Sequence[int], xmin: int = 1) -> LikelihoodRatioResult:
    """Direct head-to-head comparison used throughout the degree analyses."""
    lognormal = fit_lognormal(values, xmin=xmin)
    power_law = fit_power_law(values, xmin=xmin)
    return likelihood_ratio_test(values, lognormal.distribution, power_law.distribution)
