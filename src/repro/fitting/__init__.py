"""Degree-distribution fitting: candidate families, MLE, GOF, model selection."""

from .distributions import (
    DiscreteExponential,
    DiscreteLognormal,
    PowerLaw,
    PowerLawWithCutoff,
    truncated_normal_mean_variance,
)
from .goodness_of_fit import (
    LikelihoodRatioResult,
    bootstrap_p_value,
    empirical_cdf,
    ks_statistic,
    likelihood_ratio_test,
)
from .mle import (
    FitResult,
    fit_exponential,
    fit_lognormal,
    fit_lognormal_parameters_over_time,
    fit_power_law,
    fit_power_law_exponent_over_time,
    fit_power_law_with_cutoff,
)
from .model_selection import (
    DEFAULT_CANDIDATES,
    ModelComparison,
    best_fit,
    best_fit_name,
    compare_distributions,
    lognormal_vs_power_law,
)

__all__ = [
    "DiscreteExponential",
    "DiscreteLognormal",
    "PowerLaw",
    "PowerLawWithCutoff",
    "truncated_normal_mean_variance",
    "LikelihoodRatioResult",
    "bootstrap_p_value",
    "empirical_cdf",
    "ks_statistic",
    "likelihood_ratio_test",
    "FitResult",
    "fit_exponential",
    "fit_lognormal",
    "fit_lognormal_parameters_over_time",
    "fit_power_law",
    "fit_power_law_exponent_over_time",
    "fit_power_law_with_cutoff",
    "DEFAULT_CANDIDATES",
    "ModelComparison",
    "best_fit",
    "best_fit_name",
    "compare_distributions",
    "lognormal_vs_power_law",
]
