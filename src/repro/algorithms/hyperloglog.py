"""HyperLogLog cardinality counters.

HyperANF (Boldi, Rosa, Vigna — WWW 2011), which the paper uses to approximate
the effective diameter of Google+, maintains one HyperLogLog counter per node
and repeatedly unions each node's counter with its neighbors' counters.  This
module implements the counter itself: registers, element insertion, union, and
the bias-corrected cardinality estimate.

For the frozen HyperANF kernel (:mod:`repro.algorithms.hyperanf`) the module
additionally exposes the counter state as plain numpy: one *register matrix*
of shape ``(num_counters, 2**precision)`` where row ``i`` is counter ``i``'s
registers.  :func:`register_parameters` computes the (index, rank) update of
a single element — shared with :meth:`HyperLogLog.add`, so both backends hash
identically — :func:`register_matrix_for_items` seeds one row per item, and
:func:`cardinality_of_register_matrix` evaluates the bias-corrected estimate
of every row at once.
"""

from __future__ import annotations

import hashlib
import math
import struct
from typing import Hashable, Iterable, List, Sequence, Tuple

import numpy as np


def _alpha(num_registers: int) -> float:
    """The standard HyperLogLog bias-correction constant for ``m`` registers."""
    if num_registers == 16:
        return 0.673
    if num_registers == 32:
        return 0.697
    if num_registers == 64:
        return 0.709
    return 0.7213 / (1 + 1.079 / num_registers)


def _hash64(item: Hashable, salt: int = 0) -> int:
    """A stable 64-bit hash of ``item`` independent of PYTHONHASHSEED."""
    payload = repr(item).encode("utf-8") + struct.pack("<Q", salt)
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "little")


def register_parameters(
    item: Hashable, precision: int, salt: int = 0
) -> Tuple[int, int]:
    """``(register_index, rank)`` produced by inserting ``item``.

    This is the single-element update rule of :meth:`HyperLogLog.add`,
    factored out so the vectorized register-matrix backend seeds rows with
    bit-identical values.
    """
    num_registers = 1 << precision
    hashed = _hash64(item, salt)
    register_index = hashed & (num_registers - 1)
    remaining = hashed >> precision
    # Rank = position of the first set bit in the remaining 64 - b bits.
    bit_budget = 64 - precision
    if remaining == 0:
        rank = bit_budget + 1
    else:
        rank = 1
        while remaining & 1 == 0 and rank <= bit_budget:
            remaining >>= 1
            rank += 1
    return register_index, rank


def register_matrix_for_items(
    items: Sequence[Hashable], precision: int, salt: int = 0
) -> np.ndarray:
    """One-counter-per-item register matrix, each row seeded with its item.

    Row ``i`` equals the registers of a fresh :class:`HyperLogLog` after
    ``add(items[i])``.
    """
    matrix = np.zeros((len(items), 1 << precision), dtype=np.uint8)
    for i, item in enumerate(items):
        index, rank = register_parameters(item, precision, salt)
        matrix[i, index] = rank
    return matrix


def cardinality_of_register_matrix(registers: np.ndarray) -> np.ndarray:
    """Bias-corrected cardinality estimate of every row of a register matrix.

    Vectorized counterpart of :meth:`HyperLogLog.cardinality`, including the
    small-range linear-counting correction.
    """
    if registers.ndim != 2:
        raise ValueError("expected a 2-D (counters, registers) matrix")
    num_counters, m = registers.shape
    if num_counters == 0:
        return np.zeros(0, dtype=np.float64)
    harmonic = np.ldexp(1.0, -registers.astype(np.int64)).sum(axis=1)
    raw = _alpha(m) * m * m / harmonic
    zeros = (registers == 0).sum(axis=1)
    small = (raw <= 2.5 * m) & (zeros > 0)
    if np.any(small):
        corrected = m * np.log(m / np.where(zeros > 0, zeros, 1))
        raw = np.where(small, corrected, raw)
    return raw


class HyperLogLog:
    """A HyperLogLog counter with ``2**precision`` registers.

    Parameters
    ----------
    precision:
        Number of index bits ``b``; the counter uses ``m = 2**b`` registers and
        has a relative standard error of roughly ``1.04 / sqrt(m)``.
    salt:
        Optional hash salt, letting independent counter families be built for
        repeated experiments.
    """

    __slots__ = ("precision", "num_registers", "registers", "salt")

    def __init__(self, precision: int = 7, salt: int = 0) -> None:
        if not 4 <= precision <= 16:
            raise ValueError(f"precision must be in [4, 16], got {precision}")
        self.precision = precision
        self.num_registers = 1 << precision
        self.registers: List[int] = [0] * self.num_registers
        self.salt = salt

    def add(self, item: Hashable) -> None:
        """Insert ``item`` into the counter."""
        register_index, rank = register_parameters(item, self.precision, self.salt)
        if rank > self.registers[register_index]:
            self.registers[register_index] = rank

    def update(self, items: Iterable[Hashable]) -> None:
        for item in items:
            self.add(item)

    def union_update(self, other: "HyperLogLog") -> bool:
        """In-place union with ``other``; returns ``True`` if any register grew."""
        if other.precision != self.precision:
            raise ValueError("cannot union HyperLogLog counters of different precision")
        changed = False
        own = self.registers
        theirs = other.registers
        for index in range(self.num_registers):
            if theirs[index] > own[index]:
                own[index] = theirs[index]
                changed = True
        return changed

    def copy(self) -> "HyperLogLog":
        clone = HyperLogLog(self.precision, self.salt)
        clone.registers = list(self.registers)
        return clone

    def cardinality(self) -> float:
        """Bias-corrected cardinality estimate (with small-range correction)."""
        m = self.num_registers
        raw = _alpha(m) * m * m / sum(2.0 ** -register for register in self.registers)
        if raw <= 2.5 * m:
            zeros = self.registers.count(0)
            if zeros:
                return m * math.log(m / zeros)
        return raw

    def __len__(self) -> int:
        return int(round(self.cardinality()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HyperLogLog(precision={self.precision}, estimate={self.cardinality():.1f})"
