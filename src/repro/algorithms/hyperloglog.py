"""HyperLogLog cardinality counters.

HyperANF (Boldi, Rosa, Vigna — WWW 2011), which the paper uses to approximate
the effective diameter of Google+, maintains one HyperLogLog counter per node
and repeatedly unions each node's counter with its neighbors' counters.  This
module implements the counter itself: registers, element insertion, union, and
the bias-corrected cardinality estimate.
"""

from __future__ import annotations

import hashlib
import math
import struct
from typing import Hashable, Iterable, List


def _alpha(num_registers: int) -> float:
    """The standard HyperLogLog bias-correction constant for ``m`` registers."""
    if num_registers == 16:
        return 0.673
    if num_registers == 32:
        return 0.697
    if num_registers == 64:
        return 0.709
    return 0.7213 / (1 + 1.079 / num_registers)


def _hash64(item: Hashable, salt: int = 0) -> int:
    """A stable 64-bit hash of ``item`` independent of PYTHONHASHSEED."""
    payload = repr(item).encode("utf-8") + struct.pack("<Q", salt)
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "little")


class HyperLogLog:
    """A HyperLogLog counter with ``2**precision`` registers.

    Parameters
    ----------
    precision:
        Number of index bits ``b``; the counter uses ``m = 2**b`` registers and
        has a relative standard error of roughly ``1.04 / sqrt(m)``.
    salt:
        Optional hash salt, letting independent counter families be built for
        repeated experiments.
    """

    __slots__ = ("precision", "num_registers", "registers", "salt")

    def __init__(self, precision: int = 7, salt: int = 0) -> None:
        if not 4 <= precision <= 16:
            raise ValueError(f"precision must be in [4, 16], got {precision}")
        self.precision = precision
        self.num_registers = 1 << precision
        self.registers: List[int] = [0] * self.num_registers
        self.salt = salt

    def add(self, item: Hashable) -> None:
        """Insert ``item`` into the counter."""
        hashed = _hash64(item, self.salt)
        register_index = hashed & (self.num_registers - 1)
        remaining = hashed >> self.precision
        # Rank = position of the first set bit in the remaining 64 - b bits.
        bit_budget = 64 - self.precision
        if remaining == 0:
            rank = bit_budget + 1
        else:
            rank = 1
            while remaining & 1 == 0 and rank <= bit_budget:
                remaining >>= 1
                rank += 1
        if rank > self.registers[register_index]:
            self.registers[register_index] = rank

    def update(self, items: Iterable[Hashable]) -> None:
        for item in items:
            self.add(item)

    def union_update(self, other: "HyperLogLog") -> bool:
        """In-place union with ``other``; returns ``True`` if any register grew."""
        if other.precision != self.precision:
            raise ValueError("cannot union HyperLogLog counters of different precision")
        changed = False
        own = self.registers
        theirs = other.registers
        for index in range(self.num_registers):
            if theirs[index] > own[index]:
                own[index] = theirs[index]
                changed = True
        return changed

    def copy(self) -> "HyperLogLog":
        clone = HyperLogLog(self.precision, self.salt)
        clone.registers = list(self.registers)
        return clone

    def cardinality(self) -> float:
        """Bias-corrected cardinality estimate (with small-range correction)."""
        m = self.num_registers
        raw = _alpha(m) * m * m / sum(2.0 ** -register for register in self.registers)
        if raw <= 2.5 * m:
            zeros = self.registers.count(0)
            if zeros:
                return m * math.log(m / zeros)
        return raw

    def __len__(self) -> int:
        return int(round(self.cardinality()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HyperLogLog(precision={self.precision}, estimate={self.cardinality():.1f})"
