"""Breadth-first traversal and shortest-path distance utilities.

The paper measures directed distances (Section 3.3): ``dist(u, v)`` is the
length of the shortest *directed* path from ``u`` to ``v`` using social links
only.  The attribute distance (Section 4.1) is derived from social distances
between the members of two attribute nodes.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from ..graph.digraph import DiGraph
from ..graph.san import SAN
from ..utils.rng import RngLike, ensure_rng

Node = Hashable


def bfs_distances(
    graph: DiGraph, source: Node, max_depth: Optional[int] = None
) -> Dict[Node, int]:
    """Directed BFS distances from ``source`` to every reachable node.

    ``max_depth`` truncates the search, which keeps distance-distribution
    sampling cheap on large graphs.
    """
    distances: Dict[Node, int] = {source: 0}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        depth = distances[node]
        if max_depth is not None and depth >= max_depth:
            continue
        for neighbor in graph.successors(node):
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                frontier.append(neighbor)
    return distances


def undirected_bfs_distances(
    adjacency: Dict[Node, Set[Node]], source: Node, max_depth: Optional[int] = None
) -> Dict[Node, int]:
    """BFS distances over a prebuilt undirected adjacency map."""
    distances: Dict[Node, int] = {source: 0}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        depth = distances[node]
        if max_depth is not None and depth >= max_depth:
            continue
        for neighbor in adjacency.get(node, ()):
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                frontier.append(neighbor)
    return distances


def shortest_path_length(graph: DiGraph, source: Node, target: Node) -> Optional[int]:
    """Directed shortest-path length, or ``None`` when ``target`` is unreachable."""
    if source == target:
        return 0
    distances: Dict[Node, int] = {source: 0}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        depth = distances[node]
        for neighbor in graph.successors(node):
            if neighbor == target:
                return depth + 1
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                frontier.append(neighbor)
    return None


def sample_distance_distribution(
    graph: DiGraph,
    num_sources: int = 200,
    rng: RngLike = None,
    max_depth: Optional[int] = None,
) -> Dict[int, int]:
    """Histogram of directed pairwise distances from a random sample of sources.

    The paper reports the distribution of pairwise distances (dominant mode at
    six hops); computing all-pairs distances is infeasible at scale, so we
    sample BFS sources uniformly at random, which yields an unbiased estimate
    of the distance histogram restricted to reachable pairs.
    """
    generator = ensure_rng(rng)
    nodes = list(graph.nodes())
    if not nodes:
        return {}
    if num_sources >= len(nodes):
        sources = nodes
    else:
        sources = generator.sample(nodes, num_sources)
    histogram: Dict[int, int] = {}
    for source in sources:
        for node, distance in bfs_distances(graph, source, max_depth=max_depth).items():
            if node == source:
                continue
            histogram[distance] = histogram.get(distance, 0) + 1
    return dict(sorted(histogram.items()))


def effective_diameter_from_histogram(
    histogram: Dict[int, int], quantile: float = 0.9
) -> float:
    """Interpolated effective diameter from a distance histogram.

    Follows the standard definition (Leskovec et al.): the smallest ``d`` such
    that at least ``quantile`` of reachable pairs are within distance ``d``,
    linearly interpolated between integer distances.
    """
    if not histogram:
        return 0.0
    total = sum(histogram.values())
    if total == 0:
        return 0.0
    target = quantile * total
    cumulative = 0
    previous_cumulative = 0
    for distance in sorted(histogram):
        previous_cumulative = cumulative
        cumulative += histogram[distance]
        if cumulative >= target:
            if cumulative == previous_cumulative:
                return float(distance)
            fraction = (target - previous_cumulative) / (cumulative - previous_cumulative)
            return (distance - 1) + fraction
    return float(max(histogram))


def attribute_distance(
    san: SAN, attribute_a: Node, attribute_b: Node, max_depth: Optional[int] = None
) -> Optional[int]:
    """The paper's attribute distance (Section 4.1).

    ``dist(a, b) = min{dist(u, v) : u in Gamma_s(a), v in Gamma_s(b)} + 1``:
    one plus the minimum directed social distance between any member of ``a``
    and any member of ``b``.  Returns ``None`` when no member of ``b`` is
    reachable from any member of ``a``.
    """
    members_a = san.attributes.members_of(attribute_a)
    members_b = set(san.attributes.members_of(attribute_b))
    if not members_a or not members_b:
        return None
    shared = members_a & members_b
    if shared:
        return 1
    best: Optional[int] = None
    for source in members_a:
        distances = bfs_distances(san.social, source, max_depth=max_depth)
        for target in members_b:
            distance = distances.get(target)
            if distance is None:
                continue
            if best is None or distance < best:
                best = distance
                if best == 1:
                    return best + 1
    return None if best is None else best + 1


def sample_attribute_distance_distribution(
    san: SAN,
    num_pairs: int = 100,
    rng: RngLike = None,
    max_depth: Optional[int] = None,
) -> Dict[int, int]:
    """Histogram of attribute distances over random attribute-node pairs."""
    generator = ensure_rng(rng)
    attributes = [
        node
        for node in san.attribute_nodes()
        if san.attribute_social_degree(node) > 0
    ]
    if len(attributes) < 2:
        return {}
    histogram: Dict[int, int] = {}
    for _ in range(num_pairs):
        first, second = generator.sample(attributes, 2)
        distance = attribute_distance(san, first, second, max_depth=max_depth)
        if distance is not None:
            histogram[distance] = histogram.get(distance, 0) + 1
    return dict(sorted(histogram.items()))
