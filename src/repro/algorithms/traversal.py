"""Breadth-first traversal and shortest-path distance utilities.

The paper measures directed distances (Section 3.3): ``dist(u, v)`` is the
length of the shortest *directed* path from ``u`` to ``v`` using social links
only.  The attribute distance (Section 4.1) is derived from social distances
between the members of two attribute nodes.

:func:`bfs_distances` and :func:`sample_distance_distribution` dispatch
through the :mod:`repro.engine` registry: on a frozen graph
(:class:`~repro.graph.frozen.FrozenDiGraph`) the BFS runs as a frontier-array
sweep over the CSR arrays — each level expands every frontier node's
successor list in one ``gather_rows`` call — instead of a Python deque loop,
and the sampled distance histogram accumulates with ``np.bincount``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Optional, Set, Union

import numpy as np

from ..engine import dispatchable, kernel
from ..graph.digraph import DiGraph
from ..graph.frozen import FrozenDiGraph, gather_rows
from ..graph.protocol import SANView
from ..utils.rng import RngLike, ensure_rng

Node = Hashable
GraphLike = Union[DiGraph, FrozenDiGraph]


@dispatchable("bfs_distances")
def bfs_distances(
    graph: GraphLike, source: Node, max_depth: Optional[int] = None
) -> Dict[Node, int]:
    """Directed BFS distances from ``source`` to every reachable node.

    ``max_depth`` truncates the search, which keeps distance-distribution
    sampling cheap on large graphs.
    """
    distances: Dict[Node, int] = {source: 0}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        depth = distances[node]
        if max_depth is not None and depth >= max_depth:
            continue
        for neighbor in graph.successors(node):
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                frontier.append(neighbor)
    return distances


def frontier_bfs_levels(
    indptr: np.ndarray,
    indices: np.ndarray,
    source_id: int,
    max_depth: Optional[int] = None,
) -> np.ndarray:
    """Array BFS over a CSR adjacency: distance per compact id, -1 unreachable.

    The whole frontier is expanded per level with one :func:`gather_rows`
    call, so the per-level cost is a handful of vectorized operations rather
    than one Python iteration per edge.
    """
    n = indptr.size - 1
    distances = np.full(n, -1, dtype=np.int64)
    distances[source_id] = 0
    frontier = np.array([source_id], dtype=np.int64)
    depth = 0
    while frontier.size and (max_depth is None or depth < max_depth):
        neighbors, _ = gather_rows(indptr, indices, frontier)
        if neighbors.size == 0:
            break
        neighbors = np.unique(neighbors)
        fresh = neighbors[distances[neighbors] < 0]
        if fresh.size == 0:
            break
        depth += 1
        distances[fresh] = depth
        frontier = fresh
    return distances


@kernel("bfs_distances")
def _bfs_distances_frozen(
    graph: FrozenDiGraph, source: Node, max_depth: Optional[int] = None
) -> Dict[Node, int]:
    indptr, indices = graph.out_csr()
    distances = frontier_bfs_levels(
        indptr, indices, graph.index_of(source), max_depth=max_depth
    )
    labels = graph.labels()
    reached = np.nonzero(distances >= 0)[0]
    return {labels[i]: int(distances[i]) for i in reached}


def undirected_bfs_distances(
    adjacency: Dict[Node, Set[Node]], source: Node, max_depth: Optional[int] = None
) -> Dict[Node, int]:
    """BFS distances over a prebuilt undirected adjacency map."""
    distances: Dict[Node, int] = {source: 0}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        depth = distances[node]
        if max_depth is not None and depth >= max_depth:
            continue
        for neighbor in adjacency.get(node, ()):
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                frontier.append(neighbor)
    return distances


def shortest_path_length(graph: GraphLike, source: Node, target: Node) -> Optional[int]:
    """Directed shortest-path length, or ``None`` when ``target`` is unreachable."""
    if source == target:
        return 0
    distances: Dict[Node, int] = {source: 0}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        depth = distances[node]
        for neighbor in graph.successors(node):
            if neighbor == target:
                return depth + 1
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                frontier.append(neighbor)
    return None


@dispatchable("sample_distance_distribution")
def sample_distance_distribution(
    graph: GraphLike,
    num_sources: int = 200,
    rng: RngLike = None,
    max_depth: Optional[int] = None,
) -> Dict[int, int]:
    """Histogram of directed pairwise distances from a random sample of sources.

    The paper reports the distribution of pairwise distances (dominant mode at
    six hops); computing all-pairs distances is infeasible at scale, so we
    sample BFS sources uniformly at random, which yields an unbiased estimate
    of the distance histogram restricted to reachable pairs.
    """
    generator = ensure_rng(rng)
    nodes = list(graph.nodes())
    if not nodes:
        return {}
    if num_sources >= len(nodes):
        sources = nodes
    else:
        sources = generator.sample(nodes, num_sources)
    histogram: Dict[int, int] = {}
    for source in sources:
        for node, distance in bfs_distances(graph, source, max_depth=max_depth).items():
            if node == source:
                continue
            histogram[distance] = histogram.get(distance, 0) + 1
    return dict(sorted(histogram.items()))


@kernel("sample_distance_distribution")
def _sample_distance_distribution_frozen(
    graph: FrozenDiGraph,
    num_sources: int = 200,
    rng: RngLike = None,
    max_depth: Optional[int] = None,
) -> Dict[int, int]:
    generator = ensure_rng(rng)
    nodes = graph.labels()
    if not nodes:
        return {}
    if num_sources >= len(nodes):
        sources = list(nodes)
    else:
        sources = generator.sample(list(nodes), num_sources)
    indptr, indices = graph.out_csr()
    counts: Optional[np.ndarray] = None
    for source in sources:
        distances = frontier_bfs_levels(
            indptr, indices, graph.index_of(source), max_depth=max_depth
        )
        reached = distances[distances > 0]  # drop unreachable and the source
        if reached.size == 0:
            continue
        histogram = np.bincount(reached)
        if counts is None:
            counts = histogram
        elif histogram.size > counts.size:
            histogram[: counts.size] += counts
            counts = histogram
        else:
            counts[: histogram.size] += histogram
    if counts is None:
        return {}
    present = np.nonzero(counts)[0]
    return {int(distance): int(counts[distance]) for distance in present}


def effective_diameter_from_histogram(
    histogram: Dict[int, int], quantile: float = 0.9
) -> float:
    """Interpolated effective diameter from a distance histogram.

    Follows the standard definition (Leskovec et al.): the smallest ``d`` such
    that at least ``quantile`` of reachable pairs are within distance ``d``,
    linearly interpolated between integer distances.
    """
    if not histogram:
        return 0.0
    total = sum(histogram.values())
    if total == 0:
        return 0.0
    target = quantile * total
    cumulative = 0
    previous_cumulative = 0
    for distance in sorted(histogram):
        previous_cumulative = cumulative
        cumulative += histogram[distance]
        if cumulative >= target:
            if cumulative == previous_cumulative:
                return float(distance)
            fraction = (target - previous_cumulative) / (cumulative - previous_cumulative)
            return (distance - 1) + fraction
    return float(max(histogram))


def attribute_distance(
    san: SANView, attribute_a: Node, attribute_b: Node, max_depth: Optional[int] = None
) -> Optional[int]:
    """The paper's attribute distance (Section 4.1).

    ``dist(a, b) = min{dist(u, v) : u in Gamma_s(a), v in Gamma_s(b)} + 1``:
    one plus the minimum directed social distance between any member of ``a``
    and any member of ``b``.  Returns ``None`` when no member of ``b`` is
    reachable from any member of ``a``.  Accepts either SAN backend; the
    inner BFS dispatches to the frontier-array kernel on frozen inputs.
    """
    members_a = san.attributes.members_of(attribute_a)
    members_b = set(san.attributes.members_of(attribute_b))
    if not members_a or not members_b:
        return None
    shared = members_a & members_b
    if shared:
        return 1
    best: Optional[int] = None
    for source in members_a:
        distances = bfs_distances(san.social, source, max_depth=max_depth)
        for target in members_b:
            distance = distances.get(target)
            if distance is None:
                continue
            if best is None or distance < best:
                best = distance
                if best == 1:
                    return best + 1
    return None if best is None else best + 1


def sample_attribute_distance_distribution(
    san: SANView,
    num_pairs: int = 100,
    rng: RngLike = None,
    max_depth: Optional[int] = None,
) -> Dict[int, int]:
    """Histogram of attribute distances over random attribute-node pairs."""
    generator = ensure_rng(rng)
    attributes = [
        node
        for node in san.attribute_nodes()
        if san.attribute_social_degree(node) > 0
    ]
    if len(attributes) < 2:
        return {}
    histogram: Dict[int, int] = {}
    for _ in range(num_pairs):
        first, second = generator.sample(attributes, 2)
        distance = attribute_distance(san, first, second, max_depth=max_depth)
        if distance is not None:
            histogram[distance] = histogram.get(distance, 0) + 1
    return dict(sorted(histogram.items()))
