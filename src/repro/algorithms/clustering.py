"""Exact clustering coefficients for directed SANs.

The paper defines, for any node ``u`` (social or attribute),

    c(u) = L(u) / ( |Gamma_s(u)| * (|Gamma_s(u)| - 1) )

where ``Gamma_s(u)`` is the set of *social* neighbors of ``u`` (for a social
node: the union of its in/out neighbors; for an attribute node: the users
holding it) and ``L(u)`` is the number of directed social links among those
neighbors.  The denominator counts ordered pairs, so a fully reciprocally
connected neighborhood has ``c(u) = 1``.

The average social clustering coefficient ``C_s`` averages ``c(u)`` over
social nodes and the average attribute clustering coefficient ``C_a`` over
attribute nodes (Sections 3.4 and 4.1).

Every public function dispatches through the :mod:`repro.engine` registry.
On a frozen backend (:class:`~repro.graph.frozen.FrozenSAN`) the inner
``L(u)`` count is vectorized: the successor lists of all of ``u``'s neighbors
are gathered from the CSR arrays in one shot and membership in the (sorted)
neighborhood is resolved with a single batched binary search, instead of one
Python set probe per candidate link.  Whole-graph averages go further when
scipy is installed: with neighborhood incidence ``A`` (undirected projection
or attribute membership) and loop-free directed adjacency ``D``, the per-node
link counts are ``L = ((A @ D) ⊙ A) · 1`` — three sparse operations for the
entire graph.  Without scipy (or with ``REPRO_NO_SCIPY=1``) the registry
selects the batched per-node kernels instead.

Examples
--------
>>> from repro.graph import san_from_edge_lists
>>> san = san_from_edge_lists([(1, 2), (2, 1), (1, 3), (3, 2)])
>>> node_clustering_coefficient(san, 2) == node_clustering_coefficient(san.freeze(), 2)
True
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Tuple, Union

import numpy as np

from ..engine import PARALLEL, dispatchable, kernel
from ..engine import parallel as par
from ..engine.deps import scipy_sparse
from ..graph.frozen import FrozenSAN, gather_rows, sorted_membership
from ..graph.san import SAN

Node = Hashable
SANLike = Union[SAN, FrozenSAN]


@dispatchable("directed_links_among")
def directed_links_among(san: SANLike, nodes: Iterable[Node]) -> int:
    """Count directed social links between members of ``nodes`` (``L(u)``)."""
    members = [node for node in nodes if san.social.has_node(node)]
    member_set = set(members)
    count = 0
    for node in members:
        successors = san.social.successors(node)
        if len(successors) <= len(member_set):
            count += sum(1 for target in successors if target in member_set and target != node)
        else:
            count += sum(
                1
                for target in member_set
                if target != node and target in successors
            )
    return count


@kernel("directed_links_among")
def _directed_links_among_frozen(san: FrozenSAN, nodes: Iterable[Node]) -> int:
    member_ids = np.array(
        sorted(
            san.social.index_of(node)
            for node in nodes
            if san.social.has_node(node)
        ),
        dtype=np.int64,
    )
    return _links_among_frozen(san, member_ids)


def _links_among_frozen(san: FrozenSAN, member_ids: np.ndarray) -> int:
    """``L(u)`` on the frozen backend: ``member_ids`` must be sorted compact ids."""
    if member_ids.size < 2:
        return 0
    indptr, indices = san.social.out_csr()
    successors, counts = gather_rows(indptr, indices, member_ids)
    if successors.size == 0:
        return 0
    sources = np.repeat(member_ids, counts)
    hits = sorted_membership(member_ids, successors)
    hits &= successors != sources  # a self-loop is not a link *among* members
    return int(np.count_nonzero(hits))


def _neighborhood_ids(san: FrozenSAN, node: Node) -> np.ndarray:
    """Sorted compact social ids of ``Gamma_s(node)`` on the frozen backend."""
    if san.social.has_node(node):
        return san.social.undirected_row(san.social.index_of(node))
    return san.attributes.member_indices_of(node)  # raises NodeNotFoundError


def _loop_free_directed_matrix(san: FrozenSAN):
    """Directed social adjacency as a scipy CSR matrix, self-loops dropped.

    Memoized on the (immutable) frozen SAN, like the clustering arrays below,
    so a multi-metric report builds each sparse product at most once.
    """
    return san.derived("loop_free_directed_matrix", _build_loop_free_directed_matrix)


def _build_loop_free_directed_matrix(san: FrozenSAN):
    sparse = scipy_sparse()
    n = san.social.number_of_nodes()
    sources, targets = san.social.edge_arrays()
    proper = sources != targets
    return sparse.csr_matrix(
        (
            np.ones(int(np.count_nonzero(proper)), dtype=np.int64),
            (sources[proper], targets[proper]),
        ),
        shape=(n, n),
    )


def _links_per_row(neighborhood_matrix, directed_matrix) -> np.ndarray:
    """``L`` for every row of a neighborhood incidence matrix.

    ``L[u] = sum_{v, w in row u} D[v, w]`` — links among row ``u``'s
    neighborhood — computed as ``((A @ D) ⊙ A) · 1`` in sparse arithmetic.
    """
    paths = neighborhood_matrix @ directed_matrix
    closed = paths.multiply(neighborhood_matrix)
    return np.asarray(closed.sum(axis=1)).ravel()


def _social_clustering_array(san: FrozenSAN) -> np.ndarray:
    """``c(u)`` for every social node (compact-id order), memoized."""
    return san.derived("social_clustering_array", _build_social_clustering_array)


def _build_social_clustering_array(san: FrozenSAN) -> np.ndarray:
    sparse = scipy_sparse()
    indptr, indices = san.social.undirected_csr()
    n = san.social.number_of_nodes()
    neighborhood = sparse.csr_matrix(
        (np.ones(indices.size, dtype=np.int64), indices, indptr), shape=(n, n)
    )
    links = _links_per_row(neighborhood, _loop_free_directed_matrix(san))
    degrees = san.social.undirected_degree_array()
    pairs = degrees * (degrees - 1)
    return np.divide(
        links, pairs, out=np.zeros(n, dtype=np.float64), where=pairs > 0
    )


def _attribute_clustering_array(san: FrozenSAN) -> np.ndarray:
    """``c(a)`` for every attribute node (compact-id order), memoized."""
    return san.derived("attribute_clustering_array", _build_attribute_clustering_array)


def _build_attribute_clustering_array(san: FrozenSAN) -> np.ndarray:
    sparse = scipy_sparse()
    indptr, indices = san.attributes.attr_to_social_csr()
    num_attrs = san.attributes.number_of_attribute_nodes()
    n = san.social.number_of_nodes()
    membership = sparse.csr_matrix(
        (np.ones(indices.size, dtype=np.int64), indices, indptr),
        shape=(num_attrs, n),
    )
    links = _links_per_row(membership, _loop_free_directed_matrix(san))
    degrees = san.attributes.social_degree_array()
    pairs = degrees * (degrees - 1)
    return np.divide(
        links, pairs, out=np.zeros(num_attrs, dtype=np.float64), where=pairs > 0
    )


# ----------------------------------------------------------------------
# Parallel tier: the links-per-row sparse product is exactly row-
# decomposable (row u of ``(A @ D) ⊙ A`` involves only row u of A), so
# node-range chunks computed on the process pool concatenate to the same
# int64 ``L`` array the frozen kernels produce — and the c(u) arrays built
# from it are memoized under the *same* ``san.derived`` keys, so frozen
# kernels dispatched later on the same SAN reuse the parallel-built arrays.
# ----------------------------------------------------------------------


def _shared_directed_matrix(san: FrozenSAN) -> par.SharedCSRSpec:
    """Shared-memory export of the loop-free directed matrix's CSR triple."""

    def factory():
        matrix = _loop_free_directed_matrix(san)
        return {
            "data": matrix.data,
            "indices": matrix.indices,
            "indptr": matrix.indptr,
        }

    return par.shared_arrays(san, "loop_free_directed_matrix", factory)


def _links_chunk(
    neigh_spec: par.SharedCSRSpec,
    directed_spec: par.SharedCSRSpec,
    lo: int,
    hi: int,
    n_cols: int,
) -> np.ndarray:
    """Pool worker: ``L[lo:hi]`` for rows of a shared neighborhood CSR."""
    sparse = scipy_sparse()
    views = par.attach_views(neigh_spec)
    indptr, indices = views["indptr"], views["indices"]
    start, stop = indptr[lo], indptr[hi]
    chunk = sparse.csr_matrix(
        (
            np.ones(stop - start, dtype=np.int64),
            indices[start:stop],
            indptr[lo : hi + 1] - start,
        ),
        shape=(hi - lo, n_cols),
    )
    directed = par.attached_derived(
        directed_spec,
        "matrix",
        lambda: sparse.csr_matrix(
            tuple(
                par.attach_views(directed_spec)[name]
                for name in ("data", "indices", "indptr")
            ),
            shape=(n_cols, n_cols),
        ),
    )
    return _links_per_row(chunk, directed)


def _parallel_links(
    san: FrozenSAN, neigh_spec: par.SharedCSRSpec, n_rows: int
) -> np.ndarray:
    """``L`` for every row of a shared neighborhood matrix, chunked on the pool."""
    n_cols = san.social.number_of_nodes()
    directed_spec = _shared_directed_matrix(san)
    chunks = par.chunk_ranges(n_rows, par.max_workers())
    if not chunks:
        return np.zeros(0, dtype=np.int64)
    parts = par.run_chunks(
        _links_chunk,
        [(neigh_spec, directed_spec, lo, hi, n_cols) for lo, hi in chunks],
    )
    return np.concatenate(parts)


def _build_social_clustering_array_parallel(san: FrozenSAN) -> np.ndarray:
    n = san.social.number_of_nodes()
    links = _parallel_links(san, par.shared_undirected_csr(san.social), n)
    degrees = san.social.undirected_degree_array()
    pairs = degrees * (degrees - 1)
    return np.divide(
        links, pairs, out=np.zeros(n, dtype=np.float64), where=pairs > 0
    )


def _build_attribute_clustering_array_parallel(san: FrozenSAN) -> np.ndarray:
    num_attrs = san.attributes.number_of_attribute_nodes()
    membership_spec = par.shared_arrays(
        san,
        "attr_to_social_csr",
        lambda: dict(zip(("indptr", "indices"), san.attributes.attr_to_social_csr())),
    )
    links = _parallel_links(san, membership_spec, num_attrs)
    degrees = san.attributes.social_degree_array()
    pairs = degrees * (degrees - 1)
    return np.divide(
        links, pairs, out=np.zeros(num_attrs, dtype=np.float64), where=pairs > 0
    )


def _ensure_clustering_array_parallel(san: FrozenSAN, kind: str) -> np.ndarray:
    """The memoized c(u) array of ``kind``, built on the pool if not cached."""
    if kind == "social":
        return san.derived(
            "social_clustering_array", _build_social_clustering_array_parallel
        )
    return san.derived(
        "attribute_clustering_array", _build_attribute_clustering_array_parallel
    )


@kernel(
    "average_social_clustering_coefficient",
    backend=PARALLEL,
    requires=("scipy", "parallel"),
    priority=20,
)
def _average_social_clustering_parallel(san: FrozenSAN) -> float:
    coefficients = _ensure_clustering_array_parallel(san, "social")
    return float(coefficients.mean()) if coefficients.size else 0.0


@kernel(
    "average_attribute_clustering_coefficient",
    backend=PARALLEL,
    requires=("scipy", "parallel"),
    priority=20,
)
def _average_attribute_clustering_parallel(san: FrozenSAN) -> float:
    coefficients = _ensure_clustering_array_parallel(san, "attribute")
    return float(coefficients.mean()) if coefficients.size else 0.0


@kernel(
    "clustering_by_degree",
    backend=PARALLEL,
    requires=("scipy", "parallel"),
    priority=20,
)
def _clustering_by_degree_parallel(
    san: FrozenSAN, kind: str = "social"
) -> List[Tuple[int, float]]:
    _require_kind(kind)
    _ensure_clustering_array_parallel(san, kind)
    # The grouping itself is a cheap pair of bincounts; reuse the frozen
    # kernel, which now picks up the parallel-built memoized array.
    return _clustering_by_degree_frozen_sparse(san, kind)


@dispatchable("node_clustering_coefficient")
def node_clustering_coefficient(san: SANLike, node: Node) -> float:
    """The paper's ``c(u)`` for a social or attribute node."""
    neighbors = san.social_neighbors(node)
    k = len(neighbors)
    if k < 2:
        return 0.0
    links = directed_links_among(san, neighbors)
    return links / (k * (k - 1))


@kernel("node_clustering_coefficient")
def _node_clustering_coefficient_frozen(san: FrozenSAN, node: Node) -> float:
    neighborhood = _neighborhood_ids(san, node)
    k = int(neighborhood.size)
    if k < 2:
        return 0.0
    return _links_among_frozen(san, neighborhood) / (k * (k - 1))


@dispatchable("average_social_clustering_coefficient")
def average_social_clustering_coefficient(san: SANLike) -> float:
    """Exact ``C_s``: mean clustering coefficient over all social nodes."""
    nodes = list(san.social_nodes())
    if not nodes:
        return 0.0
    return sum(node_clustering_coefficient(san, node) for node in nodes) / len(nodes)


@kernel("average_social_clustering_coefficient", requires="scipy")
def _average_social_clustering_frozen(san: FrozenSAN) -> float:
    coefficients = _social_clustering_array(san)
    return float(coefficients.mean()) if coefficients.size else 0.0


@dispatchable("average_attribute_clustering_coefficient")
def average_attribute_clustering_coefficient(san: SANLike) -> float:
    """Exact ``C_a``: mean clustering coefficient over all attribute nodes."""
    nodes = list(san.attribute_nodes())
    if not nodes:
        return 0.0
    return sum(node_clustering_coefficient(san, node) for node in nodes) / len(nodes)


@kernel("average_attribute_clustering_coefficient", requires="scipy")
def _average_attribute_clustering_frozen(san: FrozenSAN) -> float:
    coefficients = _attribute_clustering_array(san)
    return float(coefficients.mean()) if coefficients.size else 0.0


@dispatchable("clustering_by_degree")
def clustering_by_degree(
    san: SANLike, kind: str = "social"
) -> List[Tuple[int, float]]:
    """Average clustering coefficient as a function of node degree (Figure 9a).

    ``kind="social"`` groups social nodes by their social degree (number of
    distinct social neighbors); ``kind="attribute"`` groups attribute nodes by
    their social degree (number of members).
    """
    _require_kind(kind)
    if kind == "social":
        nodes = list(san.social_nodes())
        degree_of = lambda node: len(san.social.neighbors(node))
    else:
        nodes = list(san.attribute_nodes())
        degree_of = lambda node: san.attribute_social_degree(node)

    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for node in nodes:
        degree = degree_of(node)
        if degree < 2:
            continue
        coefficient = node_clustering_coefficient(san, node)
        sums[degree] = sums.get(degree, 0.0) + coefficient
        counts[degree] = counts.get(degree, 0) + 1
    return sorted(
        (degree, sums[degree] / counts[degree]) for degree in sums
    )


def _require_kind(kind: str) -> None:
    if kind not in ("social", "attribute"):
        raise ValueError(f"kind must be 'social' or 'attribute', got {kind!r}")


@kernel("clustering_by_degree", requires="scipy", priority=10)
def _clustering_by_degree_frozen_sparse(
    san: FrozenSAN, kind: str = "social"
) -> List[Tuple[int, float]]:
    _require_kind(kind)
    if kind == "social":
        degrees = san.social.undirected_degree_array()
        coefficients = _social_clustering_array(san)
    else:
        degrees = san.attributes.social_degree_array()
        coefficients = _attribute_clustering_array(san)
    mask = degrees >= 2
    if not np.any(mask):
        return []
    grouped_sums = np.bincount(degrees[mask], weights=coefficients[mask])
    grouped_counts = np.bincount(degrees[mask])
    present = np.nonzero(grouped_counts)[0]
    return [(int(k), float(grouped_sums[k] / grouped_counts[k])) for k in present]


@kernel("clustering_by_degree")
def _clustering_by_degree_frozen(
    san: FrozenSAN, kind: str = "social"
) -> List[Tuple[int, float]]:
    """Numpy-only frozen fallback: degree arrays + batched per-node ``L(u)``."""
    _require_kind(kind)
    if kind == "social":
        nodes = san.social.labels()
        degree_array = san.social.undirected_degree_array()
    else:
        nodes = san.attributes.attribute_labels()
        degree_array = san.attributes.social_degree_array()

    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for position, node in enumerate(nodes):
        degree = int(degree_array[position])
        if degree < 2:
            continue
        coefficient = _node_clustering_coefficient_frozen(san, node)
        sums[degree] = sums.get(degree, 0.0) + coefficient
        counts[degree] = counts.get(degree, 0) + 1
    return sorted(
        (degree, sums[degree] / counts[degree]) for degree in sums
    )


@dispatchable("average_clustering_by_attribute_type")
def average_clustering_by_attribute_type(san: SANLike) -> Dict[str, float]:
    """Average attribute clustering coefficient for every attribute type.

    Equivalent to calling :func:`average_clustering_for_attribute_type` per
    type (keys sorted), but on the frozen scipy path the whole-graph ``c(a)``
    array is computed once and grouped by the interned type codes, instead of
    once per type.
    """
    return {
        attr_type: average_clustering_for_attribute_type(san, attr_type)
        for attr_type in sorted(san.attributes.attribute_types())
    }


@kernel("average_clustering_by_attribute_type", requires="scipy")
def _average_clustering_by_attribute_type_frozen(san: FrozenSAN) -> Dict[str, float]:
    coefficients = _attribute_clustering_array(san)
    codes = san.attributes.type_codes()
    type_names = san.attributes.type_names()  # already sorted
    sums = np.bincount(codes, weights=coefficients, minlength=len(type_names))
    counts = np.bincount(codes, minlength=len(type_names))
    return {
        name: float(sums[code] / counts[code]) if counts[code] else 0.0
        for code, name in enumerate(type_names)
    }


@dispatchable("average_clustering_for_attribute_type")
def average_clustering_for_attribute_type(san: SANLike, attr_type: str) -> float:
    """Average attribute clustering coefficient restricted to one attribute type.

    This is the quantity behind Figure 13b (Employer vs School vs Major vs
    City community-forming power).
    """
    nodes = list(san.attributes.attribute_nodes_of_type(attr_type))
    if not nodes:
        return 0.0
    return sum(node_clustering_coefficient(san, node) for node in nodes) / len(nodes)


@kernel("average_clustering_for_attribute_type", requires="scipy")
def _average_clustering_for_attribute_type_frozen(
    san: FrozenSAN, attr_type: str
) -> float:
    sparse = scipy_sparse()
    type_names = san.attributes.type_names()
    if attr_type not in type_names:
        return 0.0
    selected = np.nonzero(
        san.attributes.type_codes() == type_names.index(attr_type)
    )[0]
    if selected.size == 0:
        return 0.0
    # Restrict the membership matrix to this type's rows so one type's
    # average costs O(type size), not a whole-graph sparse product; the
    # all-types path (average_clustering_by_attribute_type) computes and
    # memoizes the full array in one pass instead.
    indptr, indices = san.attributes.attr_to_social_csr()
    members, counts = gather_rows(indptr, indices, selected)
    sub_indptr = np.zeros(selected.size + 1, dtype=np.int64)
    np.cumsum(counts, out=sub_indptr[1:])
    membership = sparse.csr_matrix(
        (np.ones(members.size, dtype=np.int64), members, sub_indptr),
        shape=(selected.size, san.social.number_of_nodes()),
    )
    links = _links_per_row(membership, _loop_free_directed_matrix(san))
    degrees = san.attributes.social_degree_array()[selected]
    pairs = degrees * (degrees - 1)
    coefficients = np.divide(
        links, pairs, out=np.zeros(selected.size, dtype=np.float64), where=pairs > 0
    )
    return float(coefficients.mean())
