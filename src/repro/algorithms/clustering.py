"""Exact clustering coefficients for directed SANs.

The paper defines, for any node ``u`` (social or attribute),

    c(u) = L(u) / ( |Gamma_s(u)| * (|Gamma_s(u)| - 1) )

where ``Gamma_s(u)`` is the set of *social* neighbors of ``u`` (for a social
node: the union of its in/out neighbors; for an attribute node: the users
holding it) and ``L(u)`` is the number of directed social links among those
neighbors.  The denominator counts ordered pairs, so a fully reciprocally
connected neighborhood has ``c(u) = 1``.

The average social clustering coefficient ``C_s`` averages ``c(u)`` over
social nodes and the average attribute clustering coefficient ``C_a`` over
attribute nodes (Sections 3.4 and 4.1).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..graph.san import SAN

Node = Hashable


def directed_links_among(san: SAN, nodes: Iterable[Node]) -> int:
    """Count directed social links between members of ``nodes`` (``L(u)``)."""
    members = [node for node in nodes if san.social.has_node(node)]
    member_set = set(members)
    count = 0
    for node in members:
        successors = san.social.successors(node)
        if len(successors) <= len(member_set):
            count += sum(1 for target in successors if target in member_set and target != node)
        else:
            count += sum(
                1
                for target in member_set
                if target != node and target in successors
            )
    return count


def node_clustering_coefficient(san: SAN, node: Node) -> float:
    """The paper's ``c(u)`` for a social or attribute node."""
    neighbors = san.social_neighbors(node)
    k = len(neighbors)
    if k < 2:
        return 0.0
    links = directed_links_among(san, neighbors)
    return links / (k * (k - 1))


def average_social_clustering_coefficient(san: SAN) -> float:
    """Exact ``C_s``: mean clustering coefficient over all social nodes."""
    nodes = list(san.social_nodes())
    if not nodes:
        return 0.0
    return sum(node_clustering_coefficient(san, node) for node in nodes) / len(nodes)


def average_attribute_clustering_coefficient(san: SAN) -> float:
    """Exact ``C_a``: mean clustering coefficient over all attribute nodes."""
    nodes = list(san.attribute_nodes())
    if not nodes:
        return 0.0
    return sum(node_clustering_coefficient(san, node) for node in nodes) / len(nodes)


def clustering_by_degree(
    san: SAN, kind: str = "social"
) -> List[Tuple[int, float]]:
    """Average clustering coefficient as a function of node degree (Figure 9a).

    ``kind="social"`` groups social nodes by their social degree (number of
    distinct social neighbors); ``kind="attribute"`` groups attribute nodes by
    their social degree (number of members).
    """
    if kind == "social":
        nodes = list(san.social_nodes())
        degree_of = lambda node: len(san.social.neighbors(node))
    elif kind == "attribute":
        nodes = list(san.attribute_nodes())
        degree_of = lambda node: san.attribute_social_degree(node)
    else:
        raise ValueError(f"kind must be 'social' or 'attribute', got {kind!r}")

    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for node in nodes:
        degree = degree_of(node)
        if degree < 2:
            continue
        coefficient = node_clustering_coefficient(san, node)
        sums[degree] = sums.get(degree, 0.0) + coefficient
        counts[degree] = counts.get(degree, 0) + 1
    return sorted(
        (degree, sums[degree] / counts[degree]) for degree in sums
    )


def average_clustering_for_attribute_type(san: SAN, attr_type: str) -> float:
    """Average attribute clustering coefficient restricted to one attribute type.

    This is the quantity behind Figure 13b (Employer vs School vs Major vs
    City community-forming power).
    """
    nodes = list(san.attributes.attribute_nodes_of_type(attr_type))
    if not nodes:
        return 0.0
    return sum(node_clustering_coefficient(san, node) for node in nodes) / len(nodes)
