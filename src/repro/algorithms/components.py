"""Connected-component algorithms (weakly connected components on the social layer).

The Google+ crawl in the paper covers a large weakly connected component
(Section 2.2); the crawler substrate and several metrics need WCC extraction.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Set

from ..graph.digraph import DiGraph
from ..graph.san import SAN

Node = Hashable


def weakly_connected_components(graph: DiGraph) -> List[Set[Node]]:
    """All weakly connected components, largest first."""
    adjacency = graph.to_undirected_adjacency()
    seen: Set[Node] = set()
    components: List[Set[Node]] = []
    for start in adjacency:
        if start in seen:
            continue
        component: Set[Node] = {start}
        frontier = deque([start])
        seen.add(start)
        while frontier:
            node = frontier.popleft()
            for neighbor in adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    component.add(neighbor)
                    frontier.append(neighbor)
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def largest_weakly_connected_component(graph: DiGraph) -> Set[Node]:
    """Node set of the largest WCC (empty set for an empty graph)."""
    components = weakly_connected_components(graph)
    return components[0] if components else set()


def wcc_fraction(graph: DiGraph) -> float:
    """Fraction of nodes inside the largest WCC."""
    total = graph.number_of_nodes()
    if total == 0:
        return 0.0
    return len(largest_weakly_connected_component(graph)) / total


def restrict_san_to_largest_wcc(san: SAN) -> SAN:
    """Induced SAN on the largest weakly connected social component."""
    component = largest_weakly_connected_component(san.social)
    return san.social_subgraph(component)


def strongly_connected_components(graph: DiGraph) -> List[Set[Node]]:
    """Strongly connected components via iterative Tarjan, largest first.

    Included for completeness of the substrate (reciprocity-heavy subgraphs are
    strongly connected); implemented iteratively to avoid recursion limits on
    large crawls.
    """
    index_counter = 0
    indices: Dict[Node, int] = {}
    lowlinks: Dict[Node, int] = {}
    on_stack: Set[Node] = set()
    stack: List[Node] = []
    components: List[Set[Node]] = []

    for root in graph.nodes():
        if root in indices:
            continue
        work: List[tuple] = [(root, iter(graph.successors(root)))]
        indices[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in indices:
                    indices[successor] = lowlinks[successor] = index_counter
                    index_counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(graph.successors(successor))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indices[node]:
                component: Set[Node] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    components.sort(key=len, reverse=True)
    return components
