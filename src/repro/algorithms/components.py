"""Connected-component algorithms (weakly connected components on the social layer).

The Google+ crawl in the paper covers a large weakly connected component
(Section 2.2); the crawler substrate and several metrics need WCC extraction.

Both entry points dispatch through the :mod:`repro.engine` registry.  On a
frozen graph (:class:`~repro.graph.frozen.FrozenDiGraph`) the weak components
come from ``scipy.sparse.csgraph.connected_components`` over the undirected
CSR when scipy is available, and from a frontier-array BFS labelling sweep
otherwise; strong components use csgraph's ``connection="strong"`` mode with
the portable iterative Tarjan as the fallback.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Set, Union

import numpy as np

from ..engine import dispatchable, kernel
from ..engine.deps import scipy_csgraph, scipy_sparse
from ..graph.digraph import DiGraph
from ..graph.frozen import FrozenDiGraph, gather_rows
from ..graph.protocol import SANView

Node = Hashable
GraphLike = Union[DiGraph, FrozenDiGraph]


@dispatchable("weakly_connected_components")
def weakly_connected_components(graph: GraphLike) -> List[Set[Node]]:
    """All weakly connected components, largest first."""
    adjacency = graph.to_undirected_adjacency()
    seen: Set[Node] = set()
    components: List[Set[Node]] = []
    for start in adjacency:
        if start in seen:
            continue
        component: Set[Node] = {start}
        frontier = deque([start])
        seen.add(start)
        while frontier:
            node = frontier.popleft()
            for neighbor in adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    component.add(neighbor)
                    frontier.append(neighbor)
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def _components_from_labels(graph: FrozenDiGraph, labels: np.ndarray) -> List[Set[Node]]:
    """Group compact ids by component label, largest component first.

    Ties are broken by the earliest member in node-iteration order — the
    canonical ordering every backend of both component flavours agrees on
    (the portable implementations sort the same way).
    """
    node_labels = graph.labels()
    order = np.argsort(labels, kind="stable")
    sorted_labels = labels[order]
    boundaries = np.nonzero(np.diff(sorted_labels))[0] + 1
    groups = np.split(order, boundaries)
    # np.unique(return_index) gives each component's first-appearance position.
    _, first_seen = np.unique(labels, return_index=True)
    ranked = sorted(
        zip(groups, first_seen), key=lambda pair: (-pair[0].size, pair[1])
    )
    return [{node_labels[i] for i in group} for group, _ in ranked]


@kernel("weakly_connected_components", requires="scipy", priority=10)
def _weak_components_frozen_sparse(graph: FrozenDiGraph) -> List[Set[Node]]:
    n = graph.number_of_nodes()
    if n == 0:
        return []
    sparse = scipy_sparse()
    csgraph = scipy_csgraph()
    indptr, indices = graph.undirected_csr()
    adjacency = sparse.csr_matrix(
        (np.ones(indices.size, dtype=np.int8), indices, indptr), shape=(n, n)
    )
    _, labels = csgraph.connected_components(adjacency, directed=False)
    return _components_from_labels(graph, labels)


@kernel("weakly_connected_components")
def _weak_components_frozen(graph: FrozenDiGraph) -> List[Set[Node]]:
    """Numpy fallback: frontier-array BFS labelling over the undirected CSR."""
    n = graph.number_of_nodes()
    if n == 0:
        return []
    indptr, indices = graph.undirected_csr()
    labels = np.full(n, -1, dtype=np.int64)
    next_label = 0
    for seed in range(n):
        if labels[seed] >= 0:
            continue
        labels[seed] = next_label
        frontier = np.array([seed], dtype=np.int64)
        while frontier.size:
            neighbors, _ = gather_rows(indptr, indices, frontier)
            if neighbors.size == 0:
                break
            neighbors = np.unique(neighbors)
            fresh = neighbors[labels[neighbors] < 0]
            if fresh.size == 0:
                break
            labels[fresh] = next_label
            frontier = fresh
        next_label += 1
    return _components_from_labels(graph, labels)


def largest_weakly_connected_component(graph: GraphLike) -> Set[Node]:
    """Node set of the largest WCC (empty set for an empty graph)."""
    components = weakly_connected_components(graph)
    return components[0] if components else set()


def wcc_fraction(graph: GraphLike) -> float:
    """Fraction of nodes inside the largest WCC."""
    total = graph.number_of_nodes()
    if total == 0:
        return 0.0
    return len(largest_weakly_connected_component(graph)) / total


def restrict_san_to_largest_wcc(san: SANView) -> SANView:
    """Induced SAN on the largest weakly connected social component.

    Accepts either backend; a frozen input yields a frozen result (extracted
    directly from the CSR arrays via ``social_subgraph``).
    """
    component = largest_weakly_connected_component(san.social)
    return san.social_subgraph(component)


@dispatchable("strongly_connected_components")
def strongly_connected_components(graph: GraphLike) -> List[Set[Node]]:
    """Strongly connected components via iterative Tarjan, largest first.

    Ties between equal-size components are broken by their earliest member
    in node-iteration order, so the result is identical on every backend
    (Tarjan's completion order is an implementation detail and is not
    exposed).  Included for completeness of the substrate (reciprocity-heavy
    subgraphs are strongly connected); implemented iteratively to avoid
    recursion limits on large crawls.
    """
    index_counter = 0
    indices: Dict[Node, int] = {}
    lowlinks: Dict[Node, int] = {}
    on_stack: Set[Node] = set()
    stack: List[Node] = []
    components: List[Set[Node]] = []

    for root in graph.nodes():
        if root in indices:
            continue
        work: List[tuple] = [(root, iter(graph.successors(root)))]
        indices[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in indices:
                    indices[successor] = lowlinks[successor] = index_counter
                    index_counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(graph.successors(successor))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indices[node]:
                component: Set[Node] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    position = {node: index for index, node in enumerate(graph.nodes())}
    components.sort(
        key=lambda component: (-len(component), min(position[n] for n in component))
    )
    return components


@kernel("strongly_connected_components", requires="scipy")
def _strong_components_frozen_sparse(graph: FrozenDiGraph) -> List[Set[Node]]:
    n = graph.number_of_nodes()
    if n == 0:
        return []
    sparse = scipy_sparse()
    csgraph = scipy_csgraph()
    indptr, indices = graph.out_csr()
    adjacency = sparse.csr_matrix(
        (np.ones(indices.size, dtype=np.int8), indices, indptr), shape=(n, n)
    )
    _, labels = csgraph.connected_components(
        adjacency, directed=True, connection="strong"
    )
    return _components_from_labels(graph, labels)
