"""Graph algorithms: traversal, components, HyperANF, clustering, sampling, walks."""

from .approx_clustering import (
    approximate_attribute_clustering,
    approximate_average_clustering,
    approximate_social_clustering,
    required_samples,
    triple_score,
)
from .clustering import (
    average_attribute_clustering_coefficient,
    average_clustering_for_attribute_type,
    average_social_clustering_coefficient,
    clustering_by_degree,
    directed_links_among,
    node_clustering_coefficient,
)
from .components import (
    largest_weakly_connected_component,
    restrict_san_to_largest_wcc,
    strongly_connected_components,
    wcc_fraction,
    weakly_connected_components,
)
from .hyperanf import (
    effective_diameter,
    effective_diameter_from_neighbourhood,
    exact_neighbourhood_function,
    neighbourhood_function,
)
from .hyperloglog import HyperLogLog
from .random_walk import (
    capped_undirected_adjacency,
    random_walk,
    random_walk_on_san,
    stationary_degree_distribution,
)
from .sampling import (
    drop_users_attributes,
    reservoir_sample,
    sample_nodes,
    sample_social_edges,
    subsample_attributes,
    weighted_choice,
)
from .traversal import (
    attribute_distance,
    bfs_distances,
    effective_diameter_from_histogram,
    sample_attribute_distance_distribution,
    sample_distance_distribution,
    shortest_path_length,
    undirected_bfs_distances,
)
from .triangles import (
    ClosureBreakdown,
    classify_closures,
    count_directed_triangles,
    is_focal_closure,
    is_triadic_closure,
    two_hop_san_neighbors,
    two_hop_social_neighbors,
)

__all__ = [
    "HyperLogLog",
    "approximate_attribute_clustering",
    "approximate_average_clustering",
    "approximate_social_clustering",
    "required_samples",
    "triple_score",
    "average_attribute_clustering_coefficient",
    "average_clustering_for_attribute_type",
    "average_social_clustering_coefficient",
    "clustering_by_degree",
    "directed_links_among",
    "node_clustering_coefficient",
    "largest_weakly_connected_component",
    "restrict_san_to_largest_wcc",
    "strongly_connected_components",
    "wcc_fraction",
    "weakly_connected_components",
    "effective_diameter",
    "effective_diameter_from_neighbourhood",
    "exact_neighbourhood_function",
    "neighbourhood_function",
    "capped_undirected_adjacency",
    "random_walk",
    "random_walk_on_san",
    "stationary_degree_distribution",
    "drop_users_attributes",
    "reservoir_sample",
    "sample_nodes",
    "sample_social_edges",
    "subsample_attributes",
    "weighted_choice",
    "attribute_distance",
    "bfs_distances",
    "effective_diameter_from_histogram",
    "sample_attribute_distance_distribution",
    "sample_distance_distribution",
    "shortest_path_length",
    "undirected_bfs_distances",
    "ClosureBreakdown",
    "classify_closures",
    "count_directed_triangles",
    "is_focal_closure",
    "is_triadic_closure",
    "two_hop_san_neighbors",
    "two_hop_social_neighbors",
]
