"""Common-neighbour and triangle-closure helpers.

The generative model's triangle-closing step and the Section 5.2 evaluation
need fast access to two-hop neighborhoods and to the classification of a new
edge as a *triadic* closure (the endpoints share a social neighbor), a *focal*
closure (they share an attribute), both, or neither.

All helpers accept either SAN backend; :func:`count_directed_triangles`
additionally registers CSR kernels for the frozen backend (via the
:mod:`repro.engine` registry) that enumerate each triangle once over compact
integer ids — a sparse ``trace(A³)/6`` when scipy is available, batched
binary searches otherwise — instead of the per-node dict walk used on the
mutable backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Set, Tuple, Union

import numpy as np

from ..engine import PARALLEL, dispatchable, kernel
from ..engine import parallel as par
from ..engine.deps import scipy_sparse
from ..graph.frozen import FrozenSAN, gather_rows, sorted_membership
from ..graph.san import SAN

Node = Hashable
SANLike = Union[SAN, FrozenSAN]


@dataclass
class ClosureBreakdown:
    """Counts of edge-closure categories over a set of observed edges.

    ``triadic`` and ``focal`` are *not* exclusive (the paper reports 84%
    triadic, 18% focal, 15% both), so the percentages may sum to more than one.
    """

    total: int = 0
    triadic: int = 0
    focal: int = 0
    both: int = 0
    neither: int = 0

    @property
    def triadic_fraction(self) -> float:
        return self.triadic / self.total if self.total else 0.0

    @property
    def focal_fraction(self) -> float:
        return self.focal / self.total if self.total else 0.0

    @property
    def both_fraction(self) -> float:
        return self.both / self.total if self.total else 0.0

    @property
    def neither_fraction(self) -> float:
        return self.neither / self.total if self.total else 0.0


def two_hop_social_neighbors(san: SANLike, node: Node) -> Set[Node]:
    """Social nodes reachable via one intermediate social neighbor.

    The source node itself and its direct neighbors are excluded: these are
    the candidate targets of a pure triadic closure.
    """
    direct = san.social_neighbors(node)
    result: Set[Node] = set()
    for intermediate in direct:
        result.update(san.social_neighbors(intermediate))
    result.discard(node)
    result -= direct
    return result


def two_hop_san_neighbors(san: SANLike, node: Node) -> Set[Node]:
    """Two-hop neighborhood through *either* social or attribute links.

    This is the candidate set of the RR-SAN closure: a first step to a social
    or attribute neighbor, then a second step to one of that neighbor's social
    neighbors.
    """
    first_hop: Set[Node] = set(san.social_neighbors(node))
    first_hop.update(san.attribute_neighbors(node))
    result: Set[Node] = set()
    for intermediate in first_hop:
        if san.is_social_node(intermediate):
            result.update(san.social_neighbors(intermediate))
        else:
            result.update(san.attributes.members_of(intermediate))
    result.discard(node)
    result -= san.social_neighbors(node)
    return result


def is_triadic_closure(san: SANLike, source: Node, target: Node) -> bool:
    """Whether ``source -> target`` closes a triangle over a common social neighbor."""
    return bool(san.common_social_neighbors(source, target))


def is_focal_closure(san: SANLike, source: Node, target: Node) -> bool:
    """Whether ``source -> target`` closes a triangle over a shared attribute."""
    return bool(san.common_attributes(source, target))


def classify_closures(
    san: SANLike, edges: Iterable[Tuple[Node, Node]]
) -> ClosureBreakdown:
    """Classify each edge against the state of ``san`` (before edge insertion)."""
    breakdown = ClosureBreakdown()
    for source, target in edges:
        if not (san.is_social_node(source) and san.is_social_node(target)):
            continue
        breakdown.total += 1
        triadic = is_triadic_closure(san, source, target)
        focal = is_focal_closure(san, source, target)
        if triadic:
            breakdown.triadic += 1
        if focal:
            breakdown.focal += 1
        if triadic and focal:
            breakdown.both += 1
        if not triadic and not focal:
            breakdown.neither += 1
    return breakdown


@dispatchable("count_directed_triangles")
def count_directed_triangles(san: SANLike) -> int:
    """Number of (unordered) connected triples forming a triangle in the
    undirected projection of the social layer.

    Used by tests as an independent cross-check of the clustering machinery.
    """
    adjacency = san.social.to_undirected_adjacency()
    count = 0
    for node, neighbors in adjacency.items():
        for first in neighbors:
            if first <= node if _comparable(first, node) else repr(first) <= repr(node):
                continue
            for second in neighbors:
                if not _ordered(first, second):
                    continue
                if second in adjacency[first]:
                    count += 1
    return count


@kernel("count_directed_triangles", requires="scipy", priority=10)
def _count_triangles_frozen_sparse(san: FrozenSAN) -> int:
    """Sparse triangle count: ``trace(A^3) / 6 = sum((A @ A) ⊙ A) / 6``."""
    sparse = scipy_sparse()
    indptr, indices = san.social.undirected_csr()
    n = san.social.number_of_nodes()
    adjacency = sparse.csr_matrix(
        (np.ones(indices.size, dtype=np.int64), indices, indptr), shape=(n, n)
    )
    closed_wedges = (adjacency @ adjacency).multiply(adjacency).sum()
    return int(closed_wedges) // 6


@kernel("count_directed_triangles")
def _count_triangles_frozen(san: FrozenSAN) -> int:
    """Numpy fallback: each triangle ``u < v < w`` (compact ids) is counted
    exactly once at its smallest vertex ``u`` — among the neighbors of ``u``
    greater than ``u``, count ordered candidate pairs ``(v, w)`` with ``w``
    adjacent to ``v`` and ``w > v``, both resolved with vectorized binary
    searches.
    """
    indptr, indices = san.social.undirected_csr()
    count = 0
    for u in range(san.social.number_of_nodes()):
        row = indices[indptr[u] : indptr[u + 1]]
        higher = row[np.searchsorted(row, u + 1) :]  # neighbors with id > u
        if higher.size < 2:
            continue
        neighbor_lists, counts = gather_rows(indptr, indices, higher)
        sources = np.repeat(higher, counts)
        candidates = neighbor_lists > sources  # enforce w > v
        hits = sorted_membership(higher, neighbor_lists) & candidates
        count += int(np.count_nonzero(hits))
    return count


def _triangle_chunk(spec: par.SharedCSRSpec, lo: int, hi: int, use_scipy: bool) -> int:
    """Pool worker: exact triangle contribution of undirected-CSR rows ``[lo, hi)``.

    With scipy the chunk contributes its rows' *closed wedge* count — summing
    over all chunks gives ``sum((A @ A) ⊙ A)``, which the parent divides by 6
    exactly as the frozen sparse kernel does.  Without scipy the chunk counts
    the triangles whose smallest vertex lies in the chunk (the frozen numpy
    convention), which sum directly.  Both are integer sums, so any chunking
    is bit-identical to the single-core result.
    """
    views = par.attach_views(spec)
    indptr, indices = views["indptr"], views["indices"]
    n = indptr.size - 1
    if use_scipy:
        sparse = scipy_sparse()
        full = par.attached_derived(
            spec,
            "int64_adjacency",
            lambda: sparse.csr_matrix(
                (np.ones(indices.size, dtype=np.int64), indices, indptr),
                shape=(n, n),
            ),
        )
        start, stop = indptr[lo], indptr[hi]
        chunk = sparse.csr_matrix(
            (
                np.ones(stop - start, dtype=np.int64),
                indices[start:stop],
                indptr[lo : hi + 1] - start,
            ),
            shape=(hi - lo, n),
        )
        return int((chunk @ full).multiply(chunk).sum())
    count = 0
    for u in range(lo, hi):
        row = indices[indptr[u] : indptr[u + 1]]
        higher = row[np.searchsorted(row, u + 1) :]
        if higher.size < 2:
            continue
        neighbor_lists, counts = gather_rows(indptr, indices, higher)
        sources = np.repeat(higher, counts)
        candidates = neighbor_lists > sources
        hits = sorted_membership(higher, neighbor_lists) & candidates
        count += int(np.count_nonzero(hits))
    return count


@kernel("count_directed_triangles", backend=PARALLEL, requires="parallel", priority=20)
def _count_triangles_parallel(san: FrozenSAN) -> int:
    """Process-pool triangle count over node-range chunks of the shared CSR."""
    n = san.social.number_of_nodes()
    use_scipy = scipy_sparse() is not None
    spec = par.shared_undirected_csr(san.social)
    chunks = par.chunk_ranges(n, par.max_workers())
    totals = par.run_chunks(
        _triangle_chunk, [(spec, lo, hi, use_scipy) for lo, hi in chunks]
    )
    total = sum(totals)
    return total // 6 if use_scipy else total


def _comparable(first, second) -> bool:
    try:
        first < second  # noqa: B015 - probing comparability only
        return True
    except TypeError:
        return False


def _ordered(first, second) -> bool:
    if _comparable(first, second):
        return first < second
    return repr(first) < repr(second)
