"""Sampling utilities: node/edge samples, attribute subsampling, reservoirs.

The paper's Section 4.3 validates the representativeness of the observed
attributes by removing each user's attributes with probability 0.5 and
re-running the attribute metrics; :func:`subsample_attributes` reproduces that
procedure.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Sequence, TypeVar, Union

from ..engine import dispatchable, kernel
from ..graph.frozen import FrozenSAN
from ..graph.san import SAN
from ..utils.rng import RngLike, ensure_rng
from ..utils.validation import require_probability

T = TypeVar("T")
Node = Hashable
SANLike = Union[SAN, FrozenSAN]


def sample_nodes(san: SANLike, count: int, rng: RngLike = None) -> List[Node]:
    """Uniform sample (without replacement) of social nodes."""
    generator = ensure_rng(rng)
    nodes = list(san.social_nodes())
    if count >= len(nodes):
        return nodes
    return generator.sample(nodes, count)


@dispatchable("sample_social_edges")
def sample_social_edges(
    san: SANLike, count: int, rng: RngLike = None
) -> List[tuple]:
    """Uniform sample (without replacement) of directed social edges."""
    generator = ensure_rng(rng)
    edges = list(san.social_edges())
    if count >= len(edges):
        return edges
    return generator.sample(edges, count)


@kernel("sample_social_edges")
def _sample_social_edges_frozen(
    san: FrozenSAN, count: int, rng: RngLike = None
) -> List[tuple]:
    """Sample edge positions from the CSR edge arrays, never materializing
    the full edge list."""
    generator = ensure_rng(rng)
    num_edges = san.social.number_of_edges()
    sources, targets = san.social.edge_arrays()
    labels = san.social.labels()
    if count >= num_edges:
        chosen: Sequence[int] = range(num_edges)
    else:
        chosen = generator.sample(range(num_edges), count)
    return [(labels[sources[i]], labels[targets[i]]) for i in chosen]


def subsample_attributes(
    san: SANLike, keep_probability: float = 0.5, rng: RngLike = None
) -> SAN:
    """Drop each user's attribute links independently with probability ``1 - keep``.

    Reproduces the Section 4.3 subsampling validation: the returned SAN shares
    the social layer with the input (copied) but retains each attribute link
    with probability ``keep_probability``.
    """
    require_probability(keep_probability, "keep_probability")
    generator = ensure_rng(rng)
    subsampled = SAN()
    for node in san.social_nodes():
        subsampled.add_social_node(node)
    for source, target in san.social_edges():
        subsampled.add_social_edge(source, target)
    for social, attribute in san.attribute_edges():
        if generator.random() < keep_probability:
            info = san.attribute_info(attribute)
            subsampled.add_attribute_edge(
                social, attribute, attr_type=info.attr_type, value=info.value
            )
    return subsampled


def drop_users_attributes(
    san: SANLike, keep_probability: float = 0.78, rng: RngLike = None
) -> SAN:
    """Hide *all* attributes of a random subset of users.

    Models the paper's observation that only ~22% of Google+ users declare at
    least one attribute: each user keeps their full attribute list with
    probability ``keep_probability`` and loses every attribute otherwise.
    """
    require_probability(keep_probability, "keep_probability")
    generator = ensure_rng(rng)
    result = SAN()
    for node in san.social_nodes():
        result.add_social_node(node)
    for source, target in san.social_edges():
        result.add_social_edge(source, target)
    keep = {
        node for node in san.social_nodes() if generator.random() < keep_probability
    }
    for social, attribute in san.attribute_edges():
        if social in keep:
            info = san.attribute_info(attribute)
            result.add_attribute_edge(
                social, attribute, attr_type=info.attr_type, value=info.value
            )
    return result


def reservoir_sample(items: Iterable[T], count: int, rng: RngLike = None) -> List[T]:
    """Classic reservoir sampling: a uniform sample of ``count`` items from a stream."""
    generator = ensure_rng(rng)
    reservoir: List[T] = []
    for index, item in enumerate(items):
        if index < count:
            reservoir.append(item)
        else:
            slot = generator.randint(0, index)
            if slot < count:
                reservoir[slot] = item
    return reservoir


def weighted_choice(
    items: Sequence[T], weights: Sequence[float], rng: RngLike = None
) -> T:
    """Draw one item with probability proportional to its (non-negative) weight.

    Falls back to a uniform draw when every weight is zero.
    """
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    generator = ensure_rng(rng)
    total = 0.0
    for weight in weights:
        if weight < 0:
            raise ValueError("weights must be non-negative")
        total += weight
    if total == 0:
        return items[generator.randrange(len(items))]
    threshold = generator.random() * total
    cumulative = 0.0
    for item, weight in zip(items, weights):
        cumulative += weight
        if cumulative >= threshold:
            return item
    return items[-1]
