"""Random walks on the social layer of a SAN.

Both application benchmarks (SybilLimit random routes and Drac-style
anonymous-communication path selection) are built on random walks over the
undirected projection of the social graph, optionally with a degree cap as the
paper imposes (bound of 100).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set

from ..graph.digraph import DiGraph
from ..graph.san import SAN
from ..utils.rng import RngLike, ensure_rng

Node = Hashable


def capped_undirected_adjacency(
    graph: DiGraph, degree_cap: Optional[int] = None, rng: RngLike = None
) -> Dict[Node, List[Node]]:
    """Undirected adjacency lists with each node's neighbor list capped.

    SybilLimit bounds the effective node degree; when a node exceeds the cap a
    uniform subset of its neighbors of exactly ``degree_cap`` is retained.  The
    cap is applied per endpoint, so the resulting structure may be asymmetric
    (as in the deployed protocol where each node selects its own edges).
    """
    generator = ensure_rng(rng)
    adjacency: Dict[Node, List[Node]] = {}
    for node in graph.nodes():
        neighbors = list(graph.neighbors(node))
        if degree_cap is not None and len(neighbors) > degree_cap:
            neighbors = generator.sample(neighbors, degree_cap)
        adjacency[node] = neighbors
    return adjacency


def random_walk(
    adjacency: Dict[Node, Sequence[Node]],
    start: Node,
    length: int,
    rng: RngLike = None,
) -> List[Node]:
    """A simple random walk of ``length`` steps starting at ``start``.

    Returns the visited node sequence including the start; the walk stops early
    at a node with no neighbors.
    """
    generator = ensure_rng(rng)
    path = [start]
    current = start
    for _ in range(length):
        neighbors = adjacency.get(current)
        if not neighbors:
            break
        current = neighbors[generator.randrange(len(neighbors))]
        path.append(current)
    return path


def random_walk_on_san(
    san: SAN,
    start: Node,
    length: int,
    degree_cap: Optional[int] = None,
    rng: RngLike = None,
) -> List[Node]:
    """Convenience wrapper: random walk on a SAN's undirected social projection."""
    generator = ensure_rng(rng)
    adjacency = capped_undirected_adjacency(san.social, degree_cap=degree_cap, rng=generator)
    return random_walk(adjacency, start, length, rng=generator)


def stationary_degree_distribution(adjacency: Dict[Node, Sequence[Node]]) -> Dict[Node, float]:
    """Stationary distribution of the simple random walk (proportional to degree)."""
    total = sum(len(neighbors) for neighbors in adjacency.values())
    if total == 0:
        size = len(adjacency)
        return {node: 1.0 / size for node in adjacency} if size else {}
    return {node: len(neighbors) / total for node, neighbors in adjacency.items()}
