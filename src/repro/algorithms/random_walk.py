"""Random walks on the social layer of a SAN.

Both application benchmarks (SybilLimit random routes and Drac-style
anonymous-communication path selection) are built on random walks over the
undirected projection of the social graph, optionally with a degree cap as the
paper imposes (bound of 100).

The batch entry point :func:`random_walks` dispatches through the
:mod:`repro.engine` registry: on a frozen graph
(:class:`~repro.graph.frozen.FrozenDiGraph`) all walks advance together, one
vectorized step per hop over a (possibly degree-capped) CSR adjacency, with
a numpy ``Generator`` seeded from the caller's ``random.Random`` stream.
:func:`capped_undirected_adjacency` likewise carries a frozen kernel that
slices neighbor lists straight out of the undirected CSR rows.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..engine import PARALLEL, dispatchable, kernel
from ..engine import parallel as par
from ..graph.digraph import DiGraph
from ..graph.frozen import FrozenDiGraph
from ..utils.rng import RngLike, ensure_rng

Node = Hashable
GraphLike = Union[DiGraph, FrozenDiGraph]


@dispatchable("capped_undirected_adjacency")
def capped_undirected_adjacency(
    graph: GraphLike, degree_cap: Optional[int] = None, rng: RngLike = None
) -> Dict[Node, List[Node]]:
    """Undirected adjacency lists with each node's neighbor list capped.

    SybilLimit bounds the effective node degree; when a node exceeds the cap a
    uniform subset of its neighbors of exactly ``degree_cap`` is retained.  The
    cap is applied per endpoint, so the resulting structure may be asymmetric
    (as in the deployed protocol where each node selects its own edges).
    """
    generator = ensure_rng(rng)
    adjacency: Dict[Node, List[Node]] = {}
    for node in graph.nodes():
        neighbors = list(graph.neighbors(node))
        if degree_cap is not None and len(neighbors) > degree_cap:
            neighbors = generator.sample(neighbors, degree_cap)
        adjacency[node] = neighbors
    return adjacency


@kernel("capped_undirected_adjacency")
def _capped_undirected_adjacency_frozen(
    graph: FrozenDiGraph, degree_cap: Optional[int] = None, rng: RngLike = None
) -> Dict[Node, List[Node]]:
    indptr, indices = capped_undirected_csr(graph, degree_cap=degree_cap, rng=rng)
    labels = graph.labels()
    return {
        node: [labels[j] for j in indices[indptr[i] : indptr[i + 1]]]
        for i, node in enumerate(labels)
    }


def capped_undirected_csr(
    graph: FrozenDiGraph, degree_cap: Optional[int] = None, rng: RngLike = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Degree-capped undirected CSR of a frozen graph (frozen-kernel helper).

    Nodes within the cap keep their CSR row as-is; rows over the cap retain a
    uniform sample of exactly ``degree_cap`` neighbors.  Like the adjacency
    dict above, the cap is per row, so the result may be asymmetric.
    """
    indptr, indices = graph.undirected_csr()
    if degree_cap is None:
        return indptr, indices
    degrees = np.diff(indptr)
    over = np.nonzero(degrees > degree_cap)[0]
    if over.size == 0:
        return indptr, indices
    generator = ensure_rng(rng)
    # Drop (deg - cap) random entries from each over-cap row via one boolean
    # mask over the indices array; rows within the cap are copied untouched
    # and row sortedness survives because dropping preserves order.
    keep = np.ones(indices.size, dtype=bool)
    for i in over:
        row_start = int(indptr[i])
        row_degree = int(degrees[i])
        dropped = generator.sample(range(row_degree), row_degree - degree_cap)
        keep[row_start + np.asarray(dropped, dtype=np.int64)] = False
    new_counts = np.minimum(degrees, degree_cap)
    new_indptr = np.zeros(indptr.size, dtype=np.int64)
    np.cumsum(new_counts, out=new_indptr[1:])
    return new_indptr, indices[keep]


def random_walk(
    adjacency: Dict[Node, Sequence[Node]],
    start: Node,
    length: int,
    rng: RngLike = None,
) -> List[Node]:
    """A simple random walk of ``length`` steps starting at ``start``.

    Returns the visited node sequence including the start; the walk stops early
    at a node with no neighbors.
    """
    generator = ensure_rng(rng)
    path = [start]
    current = start
    for _ in range(length):
        neighbors = adjacency.get(current)
        if not neighbors:
            break
        current = neighbors[generator.randrange(len(neighbors))]
        path.append(current)
    return path


@dispatchable("random_walks")
def random_walks(
    graph: GraphLike,
    starts: Sequence[Node],
    length: int,
    degree_cap: Optional[int] = None,
    rng: RngLike = None,
) -> List[List[Node]]:
    """Batch of random walks over the (optionally capped) undirected projection.

    Returns one visited-node path per start, each including its start node and
    stopping early at dead ends — the batched counterpart of calling
    :func:`random_walk` per start on :func:`capped_undirected_adjacency`.  On
    the frozen backend all walks advance together, one vectorized step per
    hop.
    """
    generator = ensure_rng(rng)
    adjacency = capped_undirected_adjacency(graph, degree_cap=degree_cap, rng=generator)
    return [random_walk(adjacency, start, length, rng=generator) for start in starts]


def batched_walk_ids(
    indptr: np.ndarray,
    indices: np.ndarray,
    start_ids: np.ndarray,
    length: int,
    np_rng: np.random.Generator,
) -> np.ndarray:
    """Vectorized walks over a CSR adjacency, as a ``(walks, length+1)`` id matrix.

    Column 0 holds the start ids; a walk that reaches a degree-0 node stops
    and pads the rest of its row with -1.
    """
    num_walks = int(start_ids.size)
    paths = np.full((num_walks, length + 1), -1, dtype=np.int64)
    paths[:, 0] = start_ids
    if num_walks == 0 or length == 0:
        return paths
    degrees = np.diff(indptr)
    current = start_ids.astype(np.int64, copy=True)
    alive = np.ones(num_walks, dtype=bool)
    all_alive = True
    for step in range(1, length + 1):
        current_degrees = degrees[current]
        if all_alive and (current_degrees > 0).all():
            # Fast path: every walk advances, no per-walk bookkeeping needed.
            current = indices[indptr[current] + np_rng.integers(0, current_degrees)]
            paths[:, step] = current
            continue
        all_alive = False
        alive &= current_degrees > 0
        if not alive.any():
            break
        active = np.nonzero(alive)[0]
        active_nodes = current[active]
        active_degrees = degrees[active_nodes]
        draws = np_rng.integers(0, active_degrees)
        next_nodes = indices[indptr[active_nodes] + draws]
        current[active] = next_nodes
        paths[active, step] = next_nodes
    return paths


#: Walks per RNG chunk of the batched frozen/parallel kernels.  Both kernels
#: seed chunk ``i`` with ``default_rng([base_seed, i])`` over fixed-size
#: chunks, so the single-core and process-pool paths draw identical streams
#: regardless of worker count.
WALK_CHUNK_SIZE = 2048


def _walk_chunk_starts(start_ids: np.ndarray) -> List[np.ndarray]:
    """Fixed-size chunks of the start-id array (possibly a short tail)."""
    return [
        start_ids[lo : lo + WALK_CHUNK_SIZE]
        for lo in range(0, start_ids.size, WALK_CHUNK_SIZE)
    ]


def _chunked_walk_ids(
    indptr: np.ndarray,
    indices: np.ndarray,
    start_ids: np.ndarray,
    length: int,
    base_seed: int,
) -> np.ndarray:
    """Single-core reference of the chunked-RNG walk batch."""
    chunks = _walk_chunk_starts(start_ids)
    if not chunks:
        return np.full((0, length + 1), -1, dtype=np.int64)
    paths = [
        batched_walk_ids(
            indptr, indices, chunk, length, np.random.default_rng([base_seed, i])
        )
        for i, chunk in enumerate(chunks)
    ]
    return np.concatenate(paths) if len(paths) > 1 else paths[0]


@kernel("random_walks")
def _random_walks_frozen(
    graph: FrozenDiGraph,
    starts: Sequence[Node],
    length: int,
    degree_cap: Optional[int] = None,
    rng: RngLike = None,
) -> List[List[Node]]:
    generator = ensure_rng(rng)
    indptr, indices = capped_undirected_csr(graph, degree_cap=degree_cap, rng=generator)
    start_ids = np.fromiter(
        (graph.index_of(start) for start in starts), dtype=np.int64, count=len(starts)
    )
    base_seed = generator.getrandbits(64)
    paths = _chunked_walk_ids(indptr, indices, start_ids, length, base_seed)
    return _paths_to_labels(graph, paths)


def _walk_chunk(
    csr_spec: par.SharedCSRSpec,
    start_ids: np.ndarray,
    length: int,
    base_seed: int,
    chunk_index: int,
) -> np.ndarray:
    """Pool worker: one fixed-size walk chunk with its deterministic stream."""
    views = par.attach_views(csr_spec)
    return batched_walk_ids(
        views["indptr"],
        views["indices"],
        start_ids,
        length,
        np.random.default_rng([base_seed, chunk_index]),
    )


@kernel("random_walks", backend=PARALLEL, requires="parallel", priority=20)
def _random_walks_parallel(
    graph: FrozenDiGraph,
    starts: Sequence[Node],
    length: int,
    degree_cap: Optional[int] = None,
    rng: RngLike = None,
) -> List[List[Node]]:
    """Process-pool walk batches: same chunks, same seeds, different cores.

    The frozen kernel already advances walks in fixed-size chunks with one
    RNG stream per chunk index; here the chunks run on the pool instead, so
    the drawn steps — and thus the returned paths — are bit-identical.  The
    degree-capped CSR depends on the caller's ``random.Random`` stream and is
    exported as a per-call scratch segment; the uncapped CSR reuses the
    graph's memoized export.
    """
    generator = ensure_rng(rng)
    # Consume the caller's stream in the frozen kernel's exact order: the
    # degree-cap sampling first, the walk base seed second.
    scratch: Optional[par.SharedCSR] = None
    if degree_cap is None:
        csr_spec = par.shared_undirected_csr(graph)
    else:
        indptr, indices = capped_undirected_csr(
            graph, degree_cap=degree_cap, rng=generator
        )
        scratch = par.SharedCSR({"indptr": indptr, "indices": indices})
        csr_spec = scratch.spec
    start_ids = np.fromiter(
        (graph.index_of(start) for start in starts), dtype=np.int64, count=len(starts)
    )
    base_seed = generator.getrandbits(64)
    chunks = _walk_chunk_starts(start_ids)
    if not chunks:
        if scratch is not None:
            scratch.unlink()
        return []
    try:
        paths = par.run_chunks(
            _walk_chunk,
            [
                (csr_spec, chunk, length, base_seed, i)
                for i, chunk in enumerate(chunks)
            ],
        )
    finally:
        if scratch is not None:
            scratch.unlink()
    matrix = np.concatenate(paths) if len(paths) > 1 else paths[0]
    return _paths_to_labels(graph, matrix)


def _paths_to_labels(graph: FrozenDiGraph, paths: np.ndarray) -> List[List[Node]]:
    """Convert an id-path matrix to label paths, truncating at the -1 padding."""
    label_array = np.array(graph.labels(), dtype=object)
    # One fancy-indexing pass over the whole matrix (padding mapped to id 0,
    # sliced away below), then a cheap per-row truncation: valid ids form a
    # prefix of each row by construction.
    rows = label_array[np.where(paths >= 0, paths, 0)].tolist()
    lengths = (paths >= 0).sum(axis=1).tolist()
    full = paths.shape[1]
    return [
        row if count == full else row[:count] for row, count in zip(rows, lengths)
    ]


def random_walk_on_san(
    san,
    start: Node,
    length: int,
    degree_cap: Optional[int] = None,
    rng: RngLike = None,
) -> List[Node]:
    """Convenience wrapper: random walk on a SAN's undirected social projection.

    Accepts either SAN backend; the single walk goes through
    :func:`random_walks` so frozen inputs use the batched kernel.
    """
    return random_walks(san.social, [start], length, degree_cap=degree_cap, rng=rng)[0]


def stationary_degree_distribution(adjacency: Dict[Node, Sequence[Node]]) -> Dict[Node, float]:
    """Stationary distribution of the simple random walk (proportional to degree)."""
    total = sum(len(neighbors) for neighbors in adjacency.values())
    if total == 0:
        size = len(adjacency)
        return {node: 1.0 / size for node in adjacency} if size else {}
    return {node: len(neighbors) / total for node, neighbors in adjacency.items()}
