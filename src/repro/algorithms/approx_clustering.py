"""Constant-time approximation of the average clustering coefficient.

This implements Algorithm 2 from the paper's Appendix A.  A triple
``t = (v, u, w)`` has center ``u`` and endpoints ``v, w`` drawn from the
social neighbors of ``u``.  The mapping ``F`` scores a triple 0/1/2 in a
directed SAN depending on whether the endpoints are unconnected, connected in
one direction, or reciprocally connected.  Sampling ``K = ceil(ln(2 nu) /
(2 eps^2))`` triples uniformly (center uniform over the node set, endpoints
uniform over the center's neighbor pairs) yields an estimate within ``eps`` of
the true average clustering coefficient with probability at least ``1 - 1/nu``
(Hoeffding's bound, Theorem 3).
"""

from __future__ import annotations

import math
from typing import Hashable, Optional, Sequence

from ..graph.protocol import SANView
from ..utils.rng import RngLike, ensure_rng

Node = Hashable


def required_samples(epsilon: float = 0.002, nu: float = 100.0) -> int:
    """The paper's sample size ``K = ceil(ln(2 nu) / (2 eps^2))``."""
    if epsilon <= 0:
        raise ValueError(f"epsilon must be > 0, got {epsilon}")
    if nu <= 0:
        raise ValueError(f"nu must be > 0, got {nu}")
    return int(math.ceil(math.log(2 * nu) / (2 * epsilon * epsilon)))


def triple_score(san: SANView, first: Node, second: Node) -> int:
    """The mapping ``F`` on a directed SAN: 0, 1, or 2 links between endpoints."""
    forward = san.social.has_edge(first, second)
    backward = san.social.has_edge(second, first)
    return int(forward) + int(backward)


def approximate_average_clustering(
    san: SANView,
    population: Optional[Sequence[Node]] = None,
    epsilon: float = 0.002,
    nu: float = 100.0,
    num_samples: Optional[int] = None,
    rng: RngLike = None,
) -> float:
    """Algorithm 2: sampled estimate of the average clustering coefficient.

    Parameters
    ----------
    population:
        The node set ``Omega`` whose average clustering coefficient is wanted:
        social nodes (default), attribute nodes, or any subset.
    epsilon, nu:
        Accuracy / confidence parameters from the paper; ignored when
        ``num_samples`` is given explicitly.
    num_samples:
        Override for the number of sampled triples ``K``.
    """
    generator = ensure_rng(rng)
    if population is None:
        population = list(san.social_nodes())
    else:
        population = list(population)
    if not population:
        return 0.0
    samples = num_samples if num_samples is not None else required_samples(epsilon, nu)
    if samples <= 0:
        return 0.0

    # Every draw is a valid sample: a center with fewer than two social
    # neighbors has c(u) = 0 and contributes a zero-scored triple, exactly as
    # in the exact definition — there is no rejection, so the estimator
    # always draws exactly ``samples`` triples.
    total = 0
    for _ in range(samples):
        center = population[generator.randrange(len(population))]
        neighbors = list(san.social_neighbors(center))
        if len(neighbors) < 2:
            continue
        first_index = generator.randrange(len(neighbors))
        second_index = generator.randrange(len(neighbors) - 1)
        if second_index >= first_index:
            second_index += 1
        total += triple_score(san, neighbors[first_index], neighbors[second_index])
    # I = 1 because the SAN social layer is directed, so divide by 2K.
    return total / (2 * samples)


def approximate_social_clustering(
    san: SANView,
    epsilon: float = 0.002,
    nu: float = 100.0,
    num_samples: Optional[int] = None,
    rng: RngLike = None,
) -> float:
    """Sampled average *social* clustering coefficient (``Omega = V_s``)."""
    return approximate_average_clustering(
        san,
        population=list(san.social_nodes()),
        epsilon=epsilon,
        nu=nu,
        num_samples=num_samples,
        rng=rng,
    )


def approximate_attribute_clustering(
    san: SANView,
    epsilon: float = 0.002,
    nu: float = 100.0,
    num_samples: Optional[int] = None,
    rng: RngLike = None,
) -> float:
    """Sampled average *attribute* clustering coefficient (``Omega = V_a``)."""
    return approximate_average_clustering(
        san,
        population=list(san.attribute_nodes()),
        epsilon=epsilon,
        nu=nu,
        num_samples=num_samples,
        rng=rng,
    )
