"""HyperANF: approximate neighbourhood function and effective diameter.

The neighbourhood function ``N(d)`` counts the number of ordered pairs of
nodes at directed distance at most ``d``.  HyperANF estimates it by keeping a
HyperLogLog counter per node initialised with the node itself and iterating

    counter[v]  <-  counter[v]  union  (union over successors w of counter[w])

so that after ``d`` iterations ``counter[v]`` approximates the set of nodes
reachable from ``v`` in at most ``d`` hops.  The effective diameter is then
read off ``N(d)`` as the (interpolated) 90th-percentile distance, exactly as
the paper does for Figure 4c.

:func:`neighbourhood_function` dispatches through the :mod:`repro.engine`
registry: on a frozen graph (:class:`~repro.graph.frozen.FrozenDiGraph`) the
per-node counters live in one ``(n, 2**precision)`` register matrix and each
HyperANF iteration is a single ``np.maximum.reduceat`` sweep over the CSR
out-adjacency — the per-register Python loops of the portable path disappear
entirely, which is what makes ``social_effective_diameter`` tractable on
CSR-scale graphs.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Union

import numpy as np

from ..engine import PARALLEL, dispatchable, kernel
from ..engine import parallel as par
from ..graph.digraph import DiGraph
from ..graph.frozen import FrozenDiGraph
from .hyperloglog import (
    HyperLogLog,
    cardinality_of_register_matrix,
    register_matrix_for_items,
)

Node = Hashable
GraphLike = Union[DiGraph, FrozenDiGraph]


@dispatchable("neighbourhood_function")
def neighbourhood_function(
    graph: GraphLike,
    precision: int = 7,
    max_iterations: int = 64,
    salt: int = 0,
) -> List[float]:
    """Approximate neighbourhood function ``[N(0), N(1), ..., N(D)]``.

    Iteration stops when the total estimate stops growing (within a relative
    tolerance), which happens once every counter has stabilised.
    """
    counters: Dict[Node, HyperLogLog] = {}
    for node in graph.nodes():
        counter = HyperLogLog(precision=precision, salt=salt)
        counter.add(node)
        counters[node] = counter

    totals: List[float] = [sum(c.cardinality() for c in counters.values())]
    for _ in range(max_iterations):
        new_counters: Dict[Node, HyperLogLog] = {}
        changed_any = False
        for node in graph.nodes():
            merged = counters[node].copy()
            for successor in graph.successors(node):
                if merged.union_update(counters[successor]):
                    changed_any = True
            new_counters[node] = merged
        counters = new_counters
        totals.append(sum(c.cardinality() for c in counters.values()))
        if not changed_any:
            break
        # Convergence check on the totals as a secondary stop condition.
        if len(totals) >= 2 and totals[-2] > 0:
            relative_growth = (totals[-1] - totals[-2]) / totals[-2]
            if relative_growth < 1e-4:
                break
    return totals


@kernel("neighbourhood_function")
def _neighbourhood_function_frozen(
    graph: FrozenDiGraph,
    precision: int = 7,
    max_iterations: int = 64,
    salt: int = 0,
) -> List[float]:
    """Register-matrix HyperANF: one ``maximum.reduceat`` per iteration.

    Registers are integers updated with ``max``, so the estimates match the
    portable per-node counters exactly (up to float summation order in the
    totals).
    """
    registers = register_matrix_for_items(graph.labels(), precision, salt)
    totals: List[float] = [float(cardinality_of_register_matrix(registers).sum())]
    indptr, indices = graph.out_csr()
    nonempty = np.diff(indptr) > 0
    # reduceat offsets: the CSR start of every non-empty row.  Because empty
    # rows contribute no entries, consecutive offsets delimit exactly one
    # row's successor block each.
    offsets = indptr[:-1][nonempty]
    for _ in range(max_iterations):
        merged = registers.copy()
        if indices.size:
            neighbor_max = np.maximum.reduceat(registers[indices], offsets, axis=0)
            merged[nonempty] = np.maximum(merged[nonempty], neighbor_max)
        changed_any = bool((merged != registers).any())
        registers = merged
        totals.append(float(cardinality_of_register_matrix(registers).sum()))
        if not changed_any:
            break
        if len(totals) >= 2 and totals[-2] > 0:
            relative_growth = (totals[-1] - totals[-2]) / totals[-2]
            if relative_growth < 1e-4:
                break
    return totals


def _hyperanf_chunk(
    csr_spec: par.SharedCSRSpec,
    cur_spec: par.SharedCSRSpec,
    nxt_spec: par.SharedCSRSpec,
    lo: int,
    hi: int,
) -> bool:
    """Pool worker: merge registers of rows ``[lo, hi)`` for one iteration.

    Reads the previous iteration's full register matrix from ``cur_spec``
    and writes only its own row span into ``nxt_spec`` — chunk spans
    partition the rows, so every row is written exactly once per iteration.
    Register merges are integer ``max`` operations; the result is identical
    for any chunking.
    """
    views = par.attach_views(csr_spec)
    indptr, indices = views["indptr"], views["indices"]
    old = par.attach_views(cur_spec)["registers"]
    new = par.attach_output_views(nxt_spec)["registers"]
    row_ptr = indptr[lo : hi + 1]
    merged = old[lo:hi].copy()
    segment = indices[row_ptr[0] : row_ptr[-1]]
    if segment.size:
        local_counts = np.diff(row_ptr)
        nonempty = local_counts > 0
        offsets = (row_ptr[:-1] - row_ptr[0])[nonempty]
        neighbor_max = np.maximum.reduceat(old[segment], offsets, axis=0)
        merged[nonempty] = np.maximum(merged[nonempty], neighbor_max)
    changed = bool((merged != old[lo:hi]).any())
    new[lo:hi] = merged
    return changed


@kernel("neighbourhood_function", backend=PARALLEL, requires="parallel", priority=20)
def _neighbourhood_function_parallel(
    graph: FrozenDiGraph,
    precision: int = 7,
    max_iterations: int = 64,
    salt: int = 0,
) -> List[float]:
    """Process-pool HyperANF: ping-pong shared register buffers.

    Workers merge disjoint row spans of the register matrix in place in
    shared memory; the parent reads the full matrix back for the totals and
    the stop conditions, which are verbatim those of the frozen kernel —
    the totals lists are bit-identical.  The two scratch register segments
    are per-call (they depend on ``precision``/``salt``) and are unlinked on
    every exit path.
    """
    registers = register_matrix_for_items(graph.labels(), precision, salt)
    totals: List[float] = [float(cardinality_of_register_matrix(registers).sum())]
    n = registers.shape[0]
    csr_spec = par.shared_out_csr(graph)
    current = par.SharedCSR({"registers": registers})
    upcoming = par.SharedCSR({"registers": registers})
    try:
        chunks = par.chunk_ranges(n, par.max_workers())
        for _ in range(max_iterations):
            changed = par.run_chunks(
                _hyperanf_chunk,
                [
                    (csr_spec, current.spec, upcoming.spec, lo, hi)
                    for lo, hi in chunks
                ],
            )
            changed_any = any(changed)
            totals.append(
                float(
                    cardinality_of_register_matrix(
                        upcoming.view("registers")
                    ).sum()
                )
            )
            current, upcoming = upcoming, current
            if not changed_any:
                break
            if len(totals) >= 2 and totals[-2] > 0:
                relative_growth = (totals[-1] - totals[-2]) / totals[-2]
                if relative_growth < 1e-4:
                    break
        return totals
    finally:
        current.unlink()
        upcoming.unlink()


def effective_diameter_from_neighbourhood(
    totals: List[float], quantile: float = 0.9
) -> float:
    """Interpolated effective diameter from a neighbourhood function.

    ``totals[d]`` counts pairs within distance ``d`` (including the d=0
    self-pairs).  The effective diameter is the smallest ``d`` such that
    ``totals[d] - totals[0]`` reaches ``quantile`` of the reachable non-self
    pairs, linearly interpolated.
    """
    if len(totals) < 2:
        return 0.0
    baseline = totals[0]
    reachable = totals[-1] - baseline
    if reachable <= 0:
        return 0.0
    target = quantile * reachable
    for distance in range(1, len(totals)):
        mass = totals[distance] - baseline
        if mass >= target:
            previous_mass = totals[distance - 1] - baseline
            span = mass - previous_mass
            if span <= 0:
                return float(distance)
            fraction = (target - previous_mass) / span
            return (distance - 1) + fraction
    return float(len(totals) - 1)


def effective_diameter(
    graph: GraphLike,
    precision: int = 7,
    quantile: float = 0.9,
    max_iterations: int = 64,
    salt: int = 0,
) -> float:
    """HyperANF estimate of the directed effective diameter of ``graph``."""
    totals = neighbourhood_function(
        graph, precision=precision, max_iterations=max_iterations, salt=salt
    )
    return effective_diameter_from_neighbourhood(totals, quantile=quantile)


def exact_neighbourhood_function(graph: GraphLike, max_depth: Optional[int] = None) -> List[float]:
    """Exact neighbourhood function via per-node BFS (small graphs only).

    Provided for validating the HyperANF estimate in tests.
    """
    from .traversal import bfs_distances

    max_distance = 0
    histogram: Dict[int, int] = {}
    for node in graph.nodes():
        for target, distance in bfs_distances(graph, node, max_depth=max_depth).items():
            histogram[distance] = histogram.get(distance, 0) + 1
            if distance > max_distance:
                max_distance = distance
    totals: List[float] = []
    cumulative = 0
    for distance in range(max_distance + 1):
        cumulative += histogram.get(distance, 0)
        totals.append(float(cumulative))
    return totals
