"""Statistics helpers used by the measurement and fitting layers.

These are intentionally dependency-light (pure Python plus ``math``) so the
measurement pipeline does not require numpy for basic summaries; the fitting
package uses numpy where vectorisation matters.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple


def empirical_pmf(values: Iterable[int]) -> Dict[int, float]:
    """Empirical probability mass function of integer samples.

    Returns a dict mapping value -> fraction of samples equal to that value.
    """
    counts = Counter(values)
    total = sum(counts.values())
    if total == 0:
        return {}
    return {value: count / total for value, count in sorted(counts.items())}


def ccdf(values: Iterable[float]) -> List[Tuple[float, float]]:
    """Complementary CDF points ``(x, P[X >= x])`` for the observed values."""
    ordered = sorted(values)
    total = len(ordered)
    if total == 0:
        return []
    points: List[Tuple[float, float]] = []
    index = 0
    while index < total:
        value = ordered[index]
        points.append((value, (total - index) / total))
        while index < total and ordered[index] == value:
            index += 1
    return points


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (``q`` in [0, 100]) of ``values``."""
    if not values:
        raise ValueError("cannot take the percentile of an empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(ordered[low])
    weight = rank - low
    return float(ordered[low] * (1 - weight) + ordered[high] * weight)


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean / std / min / median / max summary of a numeric sequence."""
    if not values:
        return {"count": 0, "mean": 0.0, "std": 0.0, "min": 0.0, "median": 0.0, "max": 0.0}
    count = len(values)
    mean = sum(values) / count
    variance = sum((value - mean) ** 2 for value in values) / count
    return {
        "count": count,
        "mean": mean,
        "std": math.sqrt(variance),
        "min": float(min(values)),
        "median": percentile(values, 50),
        "max": float(max(values)),
    }


def two_sample_ks_statistic(
    first: Sequence[float], second: Sequence[float]
) -> float:
    """Two-sample Kolmogorov-Smirnov statistic ``sup_x |F1(x) - F2(x)|``.

    Tie-aware: both pointers advance past every sample equal to the current
    value before the CDF gap is measured, which matters for the discrete
    (degree) distributions this library compares — a naive merge inflates the
    statistic by reading the gap mid-tie.  Used by the generative-engine
    distributional-parity gate.
    """
    if len(first) == 0 or len(second) == 0:  # len(): accept numpy arrays too
        raise ValueError("two_sample_ks_statistic needs two non-empty samples")
    a = sorted(first)
    b = sorted(second)
    n, m = len(a), len(b)
    i = j = 0
    statistic = 0.0
    while i < n or j < m:
        if j >= m or (i < n and a[i] <= b[j]):
            value = a[i]
        else:
            value = b[j]
        while i < n and a[i] <= value:
            i += 1
        while j < m and b[j] <= value:
            j += 1
        statistic = max(statistic, abs(i / n - j / m))
    return statistic


def ks_two_sample_threshold(n: int, m: int, alpha: float = 0.001) -> float:
    """Rejection threshold for the two-sample KS test at level ``alpha``.

    ``c(alpha) * sqrt((n + m) / (n * m))`` with
    ``c(alpha) = sqrt(-ln(alpha / 2) / 2)`` — the classical large-sample
    approximation.  Samples from the same distribution exceed this with
    probability ``alpha``.
    """
    if n <= 0 or m <= 0:
        raise ValueError("sample sizes must be positive")
    if not 0 < alpha < 1:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    c = math.sqrt(-0.5 * math.log(alpha / 2))
    return c * math.sqrt((n + m) / (n * m))


def log_binned_histogram(
    values: Iterable[int], bins_per_decade: int = 10
) -> List[Tuple[float, float]]:
    """Log-binned probability density of positive integer samples.

    Used to draw degree distributions on log-log axes without the noise of raw
    counts in the tail.  Returns ``(bin_center, density)`` pairs where the
    densities integrate (sum over bin widths) to ~1.
    """
    positives = [value for value in values if value > 0]
    if not positives:
        return []
    total = len(positives)
    max_value = max(positives)
    num_bins = max(1, int(math.ceil(math.log10(max_value + 1) * bins_per_decade)))
    edges = [10 ** (index / bins_per_decade) for index in range(num_bins + 1)]
    counts = [0] * num_bins
    for value in positives:
        position = math.log10(value) * bins_per_decade
        bin_index = min(int(position), num_bins - 1)
        counts[bin_index] += 1
    points = []
    for bin_index, count in enumerate(counts):
        if count == 0:
            continue
        low, high = edges[bin_index], edges[bin_index + 1]
        width = high - low
        center = math.sqrt(low * high)
        points.append((center, count / (total * width)))
    return points


def log_binned_average(
    pairs: Iterable[Tuple[float, float]], bins_per_decade: int = 10
) -> List[Tuple[float, float]]:
    """Average the second coordinate within logarithmic bins of the first.

    Used for knn-style plots (degree on the x axis, an average quantity on the
    y axis).  Pairs with non-positive x are ignored.
    """
    cleaned = [(x, y) for x, y in pairs if x > 0]
    if not cleaned:
        return []
    max_x = max(x for x, _ in cleaned)
    num_bins = max(1, int(math.ceil(math.log10(max_x + 1) * bins_per_decade)))
    sums = [0.0] * num_bins
    counts = [0] * num_bins
    for x, y in cleaned:
        position = math.log10(x) * bins_per_decade
        bin_index = min(int(position), num_bins - 1)
        sums[bin_index] += y
        counts[bin_index] += 1
    points = []
    for bin_index in range(num_bins):
        if counts[bin_index] == 0:
            continue
        low = 10 ** (bin_index / bins_per_decade)
        high = 10 ** ((bin_index + 1) / bins_per_decade)
        center = math.sqrt(low * high)
        points.append((center, sums[bin_index] / counts[bin_index]))
    return points
