"""Random-number-generator plumbing.

Every stochastic component in the library accepts either a seed, an existing
``random.Random`` instance, or ``None``.  Centralising the coercion here keeps
experiments reproducible: a single integer seed at the top of a benchmark
deterministically derives the generators used by each sub-component.
"""

from __future__ import annotations

import random
from typing import List, Union

RngLike = Union[int, random.Random, None]


def ensure_rng(rng: RngLike = None) -> random.Random:
    """Coerce ``rng`` into a ``random.Random`` instance.

    ``None`` yields a generator seeded from system entropy, an integer seeds a
    fresh generator, and an existing generator is returned unchanged.
    """
    if rng is None:
        # repro: lint-ignore[R001] -- the None branch is the documented,
        # caller-explicit opt-in to system entropy; every library default
        # passes a named seed (DEFAULT_FIGURE_SEED, DEFAULT_LIKELIHOOD_SEED)
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    if isinstance(rng, int):
        return random.Random(rng)
    raise TypeError(f"cannot interpret {rng!r} as a random number generator")


def spawn_rngs(rng: RngLike, count: int) -> List[random.Random]:
    """Derive ``count`` independent child generators from ``rng``.

    Children are seeded with draws from the parent so that components consuming
    them do not interleave their random streams.
    """
    parent = ensure_rng(rng)
    return [random.Random(parent.getrandbits(64)) for _ in range(count)]
