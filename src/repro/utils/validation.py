"""Small argument-validation helpers shared across the library."""

from __future__ import annotations


def require_positive(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def require_probability(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value
