"""Shared utilities: statistics helpers, RNG management, validation."""

from .rng import ensure_rng, spawn_rngs
from .stats import (
    ccdf,
    empirical_pmf,
    ks_two_sample_threshold,
    log_binned_average,
    log_binned_histogram,
    percentile,
    summarize,
    two_sample_ks_statistic,
)
from .validation import require_non_negative, require_positive, require_probability

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "ccdf",
    "empirical_pmf",
    "ks_two_sample_threshold",
    "two_sample_ks_statistic",
    "log_binned_average",
    "log_binned_histogram",
    "percentile",
    "summarize",
    "require_non_negative",
    "require_positive",
    "require_probability",
]
