"""repro — reproduction of "Evolution of Social-Attribute Networks" (IMC 2012).

The package is organised as:

* :mod:`repro.graph` — the SAN data structure (directed social layer plus an
  undirected social-to-attribute bipartite layer);
* :mod:`repro.engine` — the backend-dispatch engine: a kernel registry keyed
  by (operation, backend) that routes each call to the portable or the
  vectorized frozen/scipy implementation;
* :mod:`repro.algorithms` — graph algorithms (BFS, WCC, HyperANF, clustering
  coefficients including the paper's constant-time approximation, sampling,
  random walks);
* :mod:`repro.metrics` — every Section 3 / Section 4 measurement;
* :mod:`repro.fitting` — degree-distribution fitting (power law, discrete
  lognormal, cutoff power law) and model selection;
* :mod:`repro.models` — the paper's generative model (LAPA + RR-SAN,
  Algorithm 1), its theory, and the Zhel / MAG baselines;
* :mod:`repro.synthetic` — the synthetic Google+ ground-truth simulator;
* :mod:`repro.crawler` — the BFS snapshot crawler and privacy model;
* :mod:`repro.applications` — SybilLimit, anonymous communication, prediction;
* :mod:`repro.experiments` — per-figure experiment drivers and text reports.

Quickstart::

    from repro.synthetic import build_workload, small_config
    from repro.crawler import crawl_evolution
    from repro.metrics import san_metric_report

    workload = build_workload(small_config(), rng=7)
    series = crawl_evolution(workload.evolution, workload.snapshot_days)
    print(san_metric_report(series.last()))
"""

from __future__ import annotations

__version__ = "1.0.0"

from .graph import SAN, DiGraph  # noqa: F401  (re-exported convenience types)

__all__ = ["SAN", "DiGraph", "__version__"]
