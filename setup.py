"""Setuptools entry point.

Kept as an executable ``setup.py`` (rather than pyproject-only metadata) so
that ``pip install -e .`` works in offline environments whose setuptools
lacks the PEP 660 editable-wheel path (no ``wheel`` package available).

The library needs only numpy at runtime.  The optional ``fast`` extra pulls
in scipy, whose sparse kernels the dispatch engine (:mod:`repro.engine`)
selects automatically when present::

    pip install -e .          # numpy-only: portable + batched-numpy kernels
    pip install -e .[fast]    # + scipy sparse/csgraph kernels
"""

from setuptools import find_packages, setup

setup(
    name="repro-san",
    version="0.2.0",
    description=(
        "Social-Attribute Network measurement and modeling — a reproduction "
        "of Gong et al., IMC 2012 (Google+), with a CSR-backed frozen graph "
        "engine and backend-dispatched vectorized kernels"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={"fast": ["scipy"]},
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
