"""Section 2.2: crawl coverage and attribute declaration rate.

Paper: the BFS crawl (using both in- and out-lists) covers >= 70% of the known
user base, and roughly 22% of users declare at least one attribute.
"""

from repro.experiments import format_table, section22_crawl_coverage
from repro.metrics import attribute_declaration_fraction


def test_sec22_crawl_coverage(benchmark, snapshot_series, write_result):
    coverage = benchmark.pedantic(
        section22_crawl_coverage, args=(snapshot_series,), rounds=1, iterations=1
    )
    rows = [{"day": day, "coverage": value} for day, value in sorted(coverage.items())]
    write_result("sec22_crawl_coverage", format_table(rows, title="Section 2.2 — crawl coverage"))

    assert all(value >= 0.7 for value in coverage.values())
    assert min(coverage.values()) > 0.0


def test_sec22_attribute_declaration_rate(benchmark, reference_san, write_result):
    fraction = benchmark.pedantic(
        attribute_declaration_fraction, args=(reference_san,), rounds=1, iterations=1
    )
    write_result("sec22_declaration_rate", f"fraction_declaring_at_least_one_attribute={fraction:.4f}")
    assert 0.12 <= fraction <= 0.35
