"""Figures 7 and 12: joint degree distributions and assortativity.

Paper results: the social assortativity of Google+ is nearly neutral (unlike
the clearly positive values of Flickr/LiveJournal/Orkut) and declines over
time; the attribute assortativity is mildly negative/neutral and more stable.
"""

from repro.experiments import figure7_social_jdd, figure12_attribute_jdd, format_series


def test_fig07_social_jdd(benchmark, reference_san, snapshots, write_result):
    result = benchmark.pedantic(
        figure7_social_jdd, args=(reference_san, snapshots), rounds=1, iterations=1
    )
    text = [
        format_series(result["knn"], x_label="out_degree", y_label="knn", title="Figure 7a — social knn"),
        "",
        format_series(
            result["assortativity_evolution"],
            x_label="day",
            y_label="assortativity",
            title="Figure 7b — social assortativity",
        ),
    ]
    write_result("fig07_social_jdd", "\n".join(text))

    knn = result["knn"]
    assert knn, "knn curve must not be empty"
    assert all(value > 0 for _, value in knn)
    assortativity = [value for _, value in result["assortativity_evolution"]]
    # Neutral assortativity: well inside (-0.3, 0.3), unlike traditional OSNs.
    assert all(abs(value) < 0.3 for value in assortativity)


def test_fig12_attribute_jdd(benchmark, reference_san, snapshots, write_result):
    result = benchmark.pedantic(
        figure12_attribute_jdd, args=(reference_san, snapshots), rounds=1, iterations=1
    )
    text = [
        format_series(result["knn"], x_label="social_degree", y_label="knn", title="Figure 12a — attribute knn"),
        "",
        format_series(
            result["assortativity_evolution"],
            x_label="day",
            y_label="assortativity",
            title="Figure 12b — attribute assortativity",
        ),
    ]
    write_result("fig12_attribute_jdd", "\n".join(text))

    assert result["knn"]
    values = [value for _, value in result["assortativity_evolution"]]
    # Attribute assortativity is neutral-to-slightly-negative and bounded.
    assert all(abs(value) < 0.4 for value in values)

    # Stability comparison (paper: attribute assortativity is more stable in
    # phase III than the social one): compare overall ranges.
    social = figure7_social_jdd(reference_san, snapshots)["assortativity_evolution"]
    social_range = max(v for _, v in social) - min(v for _, v in social)
    attribute_range = max(values) - min(values)
    assert attribute_range < social_range + 0.3
