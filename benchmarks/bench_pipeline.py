"""Pipeline benchmark: cached+frozen full-suite run vs naive re-derivation.

The pre-pipeline world ran each figure from a pytest-benchmark file that
derived its own inputs; the pipeline materialises every shared artifact once,
caches it content-addressed on disk, and feeds the figure stages frozen
CSR-backed views.  This bench runs the **full suite** both ways on the same
scenario:

* **naive** — per stage, a fresh in-memory resolver re-derives the stage's
  whole artifact closure (simulate, crawl, estimate, generate) and the stage
  runs on it: the old one-figure-at-a-time cost model;
* **cached** — a warm :func:`repro.experiments.run_pipeline` over a
  pre-populated artifact store: every artifact loads from disk, no recompute.

The cached run must be >= 3x faster at the canonical ``paper-default``
workload while producing byte-identical payloads for every stage — and must
not rebuild a single persistent artifact.  ``BENCH_PIPELINE_SCENARIO``
scales the workload; smaller smoke runs (``small``, ``tiny``) assert
reduced floors because stage self-time (the figure fits) dominates before
the artifact closures have grown.
"""

from __future__ import annotations

import json
import os
import time

from repro.experiments import (
    ArtifactResolver,
    canonical_json,
    experiment_stages,
    format_table,
    get_scenario,
    run_pipeline,
)

SCENARIO = os.environ.get("BENCH_PIPELINE_SCENARIO", "paper-default")

#: Acceptance bar: >= 3x at the canonical paper-default workload, where the
#: per-figure artifact closures (simulate + crawl + estimate + generate)
#: dominate.  Smaller smoke scales assert reduced floors because stage
#: self-time (the distribution fits) dominates before the closures have
#: grown: ~2x at small, and only payload/cache correctness at tiny.
REQUIRED_SPEEDUP = {"tiny": 1.2, "small": 2.0}.get(SCENARIO, 3.0)


def test_pipeline_cached_run_vs_naive_rederivation(tmp_path_factory, write_result, results_dir):
    scenario = get_scenario(SCENARIO)
    cache_dir = tmp_path_factory.mktemp("pipeline-cache")

    # Cold run: populates the content-addressed store (not part of the race).
    cold = run_pipeline(scenario, cache_dir=cache_dir)

    # Cached+frozen full-suite run: every artifact must load, none rebuild.
    warm_start = time.perf_counter()
    warm = run_pipeline(scenario, cache_dir=cache_dir)
    warm_seconds = time.perf_counter() - warm_start

    # Naive per-figure re-derivation: a fresh resolver per stage, no sharing.
    naive_start = time.perf_counter()
    naive_payloads = {}
    for stage in experiment_stages().values():
        resolver = ArtifactResolver(scenario)
        inputs = [resolver.artifact(name) for name in stage.needs]
        naive_payloads[stage.name] = stage.fn(
            *inputs, **scenario.stage_options(stage.name)
        )
    naive_seconds = time.perf_counter() - naive_start

    speedup = naive_seconds / warm_seconds
    rebuilt = warm.recomputed_persistent_artifacts()
    mismatched = [
        name
        for name in warm.stages
        if canonical_json(warm.stages[name].payload)
        != canonical_json(naive_payloads[name])
    ]

    # Write the result artifacts *before* asserting so a failing run still
    # leaves its numbers in benchmarks/results/ for inspection.
    payload = {
        "scenario": SCENARIO,
        "stages": len(warm.stages),
        "naive_seconds": round(naive_seconds, 3),
        "cached_seconds": round(warm_seconds, 3),
        "cold_seconds": round(cold.total_seconds, 3),
        "speedup": round(speedup, 2),
        "required_speedup": REQUIRED_SPEEDUP,
        "warm_rebuilt_artifacts": rebuilt,
        "mismatched_stages": mismatched,
    }
    (results_dir / "bench_pipeline.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    write_result(
        "bench_pipeline",
        format_table(
            [
                {"mode": "naive per-figure", "total_s": round(naive_seconds, 2)},
                {"mode": "pipeline cold (build cache)", "total_s": round(cold.total_seconds, 2)},
                {"mode": "pipeline warm (cached+frozen)", "total_s": round(warm_seconds, 2)},
            ],
            title=(
                f"Full figure suite ({len(warm.stages)} stages, scenario "
                f"{SCENARIO}) — cached speedup {speedup:.1f}x"
            ),
        ),
    )

    # A warm cache recomputes no artifact and reproduces every payload.
    assert rebuilt == [], f"warm run rebuilt artifacts: {rebuilt}"
    assert not mismatched, f"cached payloads diverge from naive: {mismatched}"
    assert speedup >= REQUIRED_SPEEDUP, (
        f"cached full-suite run: expected >= {REQUIRED_SPEEDUP}x over naive "
        f"re-derivation at scenario {SCENARIO!r}, got {speedup:.1f}x"
    )


def test_pipeline_parallel_stages_match_serial(tmp_path_factory, write_result):
    """--jobs changes wall-clock, never payloads."""
    scenario = get_scenario("tiny")
    cache_dir = tmp_path_factory.mktemp("pipeline-jobs-cache")
    serial = run_pipeline(scenario, cache_dir=cache_dir, jobs=1)
    parallel = run_pipeline(scenario, cache_dir=cache_dir, jobs=4)
    mismatched = [
        name
        for name in serial.stages
        if canonical_json(serial.stages[name].payload)
        != canonical_json(parallel.stages[name].payload)
    ]
    write_result(
        "bench_pipeline_jobs",
        format_table(
            [
                {"jobs": 1, "total_s": round(serial.total_seconds, 2)},
                {"jobs": 4, "total_s": round(parallel.total_seconds, 2)},
            ],
            title="Pipeline stage execution — serial vs 4 worker threads (tiny)",
        ),
    )
    assert not mismatched, f"parallel payloads diverge: {mismatched}"
