"""Shared fixtures for the benchmark harness.

The benchmarks reproduce every figure of the paper on the synthetic Google+
substrate.  All expensive inputs (the simulated evolution, the crawled
snapshot series, the generated model SANs) come from the experiment
pipeline's artifact layer: one session-scoped
:class:`~repro.experiments.ArtifactResolver` materialises each shared
artifact exactly once and every fixture below is a thin lookup into it — the
same artifact DAG ``repro pipeline`` runs, so the benches and the pipeline
measure identical inputs.  ``BENCH_SCENARIO`` selects the scenario preset
(default: ``small``, the historical bench workload).  Rendered result tables
are written to ``benchmarks/results/`` so the reproduced rows/series are
inspectable after a run regardless of pytest output capture.
"""

from __future__ import annotations

import os
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.experiments import ArtifactResolver, get_scenario

RESULTS_DIR = Path(__file__).parent / "results"

#: Scenario preset every measurement bench runs under.
BENCH_SCENARIO = os.environ.get("BENCH_SCENARIO", "small")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_result(results_dir):
    """Write a rendered experiment report to benchmarks/results/<name>.txt."""

    def _write(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _write


@pytest.fixture(scope="session")
def scenario():
    """The scenario preset the whole bench session runs under."""
    return get_scenario(BENCH_SCENARIO)


@pytest.fixture(scope="session")
def artifacts(scenario) -> ArtifactResolver:
    """Session-shared artifact resolver (in-memory; each input built once)."""
    return ArtifactResolver(scenario)


@pytest.fixture(scope="session")
def evolution(artifacts):
    """The simulated Google+ evolution used by every measurement bench."""
    return artifacts.artifact("evolution")


@pytest.fixture(scope="session")
def snapshot_series(artifacts):
    """Crawled daily snapshots (the analogue of the paper's 79 crawls)."""
    return artifacts.artifact("snapshot_series")


@pytest.fixture(scope="session")
def snapshots(artifacts):
    return artifacts.artifact("snapshots")


@pytest.fixture(scope="session")
def reference_san(artifacts):
    """The last crawled snapshot — the reference the models are fitted against."""
    return artifacts.artifact("reference_san")


@pytest.fixture(scope="session")
def halfway_san(artifacts):
    return artifacts.artifact("halfway_san")


@pytest.fixture(scope="session")
def estimated_parameters(artifacts):
    """Model parameters estimated from the reference SAN (guided initialisation)."""
    return artifacts.artifact("estimated_parameters")


@pytest.fixture(scope="session")
def model_run(artifacts):
    """Our model fitted to the reference SAN (``.san`` view of the artifact)."""
    return SimpleNamespace(san=artifacts.artifact("model_san"))


@pytest.fixture(scope="session")
def model_run_no_focal(artifacts):
    return SimpleNamespace(san=artifacts.artifact("model_no_focal_san"))


@pytest.fixture(scope="session")
def model_run_no_lapa(artifacts):
    return SimpleNamespace(san=artifacts.artifact("model_no_lapa_san"))


@pytest.fixture(scope="session")
def zhel_run(artifacts):
    """The directed Zhel baseline sized to the same number of social nodes."""
    return SimpleNamespace(san=artifacts.artifact("zhel_san"))
