"""Shared fixtures for the benchmark harness.

The benchmarks reproduce every figure of the paper on the synthetic Google+
substrate.  All expensive inputs (the simulated evolution, the crawled
snapshot series, the generated model SANs) are session-scoped so each bench
measures only its own experiment.  Rendered result tables are written to
``benchmarks/results/`` so the reproduced rows/series are inspectable after a
run regardless of pytest output capture.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

import pytest

from repro.crawler import crawl_evolution
from repro.models import (
    SANModelParameters,
    ZhelModelParameters,
    estimate_parameters,
    generate_san,
    generate_zhel_san,
)
from repro.synthetic import BENCH_SEED, build_workload, small_config

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_result(results_dir):
    """Write a rendered experiment report to benchmarks/results/<name>.txt."""

    def _write(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _write


@pytest.fixture(scope="session")
def workload():
    """The simulated Google+ evolution used by every measurement bench."""
    return build_workload(small_config(), rng=BENCH_SEED, snapshot_count=14)


@pytest.fixture(scope="session")
def evolution(workload):
    return workload.evolution


@pytest.fixture(scope="session")
def snapshot_series(workload):
    """Crawled daily snapshots (the analogue of the paper's 79 crawls)."""
    return crawl_evolution(workload.evolution, workload.snapshot_days)


@pytest.fixture(scope="session")
def snapshots(snapshot_series):
    return list(snapshot_series)


@pytest.fixture(scope="session")
def reference_san(snapshot_series):
    """The last crawled snapshot — the reference the models are fitted against."""
    return snapshot_series.last()


@pytest.fixture(scope="session")
def halfway_san(snapshot_series):
    return snapshot_series.halfway()


@pytest.fixture(scope="session")
def estimated_parameters(reference_san):
    """Model parameters estimated from the reference SAN (guided initialisation)."""
    return estimate_parameters(reference_san, mean_sleep=2.0, beta=200.0).parameters


@pytest.fixture(scope="session")
def model_run(estimated_parameters):
    """Our model fitted to the reference SAN."""
    return generate_san(estimated_parameters, rng=BENCH_SEED, record_history=True)


@pytest.fixture(scope="session")
def model_run_no_focal(estimated_parameters):
    params = replace(estimated_parameters, use_focal_closure=False)
    return generate_san(params, rng=BENCH_SEED, record_history=False)


@pytest.fixture(scope="session")
def model_run_no_lapa(estimated_parameters):
    params = replace(estimated_parameters, use_lapa=False)
    return generate_san(params, rng=BENCH_SEED, record_history=False)


@pytest.fixture(scope="session")
def zhel_run(estimated_parameters):
    """The directed Zhel baseline sized to the same number of social nodes."""
    params = ZhelModelParameters(
        steps=estimated_parameters.steps,
        reciprocation_probability=estimated_parameters.reciprocation_probability,
        mean_groups_per_node=2.0,
    )
    return generate_zhel_san(params, rng=BENCH_SEED, record_history=False)
