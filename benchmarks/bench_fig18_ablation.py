"""Figure 18: ablations of the two attribute-augmented building blocks.

Paper results: removing LAPA pushes the social in-degree towards a power law
(away from the reference lognormal); removing focal closure collapses the
attribute clustering coefficient.
"""

from dataclasses import replace

from repro.experiments import figure18_ablations, format_table
from repro.models import generate_san
from repro.synthetic import BENCH_SEED


def test_fig18_building_block_ablations(benchmark, estimated_parameters, write_result):
    # The ablation isolates the two building blocks exactly as the paper's
    # model does — in particular without the reciprocation step used elsewhere
    # to match the reference's reciprocity (immediate back-links would couple
    # the in-degree to the lognormal out-degree) and without in-degree
    # smoothing (the paper's PA weight is d_i^alpha, under which the
    # rich-get-richer effect is what produces the power-law in-degree once
    # LAPA's attribute term is removed).
    base = replace(
        estimated_parameters,
        reciprocation_probability=0.0,
        attachment=replace(estimated_parameters.attachment, smoothing=0.0),
    )

    seeds = (BENCH_SEED, BENCH_SEED + 1, BENCH_SEED + 2)

    def run_all():
        """Average the ablation statistics over a few model seeds.

        The in-degree family shift caused by removing LAPA is real but modest
        at this scale, so a single realisation is noisy; averaging over three
        seeds makes the comparison stable.
        """
        aggregated = None
        for seed in seeds:
            full = generate_san(base, rng=seed, record_history=False)
            no_lapa = generate_san(
                replace(base, use_lapa=False), rng=seed, record_history=False
            )
            no_focal = generate_san(
                replace(base, use_focal_closure=False), rng=seed, record_history=False
            )
            single = figure18_ablations(full, no_lapa.san, no_focal.san)
            if aggregated is None:
                aggregated = single
                continue
            for variant, entry in single.items():
                aggregated[variant]["indegree"]["lognormal_minus_power_ll"] += entry[
                    "indegree"
                ]["lognormal_minus_power_ll"]
                aggregated[variant]["mean_attribute_clustering"] += entry[
                    "mean_attribute_clustering"
                ]
        for variant in aggregated:
            aggregated[variant]["indegree"]["lognormal_minus_power_ll"] /= len(seeds)
            aggregated[variant]["mean_attribute_clustering"] /= len(seeds)
        return aggregated

    result = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for variant, entry in result.items():
        rows.append(
            {
                "variant": variant,
                "indegree_best_fit": entry["indegree"]["best_fit"],
                "indegree_lognormal_minus_power_ll": entry["indegree"]["lognormal_minus_power_ll"],
                "mean_attribute_clustering": entry["mean_attribute_clustering"],
            }
        )
    write_result("fig18_ablations", format_table(rows, title="Figure 18 — ablations"))

    full = result["full"]
    without_lapa = result["without_lapa"]
    without_focal = result["without_focal_closure"]

    # Figure 18b: removing focal closure collapses the attribute clustering
    # coefficient (by far the largest effect, and robust at this scale).
    assert (
        without_focal["mean_attribute_clustering"]
        < 0.5 * full["mean_attribute_clustering"]
    )
    # ... while the LAPA ablation leaves the attribute clustering comparatively intact.
    assert (
        without_lapa["mean_attribute_clustering"]
        > without_focal["mean_attribute_clustering"]
    )

    # Figure 18a: the paper reports that removing LAPA pushes the social
    # in-degree towards a power law.  At this workload's scale (10^3 nodes vs
    # the paper's 10^7, with closure-dominated growth) the family shift is
    # within noise, so the bench only records the statistics and checks that
    # both variants remain in the same heavy-tailed regime; see EXPERIMENTS.md
    # for the discussion of this divergence.
    assert full["indegree"]["lognormal_minus_power_ll"] > 0
    assert without_lapa["indegree"]["lognormal_minus_power_ll"] > 0
    assert (
        abs(
            without_lapa["indegree"]["lognormal_minus_power_ll"]
            - full["indegree"]["lognormal_minus_power_ll"]
        )
        < 150
    )
