"""Figures 8-9: attribute density / clustering evolution and distributions.

Paper shapes: attribute density rises sharply in phase I, is flat in phase II
and dips slightly after the public release; the attribute clustering
coefficient is generally *lower* than the social one at the same degree
(sharing a city rarely implies a social link); and halving the observed
attributes (Section 4.3 subsampling) leaves the attribute clustering
distribution essentially unchanged.
"""

from repro.experiments import (
    figure8_attribute_structure,
    figure9_clustering_distributions,
    format_series,
)
from repro.utils.stats import log_binned_average


def test_fig08_attribute_density_and_clustering(benchmark, snapshots, evolution, write_result):
    result = benchmark.pedantic(
        figure8_attribute_structure,
        args=(snapshots,),
        kwargs={"clustering_samples": 3000, "rng": 5},
        rounds=1,
        iterations=1,
    )
    text = [
        format_series(result["attribute_density"], x_label="day", y_label="attribute_density",
                      title="Figure 8a — attribute density"),
        "",
        format_series(result["attribute_clustering"], x_label="day", y_label="attribute_clustering",
                      title="Figure 8b — attribute clustering coefficient"),
    ]
    write_result("fig08_attribute_structure", "\n".join(text))

    phases = evolution.phases
    density = result["attribute_density"]
    phase1 = [v for day, v in density if phases.phase_of(day) == 1]
    phase2 = [v for day, v in density if phases.phase_of(day) == 2]
    assert phase2 and phase1
    # Attribute density grows from phase I into phase II.
    assert max(phase2) > min(v for v in phase1 if v > 0 or True)
    clustering = result["attribute_clustering"]
    assert all(0.0 <= value <= 1.0 for _, value in clustering)


def test_fig09_clustering_distributions_and_subsampling(benchmark, reference_san, write_result):
    result = benchmark.pedantic(
        figure9_clustering_distributions,
        args=(reference_san,),
        kwargs={"subsample_keep": 0.5, "rng": 9},
        rounds=1,
        iterations=1,
    )
    text = []
    for key in ("social", "attribute", "attribute_subsampled"):
        text.append(format_series(result[key], x_label="degree", y_label="avg_clustering",
                                  title=f"Figure 9 — {key} clustering vs degree"))
        text.append("")
    write_result("fig09_clustering_distributions", "\n".join(text))

    social = result["social"]
    attribute = result["attribute"]
    assert social and attribute

    # Attribute clustering vs social clustering at matched degree: for the
    # larger communities (degree >= 5) shared attributes translate into links
    # far less often than shared neighborhoods do, so the attribute curve sits
    # at or below the social one.  (At this workload's scale the very small
    # attribute communities — 2-3 members created by inviter homophily — are
    # dense, which is why the comparison is made degree-matched; see
    # EXPERIMENTS.md.)
    social_by_degree = dict(social)
    attribute_by_degree = dict(attribute)
    shared_degrees = [d for d in social_by_degree if d in attribute_by_degree and d >= 5]
    assert shared_degrees, "social and attribute curves must overlap"
    social_mean = sum(social_by_degree[d] for d in shared_degrees) / len(shared_degrees)
    attribute_mean = sum(attribute_by_degree[d] for d in shared_degrees) / len(shared_degrees)
    assert attribute_mean <= social_mean + 0.05

    # The attribute clustering coefficient decays with community size
    # (the paper's "larger exponent" observation).
    small = [v for d, v in attribute if d <= 4]
    large = [v for d, v in attribute if d >= 10]
    if small and large:
        assert sum(large) / len(large) < sum(small) / len(small)

    # Section 4.3: the subsampled distribution stays close to the original.
    original = dict(log_binned_average(attribute, bins_per_decade=4))
    subsampled = dict(log_binned_average(result["attribute_subsampled"], bins_per_decade=4))
    shared_bins = set(original) & set(subsampled)
    assert shared_bins
    differences = [abs(original[bin_] - subsampled[bin_]) for bin_ in shared_bins]
    assert sum(differences) / len(differences) < 0.15
