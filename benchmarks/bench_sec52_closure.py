"""Section 5.2: triadic vs focal closures and the closure-model comparison.

Paper results: 84% of observed friend requests are triadic closures, 18% are
focal closures, 15% are both; RR explains the closures ~14% better than the
two-hop Baseline, and RR-SAN a further ~36% better than RR.
"""

from repro.experiments import format_table, section52_closure_comparison


def test_sec52_closure_models(benchmark, evolution, write_result):
    result = benchmark.pedantic(
        section52_closure_comparison,
        args=(evolution,),
        kwargs={"max_edges": 1200, "rng": 52},
        rounds=1,
        iterations=1,
    )

    breakdown = result["breakdown"]
    rows = [
        {"quantity": "triadic fraction", "value": breakdown["triadic_fraction"]},
        {"quantity": "focal fraction", "value": breakdown["focal_fraction"]},
        {"quantity": "both fraction", "value": breakdown["both_fraction"]},
        {"quantity": "RR vs Baseline improvement", "value": result["rr_vs_baseline_improvement"]},
        {"quantity": "RR-SAN vs RR improvement", "value": result["rr_san_vs_rr_improvement"]},
        {"quantity": "edges scored", "value": result["num_edges_scored"]},
    ]
    write_result("sec52_closure", format_table(rows, title="Section 5.2 — closure comparison"))

    # Triadic closures dominate; focal closures are a sizeable minority.
    assert breakdown["triadic_fraction"] > 0.4
    assert breakdown["triadic_fraction"] > breakdown["focal_fraction"]
    assert 0.02 < breakdown["focal_fraction"] < 0.6
    assert breakdown["both_fraction"] <= breakdown["focal_fraction"] + 1e-9

    averages = result["average_log_probabilities"]
    # Ordering: RR-SAN >= RR, and RR at least comparable to the Baseline.
    assert averages["rr_san"] >= averages["random_random"] - 1e-9
    assert averages["random_random"] >= averages["baseline"] - 0.3
    assert result["rr_san_vs_rr_improvement"] >= 0
